//! Differential suite: the DTA engine (all three modes) and the activated
//! path machinery in `terse-sta` against the exhaustive DFS oracle.
//!
//! Every property builds one small random netlist and one activation set,
//! computes the same quantity with the implementation under test and with
//! [`oracle::exhaustive`]'s brute force, and demands agreement — exact for
//! deterministic quantities (path delays, candidate sets, statmin inputs),
//! statistical for the Monte Carlo diff.
//!
//! Exact-ties caveat: distinct activated paths can tie exactly in nominal
//! delay (equal gate-kind multisets), making "the most critical path"
//! ambiguous — both implementations are right while disagreeing on the
//! winner's slack RV. Exact-agreement properties therefore skip tied cases
//! (detected by [`oracle::exhaustive::has_delay_ties`]); delay-level
//! comparisons stay valid regardless.

use oracle::exhaustive::{
    self, activated_paths, has_delay_ties, most_critical_activated_delay, CandidatePolicy,
    ExhaustiveOracle,
};
use oracle::gen;
use proptest::prelude::*;
use terse_dta::{DtaMode, DtsEngine, EndpointFilter};
use terse_sta::analysis::Sta;
use terse_sta::delay::DelayLibrary;
use terse_sta::paths::{longest_activated_path, PathEnumerator};
use terse_sta::statmin::{monte_carlo_min, MinOrdering};
use terse_sta::TimingConstraints;

/// The speculative clock period used throughout: 15% past the STA limit.
fn speculative_period(sta: &Sta<'_>) -> f64 {
    sta.min_period() / 1.15
}

fn engine<'n>(
    netlist: &'n terse_netlist::Netlist,
    seed: u64,
    t_clk: f64,
    mode: DtaMode,
) -> DtsEngine<'n> {
    DtsEngine::new(
        netlist,
        DelayLibrary::normalized_45nm(),
        gen::random_variation_config(seed),
        TimingConstraints::with_period(t_clk),
        mode,
        MinOrdering::AscendingMean,
    )
    .expect("valid engine inputs")
}

fn oracle_for(netlist: &terse_netlist::Netlist, seed: u64, t_clk: f64) -> ExhaustiveOracle<'_> {
    ExhaustiveOracle::new(
        netlist,
        DelayLibrary::normalized_45nm(),
        gen::random_variation_config(seed),
        t_clk,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The activated-subgraph DP's path delay equals the brute-force maximum
    /// over all activated paths — exactly, for every endpoint, both on
    /// arbitrary bit sets and on realizable simulator traces.
    #[test]
    fn subgraph_dp_matches_brute_force(
        seed in 0u64..1_000_000,
        gates in 1usize..12,
        density in 0.2f64..1.0,
        realizable in 0u8..2,
    ) {
        let n = gen::random_netlist(seed, gates);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let vcd = if realizable == 1 {
            gen::simulated_vcd(&n, seed ^ 0x5EED)
        } else {
            gen::random_vcd(&n, seed ^ 0x5EED, density)
        };
        for &e in n.endpoints(0).unwrap() {
            let brute = most_critical_activated_delay(&n, &sta, e, &vcd);
            let dp = longest_activated_path(&sta, e, &vcd).unwrap();
            match (brute, dp) {
                (None, None) => {}
                (Some(b), Some(p)) => {
                    let d = p.delay_nominal(&sta);
                    prop_assert!((b - d).abs() < 1e-9, "brute {b} vs dp {d}");
                }
                (b, p) => prop_assert!(false, "activation disagreement: {b:?} vs {:?}", p.map(|p| p.delay_nominal(&sta))),
            }
        }
    }

    /// The restricted enumerator yields exactly the activated path set, in
    /// decreasing-delay order — same count, same delay multiset, sorted.
    #[test]
    fn restricted_enumerator_yields_activated_set(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.2f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let vcd = gen::random_vcd(&n, seed ^ 0xACE, density);
        for &e in n.endpoints(0).unwrap() {
            let brute: Vec<f64> = activated_paths(&n, &sta, e, &vcd)
                .iter()
                .map(|p| p.delay_nominal(&sta))
                .collect();
            let lazy: Vec<f64> = PathEnumerator::restricted(&sta, e, &vcd)
                .unwrap()
                .map(|p| p.delay_nominal(&sta))
                .collect();
            prop_assert_eq!(brute.len(), lazy.len());
            for (b, l) in brute.iter().zip(&lazy) {
                prop_assert!((b - l).abs() < 1e-9, "brute {b} vs lazy {l}");
            }
            for w in lazy.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-9, "unsorted: {} then {}", w[0], w[1]);
            }
        }
    }

    /// Faithful peeling (the paper's literal loop over the global criticality
    /// order) finds a path with exactly the brute-force maximum delay.
    #[test]
    fn faithful_peeling_finds_most_critical_delay(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.3f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let vcd = gen::random_vcd(&n, seed ^ 0xBEEF, density);
        for &e in n.endpoints(0).unwrap() {
            let brute = most_critical_activated_delay(&n, &sta, e, &vcd);
            let peeled = PathEnumerator::new(&sta, e)
                .unwrap()
                .find(|p| p.is_activated(&vcd));
            match (brute, peeled) {
                (None, None) => {}
                (Some(b), Some(p)) => {
                    let d = p.delay_nominal(&sta);
                    prop_assert!((b - d).abs() < 1e-9, "brute {b} vs peeled {d}");
                }
                (b, p) => prop_assert!(false, "activation disagreement: {b:?} vs {:?}", p.map(|p| p.delay_nominal(&sta))),
            }
        }
    }

    /// The engine's `RestrictedSearch` stage DTS with an unbounded candidate
    /// budget equals the oracle's all-candidates DTS exactly (same percentile
    /// re-ranking, same statmin inputs) — on tie-free activation sets.
    #[test]
    fn restricted_search_stage_dts_matches_oracle(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.2f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let orc = oracle_for(&n, seed ^ 0x11, t);
        let vcd = gen::random_vcd(&n, seed ^ 0x22, density);
        if orc.stage_has_ties(0, &vcd, 1e-9) {
            return; // ambiguous winner: both answers are right
        }
        let eng = engine(&n, seed ^ 0x11, t, DtaMode::RestrictedSearch { candidates: 1 << 20 });
        for filter in [EndpointFilter::All, EndpointFilter::Control, EndpointFilter::Data] {
            let got = eng.stage_dts(0, &vcd, filter).unwrap();
            let want = orc.stage_dts(0, &vcd, filter, CandidatePolicy::All, MinOrdering::AscendingMean);
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    prop_assert!((g.mean() - w.mean()).abs() < 1e-9, "{filter:?}: {} vs {}", g.mean(), w.mean());
                    prop_assert!((g.sd() - w.sd()).abs() < 1e-9, "{filter:?}: {} vs {}", g.sd(), w.sd());
                }
                (g, w) => prop_assert!(false, "{filter:?}: presence disagreement {g:?} vs {w:?}"),
            }
        }
    }

    /// The two single-candidate modes (subgraph DP and faithful peeling with
    /// a generous pop budget) both equal the oracle's most-critical-only DTS
    /// — on tie-free activation sets.
    #[test]
    fn single_candidate_modes_match_oracle(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.2f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let orc = oracle_for(&n, seed ^ 0x33, t);
        let vcd = gen::random_vcd(&n, seed ^ 0x44, density);
        if orc.stage_has_ties(0, &vcd, 1e-9) {
            return;
        }
        let want = orc.stage_dts(0, &vcd, EndpointFilter::All, CandidatePolicy::MostCritical, MinOrdering::AscendingMean);
        for mode in [DtaMode::ActivatedSubgraph, DtaMode::FaithfulPeeling { max_pops: 1 << 20 }] {
            let eng = engine(&n, seed ^ 0x33, t, mode);
            let got = eng.stage_dts(0, &vcd, EndpointFilter::All).unwrap();
            match (&got, &want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    prop_assert!((g.mean() - w.mean()).abs() < 1e-9, "{mode:?}: {} vs {}", g.mean(), w.mean());
                    prop_assert!((g.sd() - w.sd()).abs() < 1e-9, "{mode:?}: {} vs {}", g.sd(), w.sd());
                }
                (g, w) => prop_assert!(false, "{mode:?}: presence disagreement {g:?} vs {w:?}"),
            }
        }
    }

    /// The endpoint-class filters partition the stage: the control and data
    /// AP sets are disjoint pieces of the full set, in both implementations.
    #[test]
    fn endpoint_filters_partition_ap(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.2f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let orc = oracle_for(&n, seed ^ 0x55, t);
        let vcd = gen::random_vcd(&n, seed ^ 0x66, density);
        let all = orc.stage_ap_slacks(0, &vcd, EndpointFilter::All, CandidatePolicy::All);
        let ctl = orc.stage_ap_slacks(0, &vcd, EndpointFilter::Control, CandidatePolicy::All);
        let dat = orc.stage_ap_slacks(0, &vcd, EndpointFilter::Data, CandidatePolicy::All);
        prop_assert_eq!(all.len(), ctl.len() + dat.len());
    }

    /// The engine's analytic stage DTS tracks a dense Monte Carlo min over
    /// the oracle's assembled AP slack set (the ground-truth distribution of
    /// Algorithm 1's output) within Clark error plus sampling noise.
    #[test]
    fn stage_dts_tracks_monte_carlo(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.3f64..1.0,
    ) {
        const SAMPLES: usize = 40_000;
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let orc = oracle_for(&n, seed ^ 0x77, t);
        let vcd = gen::random_vcd(&n, seed ^ 0x88, density);
        let ap = orc.stage_ap_slacks(0, &vcd, EndpointFilter::All, CandidatePolicy::All);
        if ap.is_empty() {
            return;
        }
        let eng = engine(&n, seed ^ 0x77, t, DtaMode::RestrictedSearch { candidates: 1 << 20 });
        let got = eng.stage_dts(0, &vcd, EndpointFilter::All).unwrap().expect("non-empty AP");
        let (mc_mean, mc_var) = monte_carlo_min(&ap, SAMPLES, seed ^ 0x99).unwrap();
        let mc_var = mc_var.max(0.0); // sample-variance cancellation on deterministic sets
        let scale = ap.iter().map(terse_sta::CanonicalRv::sd).fold(1e-3, f64::max);
        let se = scale / (SAMPLES as f64).sqrt();
        prop_assert!(
            (got.mean() - mc_mean).abs() < 0.15 * scale + 5.0 * se,
            "analytic {} vs mc {mc_mean} (scale {scale})",
            got.mean()
        );
        prop_assert!(
            (got.sd() - mc_var.sqrt()).abs() < 0.25 * scale + 5.0 * se,
            "analytic sd {} vs mc {} (scale {scale})",
            got.sd(),
            mc_var.sqrt()
        );
    }
}

/// The heavyweight exhaustive sweep: larger netlists (deeper DFS), denser
/// seeds, all three modes per case. Scheduled CI only.
#[test]
#[ignore = "slow exhaustive suite: cargo test -p oracle -- --ignored"]
fn stage_dts_matches_oracle_exhaustive() {
    let mut checked = 0usize;
    let mut tied = 0usize;
    for seed in 0..192 {
        let gates = 4 + (seed as usize % 13);
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let orc = oracle_for(&n, seed ^ 0xE1, t);
        let vcd = gen::random_vcd(&n, seed ^ 0xE2, 0.3 + (seed as f64 % 7.0) / 10.0);
        if orc.stage_has_ties(0, &vcd, 1e-9) {
            tied += 1;
            continue;
        }
        let cases = [
            (
                DtaMode::RestrictedSearch {
                    candidates: 1 << 20,
                },
                CandidatePolicy::All,
            ),
            (DtaMode::ActivatedSubgraph, CandidatePolicy::MostCritical),
            (
                DtaMode::FaithfulPeeling { max_pops: 1 << 20 },
                CandidatePolicy::MostCritical,
            ),
        ];
        for (mode, policy) in cases {
            let eng = engine(&n, seed ^ 0xE1, t, mode);
            let got = eng.stage_dts(0, &vcd, EndpointFilter::All).unwrap();
            let want = orc.stage_dts(
                0,
                &vcd,
                EndpointFilter::All,
                policy,
                MinOrdering::AscendingMean,
            );
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    assert!(
                        (g.mean() - w.mean()).abs() < 1e-9 && (g.sd() - w.sd()).abs() < 1e-9,
                        "seed {seed} {mode:?}: ({}, {}) vs ({}, {})",
                        g.mean(),
                        g.sd(),
                        w.mean(),
                        w.sd()
                    );
                }
                (g, w) => panic!("seed {seed} {mode:?}: presence disagreement {g:?} vs {w:?}"),
            }
            checked += 1;
        }
    }
    // The tie-skip must not hollow the sweep out.
    assert!(
        checked >= 300,
        "too few tie-free cases: {checked} checked, {tied} tied"
    );
}

/// Full-activation sanity at scale: with every gate toggling, the subgraph
/// DP, faithful peeling, and plain STA all collapse to the same number on
/// netlists too deep for the fast suite. Scheduled CI only.
#[test]
#[ignore = "slow exhaustive suite: cargo test -p oracle -- --ignored"]
fn full_activation_collapses_to_sta_exhaustive() {
    for seed in 0..96 {
        let n = gen::random_netlist(seed * 7 + 1, 16);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let mut vcd = terse_netlist::BitSet::new(n.gate_count());
        for g in n.gate_ids() {
            vcd.insert(g.index());
        }
        for &e in n.endpoints(0).unwrap() {
            let brute = most_critical_activated_delay(&n, &sta, e, &vcd).unwrap();
            let block = sta.endpoint_arrival(e).unwrap();
            let dp = longest_activated_path(&sta, e, &vcd)
                .unwrap()
                .expect("fully-activated endpoint has a path")
                .delay_nominal(&sta);
            assert!(
                (brute - block).abs() < 1e-9,
                "seed {seed}: brute {brute} vs sta {block}"
            );
            assert!(
                (dp - block).abs() < 1e-9,
                "seed {seed}: dp {dp} vs sta {block}"
            );
        }
        let _ = has_delay_ties(&n, &sta, n.endpoints(0).unwrap()[2], &vcd, 1e-9);
        let _ = exhaustive::all_paths(&n, n.endpoints(0).unwrap()[2]);
    }
}
