//! Differential suite for the incremental-DTA layer: the memoized engine and
//! the event-driven simulator against their exhaustive counterparts.
//!
//! The memo cache and the event-driven evaluation strategy are *exact*
//! optimizations — not approximations — so every property here demands
//! **bitwise** agreement (`f64::to_bits` on means, variances and every
//! sensitivity coefficient; `BitSet` equality on toggle sets), not epsilon
//! closeness. The suite deliberately drives the cache through its unhappy
//! paths too: capacity-1 eviction churn and truncated-signature collisions,
//! where correctness rests entirely on the exact toggle-set verification.

use std::sync::Arc;

use oracle::gen;
use proptest::prelude::*;
use terse_dta::{DtaMode, DtsCache, DtsEngine, EndpointFilter};
use terse_netlist::sim::{SimStrategy, Simulator};
use terse_netlist::{BitSet, GateKind, Netlist};
use terse_sta::analysis::Sta;
use terse_sta::delay::DelayLibrary;
use terse_sta::statmin::MinOrdering;
use terse_sta::TimingConstraints;
use terse_stats::rng::Xoshiro256;

/// The speculative clock period used throughout: 15% past the STA limit.
fn speculative_period(sta: &Sta<'_>) -> f64 {
    sta.min_period() / 1.15
}

fn engine<'n>(netlist: &'n Netlist, seed: u64, t_clk: f64, mode: DtaMode) -> DtsEngine<'n> {
    DtsEngine::new(
        netlist,
        DelayLibrary::normalized_45nm(),
        gen::random_variation_config(seed),
        TimingConstraints::with_period(t_clk),
        mode,
        MinOrdering::AscendingMean,
    )
    .expect("valid engine inputs")
}

/// All three Algorithm-1 variants, with effectively unbounded budgets so the
/// cached/uncached comparison is over the full search, not a truncation.
const MODES: [DtaMode; 3] = [
    DtaMode::RestrictedSearch {
        candidates: 1 << 20,
    },
    DtaMode::ActivatedSubgraph,
    DtaMode::FaithfulPeeling { max_pops: 1 << 20 },
];

const FILTERS: [EndpointFilter; 3] = [
    EndpointFilter::All,
    EndpointFilter::Control,
    EndpointFilter::Data,
];

/// Bitwise fingerprint of a stage-DTS result.
fn rv_bits(rv: &Option<terse_sta::CanonicalRv>) -> Vec<u64> {
    match rv {
        None => vec![u64::MAX],
        Some(rv) => {
            let mut v = vec![rv.mean().to_bits(), rv.variance().to_bits()];
            v.extend(rv.coeffs().iter().map(|c| c.to_bits()));
            v
        }
    }
}

/// A small pool of activation sets mixing arbitrary bit patterns with
/// realizable simulator traces (the cache must be exact on both).
fn vcd_pool(n: &Netlist, seed: u64, density: f64) -> Vec<BitSet> {
    vec![
        gen::random_vcd(n, seed ^ 0xA1, density),
        gen::simulated_vcd(n, seed ^ 0xB2),
        gen::random_vcd(n, seed ^ 0xC3, (density * 0.5).max(0.05)),
    ]
}

/// Sweeps every (vcd, filter) query once and fingerprints each answer.
fn sweep(eng: &DtsEngine<'_>, vcds: &[BitSet]) -> Vec<Vec<u64>> {
    let mut out = Vec::with_capacity(vcds.len() * FILTERS.len());
    for vcd in vcds {
        for filter in FILTERS {
            let dts = eng.stage_dts(0, vcd, filter).expect("stage_dts");
            out.push(rv_bits(&dts));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The memoized engine is bitwise identical to the uncached engine in all
    /// three DTA modes, on both arbitrary and realizable activation sets —
    /// including the repeat pass where every query is served from the cache.
    #[test]
    fn cached_stage_dts_bitwise_matches_uncached(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.2f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let vcds = vcd_pool(&n, seed, density);
        for mode in MODES {
            let plain = engine(&n, seed ^ 0x7E57, t, mode);
            let mut cached = engine(&n, seed ^ 0x7E57, t, mode);
            let cache = Arc::new(DtsCache::new(64));
            cached.set_cache(Arc::clone(&cache));
            let want = sweep(&plain, &vcds);
            let cold = sweep(&cached, &vcds);
            let warm = sweep(&cached, &vcds);
            prop_assert_eq!(&want, &cold, "{:?}: cold pass diverged", mode);
            prop_assert_eq!(&want, &warm, "{:?}: warm pass diverged", mode);
            let stats = cache.stats();
            prop_assert!(stats.misses > 0, "{mode:?}: nothing was ever computed");
            // The warm pass re-issues every cold query, so hits are certain.
            prop_assert!(stats.hits >= want.len() as u64, "{mode:?}: {stats:?}");
            prop_assert_eq!(stats.collisions, 0, "{:?}: full-width signatures collided", mode);
        }
    }

    /// A capacity-1 cache churns through eviction on every distinct
    /// activation set yet never corrupts an answer.
    #[test]
    fn capacity_one_cache_evicts_and_stays_exact(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.2f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let vcds = vcd_pool(&n, seed, density);
        let mode = MODES[(seed % 3) as usize];
        let plain = engine(&n, seed ^ 0xCA11, t, mode);
        let mut cached = engine(&n, seed ^ 0xCA11, t, mode);
        let cache = Arc::new(DtsCache::new(1));
        cached.set_cache(Arc::clone(&cache));
        let want = sweep(&plain, &vcds);
        for pass in 0..2 {
            let got = sweep(&cached, &vcds);
            prop_assert_eq!(&want, &got, "{:?}: pass {} diverged", mode, pass);
        }
        let stats = cache.stats();
        prop_assert!(stats.entries <= 1, "{mode:?}: {stats:?}");
        // Distinct answers imply distinct keys, and two keys cannot share
        // one slot without evicting.
        let first = rv_bits(&plain.stage_dts(0, &vcds[0], EndpointFilter::All).expect("dts"));
        let second = rv_bits(&plain.stage_dts(0, &vcds[2], EndpointFilter::All).expect("dts"));
        if first != second {
            prop_assert!(stats.evictions > 0, "{mode:?}: {stats:?}");
        }
    }

    /// With the signature truncated to zero bits every activation set maps to
    /// the same key; the exact toggle-set verification must detect each
    /// collision, fall back to recomputation, and keep answers bitwise exact.
    #[test]
    fn truncated_signature_collisions_fall_back_to_exact(
        seed in 0u64..1_000_000,
        gates in 1usize..10,
        density in 0.2f64..1.0,
    ) {
        let n = gen::random_netlist(seed, gates);
        let t = speculative_period(&Sta::new(&n, &DelayLibrary::normalized_45nm()));
        let vcds = vcd_pool(&n, seed, density);
        let mode = MODES[(seed % 3) as usize];
        let plain = engine(&n, seed ^ 0xC0DE, t, mode);
        let mut cached = engine(&n, seed ^ 0xC0DE, t, mode);
        let cache = Arc::new(DtsCache::with_signature_mask(64, 0));
        cached.set_cache(Arc::clone(&cache));
        let want = sweep(&plain, &vcds);
        for pass in 0..2 {
            let got = sweep(&cached, &vcds);
            prop_assert_eq!(&want, &got, "{:?}: pass {} diverged", mode, pass);
        }
        // Different answers for two sets under one filter mean their masked
        // toggle sets differ, so alternating them through one degenerate key
        // must have tripped the collision counter.
        let per_vcd: Vec<&[Vec<u64>]> = want.chunks(FILTERS.len()).collect();
        if per_vcd.iter().any(|c| *c != per_vcd[0]) {
            let stats = cache.stats();
            prop_assert!(stats.collisions > 0, "{mode:?}: {stats:?}");
        }
    }

    /// The event-driven simulator produces exactly the full-scan toggle sets
    /// and gate values, cycle for cycle, on random netlists under random
    /// input/flip-flop stimulus — while evaluating no more gates.
    #[test]
    fn event_driven_simulator_matches_full_scan(
        seed in 0u64..1_000_000,
        gates in 1usize..16,
        cycles in 2usize..12,
    ) {
        let n = gen::random_netlist(seed, gates);
        let mut full = Simulator::with_strategy(&n, SimStrategy::FullScan);
        let mut event = Simulator::with_strategy(&n, SimStrategy::EventDriven);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x51u64);
        for cycle in 0..cycles {
            for g in n.gate_ids() {
                match n.kind(g) {
                    // Re-force state only some cycles, so others exercise the
                    // free-running feedback path where few gates toggle.
                    GateKind::FlipFlop if rng.next_below(3) == 0 => {
                        let v = rng.next_u64() & 1 == 1;
                        full.force_ff(g, v);
                        event.force_ff(g, v);
                    }
                    GateKind::Input => {
                        let v = rng.next_u64() & 1 == 1;
                        full.set_input(g, v);
                        event.set_input(g, v);
                    }
                    _ => {}
                }
            }
            let tf = full.step();
            let te = event.step();
            prop_assert_eq!(&tf, &te, "cycle {}: toggle sets diverged", cycle);
            for g in n.gate_ids() {
                prop_assert_eq!(
                    full.value(g), event.value(g),
                    "cycle {}: value of gate {:?} diverged", cycle, g
                );
            }
        }
        prop_assert!(
            event.gates_evaluated() <= full.gates_evaluated(),
            "event-driven evaluated more gates ({}) than the full scan ({})",
            event.gates_evaluated(),
            full.gates_evaluated()
        );
    }
}
