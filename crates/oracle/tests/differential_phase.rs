//! Differential suite for the phase-sampling layer: the seeded k-means
//! clustering and the two-pass phased profiler against their exact
//! counterparts.
//!
//! Phase sampling is an approximation for *features*, never for *counts*:
//! the phased profile's block counts, edge counts, operand representatives
//! and instruction totals must equal a full [`Profiler::profile`] run
//! exactly, and everything the sampler decides (window vectors, clustering,
//! representatives, the checkpoint context digest) must be **bitwise
//! deterministic** — independent of thread count and repetition. The
//! properties here demand exact equality accordingly; only the feature
//! lists themselves are allowed to differ from the exact run (that error is
//! what `SamplingStats::lambda_bound` accounts for, tested at the core
//! layer).

use oracle::gen;
use proptest::prelude::*;
use terse_isa::Cfg;
use terse_sim::phase::{PhaseConfig, SIG_BUCKETS};
use terse_sim::{cluster_windows, Machine, Profiler};
use terse_stats::rng::Xoshiro256;

/// Random window feature vectors with the real signature-histogram shape
/// (a few duplicated rows included, so clusters can genuinely merge).
fn random_vectors(seed: u64, n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut vectors: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dims).map(|_| rng.next_range(0.0, 1.0)).collect())
        .collect();
    for i in 0..n {
        if rng.next_below(4) == 0 {
            let j = rng.next_below(n as u64) as usize;
            vectors[i] = vectors[j].clone();
        }
    }
    vectors
}

fn check_invariants(vectors: &[Vec<f64>], k: usize, cl: &terse_sim::Clustering) {
    let n = vectors.len();
    assert_eq!(cl.assignment.len(), n);
    assert_eq!(cl.representatives.len(), cl.populations.len());
    if n == 0 {
        assert_eq!(cl.clusters(), 0);
        return;
    }
    // Effective count: at least one phase (`k` is clamped up to 1), at
    // most min(k, windows).
    let k_eff = k.clamp(1, n);
    assert!(cl.clusters() >= 1 && cl.clusters() <= k_eff, "{cl:?}");
    // Every window lands in a live cluster; populations count members.
    let mut members = vec![0u64; cl.clusters()];
    for &c in &cl.assignment {
        assert!((c as usize) < cl.clusters(), "dangling cluster id {c}");
        members[c as usize] += 1;
    }
    assert_eq!(members, cl.populations, "population bookkeeping");
    assert!(cl.populations.iter().all(|&p| p >= 1), "empty cluster kept");
    assert_eq!(cl.populations.iter().sum::<u64>(), n as u64);
    // A representative is a member of the cluster it represents.
    for (c, &rep) in cl.representatives.iter().enumerate() {
        assert_eq!(cl.assignment[rep as usize] as usize, c, "foreign rep");
    }
    // Cluster ids are numbered by ascending first-member window index.
    let first_member: Vec<usize> = (0..cl.clusters())
        .map(|c| {
            cl.assignment
                .iter()
                .position(|&a| a as usize == c)
                .expect("live cluster has a member")
        })
        .collect();
    assert!(
        first_member.windows(2).all(|w| w[0] < w[1]),
        "cluster ids not in first-member order: {first_member:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants plus run-to-run and thread-count determinism
    /// of the seeded k-means.
    #[test]
    fn kmeans_invariants_and_thread_determinism(
        seed in any::<u64>(),
        n in 0usize..40,
        k in 0usize..10,
        iters in 0usize..20,
    ) {
        let vectors = random_vectors(seed, n, SIG_BUCKETS);
        let cl = cluster_windows(&vectors, k, iters, seed);
        check_invariants(&vectors, k, &cl);
        // Repetition determinism.
        prop_assert_eq!(&cl, &cluster_windows(&vectors, k, iters, seed));
        // Thread-count determinism: the assignment map parallelizes, so a
        // 1-thread pool and a 4-thread pool must agree exactly.
        let pool_of = |threads| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
        };
        let serial = pool_of(1).install(|| cluster_windows(&vectors, k, iters, seed));
        let wide = pool_of(4).install(|| cluster_windows(&vectors, k, iters, seed));
        prop_assert_eq!(&cl, &serial);
        prop_assert_eq!(&cl, &wide);
    }
}

/// A profiler small enough that random programs finish (or hit the budget)
/// quickly, with feature reservoirs small enough to actually truncate.
fn profiler(seed: u64) -> Profiler {
    Profiler {
        max_feature_samples: 4,
        budget: 20_000,
        dmem_words: 1 << 10,
        seed,
    }
}

fn init_regs(seed: u64) -> impl Fn(&mut Machine) {
    move |m: &mut Machine| {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for r in 1..8u8 {
            m.set_reg(r, rng.next_u64() as u32);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The phased profile's counts are the exact run's counts, its
    /// bookkeeping is internally consistent, and the whole two-pass
    /// pipeline is bitwise deterministic across repetitions and thread
    /// counts.
    #[test]
    fn phased_profile_matches_exact_counts(
        seed in any::<u64>(),
        body in 8usize..32,
        branches in 0usize..4,
        window_size in 1u64..24,
        max_clusters in 1usize..6,
    ) {
        let program = gen::random_program(seed, body, branches);
        let cfg = Cfg::from_program(&program);
        let p = profiler(seed ^ 0xA11CE);
        let init = init_regs(seed ^ 0x5EED);
        let phase = PhaseConfig { window_size, max_clusters, ..PhaseConfig::default() };

        // Random branch targets can loop past the budget; both runs must
        // then fail identically, and there is nothing further to compare.
        let exact = p.profile(&program, &cfg, &init);
        let phased = p.profile_phased(&program, &cfg, &phase, &init);
        prop_assert_eq!(
            exact.is_ok(),
            phased.is_ok(),
            "exact and phased must agree on whether the program runs"
        );
        if let (Err(e), Err(pe)) = (&exact, &phased) {
            prop_assert_eq!(format!("{e}"), format!("{pe}"));
            return;
        }
        let exact = exact.expect("checked above");
        let phased = phased.expect("checked above");

        // Counts are exact — sampling only ever thins features.
        prop_assert_eq!(&phased.profile.block_counts, &exact.block_counts);
        prop_assert_eq!(&phased.profile.edge_counts, &exact.edge_counts);
        prop_assert_eq!(phased.profile.total_instructions, exact.total_instructions);
        prop_assert_eq!(&phased.profile.operand_reps, &exact.operand_reps);

        // Window bookkeeping sums back to the exact totals.
        let total = exact.total_instructions;
        prop_assert_eq!(phased.window_size, window_size);
        prop_assert_eq!(phased.windows_total, total.div_ceil(window_size));
        prop_assert_eq!(phased.windows_simulated, phased.clustering.clusters() as u64);
        prop_assert!(phased.windows_simulated <= phased.windows_total);
        prop_assert!(phased.covered_instructions <= total);
        prop_assert!(phased.coverage() > 0.0 && phased.coverage() <= 1.0);
        check_invariants(
            &vec![Vec::new(); phased.windows_total as usize],
            max_clusters,
            &phased.clustering,
        );
        for (rep, all) in phased.block_rep_counts.iter().zip(&exact.block_counts) {
            prop_assert!(rep <= all, "replay saw more executions than the trace");
        }
        // When every window is its own phase, replay IS the exact trace.
        if phased.windows_simulated == phased.windows_total {
            prop_assert_eq!(&phased.block_rep_counts, &exact.block_counts);
            prop_assert_eq!(phased.covered_instructions, total);
        }

        // Feature bookkeeping: weights/cluster ids parallel the feature
        // lists, weights are positive and finite, cluster ids ascend.
        for idx in 0..program.len() {
            let feats = &phased.profile.features_normal[idx];
            prop_assert_eq!(feats.len(), phased.profile.features_corrected[idx].len());
            prop_assert_eq!(feats.len(), phased.feature_weights[idx].len());
            prop_assert_eq!(feats.len(), phased.feature_clusters[idx].len());
            prop_assert!(phased.feature_weights[idx].iter().all(|w| w.is_finite() && *w > 0.0));
            prop_assert!(phased.feature_clusters[idx].windows(2).all(|w| w[0] <= w[1]));
        }

        // Bitwise determinism: repetition and thread count are invisible.
        let pool_of = |threads| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
        };
        for threads in [1usize, 4] {
            let again = pool_of(threads)
                .install(|| p.profile_phased(&program, &cfg, &phase, &init))
                .expect("deterministic rerun");
            prop_assert_eq!(again.context_digest, phased.context_digest);
            prop_assert_eq!(&again.clustering, &phased.clustering);
            prop_assert_eq!(&again.profile.features_normal, &phased.profile.features_normal);
            prop_assert_eq!(
                &again.profile.features_corrected,
                &phased.profile.features_corrected
            );
            let bits = |w: &Vec<Vec<f64>>| -> Vec<Vec<u64>> {
                w.iter().map(|v| v.iter().map(|x| x.to_bits()).collect()).collect()
            };
            prop_assert_eq!(bits(&again.feature_weights), bits(&phased.feature_weights));
            prop_assert_eq!(&again.feature_clusters, &phased.feature_clusters);
        }
    }
}
