//! Property tests for the static analyzer against the seeded generators:
//!
//! * **Soundness of silence** — valid artifacts (netlists, program CFGs,
//!   slack-RV sets, compiled op tapes) produce zero Warning-or-above
//!   diagnostics.
//! * **Defect detection** — every injected defect class produces at least
//!   one diagnostic of its expected code.
//! * **Typed refusal** — `Framework::preflight_netlist` under
//!   `DegradationPolicy::Strict` turns a cyclic netlist into a typed
//!   error (never a panic); `Repair` hands the report back.

use oracle::gen;
use proptest::prelude::*;
use terse::{DegradationPolicy, Framework, TerseError};
use terse_analyze::{
    analyze_cfg, analyze_netlist, analyze_slacks, analyze_tape, AnalysisReport, SlackPassConfig,
};
use terse_isa::Cfg;

fn netlist_report(n: &terse_netlist::Netlist) -> AnalysisReport {
    let mut r = AnalysisReport::new();
    analyze_netlist(n, &mut r);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn valid_netlists_are_clean(seed in 0u64..1_000_000, gates in 1usize..24) {
        let n = gen::random_netlist(seed, gates);
        let r = netlist_report(&n);
        prop_assert!(r.is_clean(), "seed {seed}, gates {gates}:\n{}", r.render_text());
    }

    #[test]
    fn valid_cfgs_are_clean(seed in 0u64..1_000_000, body in 1usize..16, branches in 0usize..6) {
        let p = gen::random_program(seed, body, branches);
        let cfg = Cfg::from_program(&p);
        let mut r = AnalysisReport::new();
        analyze_cfg(&p, &cfg, &mut r);
        prop_assert!(r.is_clean(), "seed {seed}:\n{}", r.render_text());
    }

    #[test]
    fn valid_slack_sets_are_clean(seed in 0u64..1_000_000, n in 1usize..12, vars in 0usize..8) {
        let rvs = gen::random_slacks(seed, n, vars);
        let mut r = AnalysisReport::new();
        analyze_slacks(&rvs, &SlackPassConfig::default(), "set", &mut r);
        prop_assert!(r.is_clean(), "seed {seed}:\n{}", r.render_text());
    }

    #[test]
    fn netlist_defects_are_detected(seed in 0u64..1_000_000, gates in 1usize..24) {
        for defect in gen::NetlistDefect::ALL {
            let n = gen::random_netlist_with_defect(seed, gates, defect);
            let r = netlist_report(&n);
            prop_assert!(
                r.has_code(defect.expected_code()),
                "seed {seed}, {defect:?} must raise {}:\n{}",
                defect.expected_code(),
                r.render_text()
            );
        }
    }

    #[test]
    fn cfg_defects_are_detected(seed in 0u64..1_000_000, body in 2usize..16) {
        for defect in gen::CfgDefect::ALL {
            let (p, cfg) = gen::random_cfg_with_defect(seed, body, defect);
            let mut r = AnalysisReport::new();
            analyze_cfg(&p, &cfg, &mut r);
            prop_assert!(
                r.has_code(defect.expected_code()),
                "seed {seed}, {defect:?} must raise {}:\n{}",
                defect.expected_code(),
                r.render_text()
            );
        }
    }

    #[test]
    fn slack_defects_are_detected(seed in 0u64..1_000_000, n in 2usize..12, vars in 1usize..8) {
        for defect in gen::SlackDefect::ALL {
            let rvs = gen::random_slacks_with_defect(seed, n, vars, defect);
            let mut r = AnalysisReport::new();
            analyze_slacks(&rvs, &SlackPassConfig::default(), "set", &mut r);
            prop_assert!(
                r.has_code(defect.expected_code()),
                "seed {seed}, {defect:?} must raise {}:\n{}",
                defect.expected_code(),
                r.render_text()
            );
        }
    }

    #[test]
    fn valid_dataflow_fixtures_are_clean(seed in 0u64..1_000_000, chain in 1usize..6) {
        let fx = gen::random_dataflow_fixture(seed, chain, None);
        let r = gen::dataflow_fixture_report(&fx);
        prop_assert!(r.is_clean(), "seed {seed}:\n{}", r.render_text());
    }

    #[test]
    fn dataflow_defects_are_detected(seed in 0u64..1_000_000, chain in 1usize..6) {
        for defect in gen::DataflowDefect::ALL {
            let fx = gen::random_dataflow_fixture(seed, chain, Some(defect));
            let r = gen::dataflow_fixture_report(&fx);
            prop_assert!(
                r.has_code(defect.expected_code()),
                "seed {seed}, {defect:?} must raise {}:\n{}",
                defect.expected_code(),
                r.render_text()
            );
        }
    }

    #[test]
    fn valid_tapes_are_clean(seed in 0u64..1_000_000, gates in 1usize..24) {
        let tape = gen::random_tape(seed, gates);
        let mut r = AnalysisReport::new();
        analyze_tape(&tape, &mut r);
        prop_assert!(r.is_clean(), "seed {seed}, gates {gates}:\n{}", r.render_text());
    }

    #[test]
    fn tape_defects_are_detected(seed in 0u64..1_000_000, gates in 1usize..24) {
        for defect in gen::TapeDefect::ALL {
            let tape = gen::random_tape_with_defect(seed, gates, defect);
            let mut r = AnalysisReport::new();
            analyze_tape(&tape, &mut r);
            prop_assert!(
                r.has_code(defect.expected_code()),
                "seed {seed}, {defect:?} must raise {}:\n{}",
                defect.expected_code(),
                r.render_text()
            );
        }
    }

    #[test]
    fn strict_preflight_refuses_cyclic_netlists_with_typed_error(
        seed in 0u64..1_000_000,
        gates in 1usize..24,
    ) {
        let n = gen::random_netlist_with_defect(seed, gates, gen::NetlistDefect::CombinationalLoop);
        match Framework::preflight_netlist(&n, DegradationPolicy::Strict) {
            Err(TerseError::Preflight(msg)) => prop_assert!(msg.contains("NL001"), "{msg}"),
            other => prop_assert!(false, "expected Preflight error, got {other:?}"),
        }
        // Repair never refuses: the report is returned for the caller.
        let rep = Framework::preflight_netlist(&n, DegradationPolicy::Repair);
        prop_assert!(rep.is_ok_and(|r| r.has_code("NL001")));
    }
}
