//! The exhaustive gate-level oracle: enumerate *every* path of an endpoint
//! by plain DFS, filter by activation, and reproduce Algorithm 1's candidate
//! ranking and stage DTS from the full path set.
//!
//! This is the computation `terse-sta`'s lazy best-first enumerator, the
//! activated-subgraph DP, and `terse-dta`'s engine all avoid doing — which
//! is exactly what makes it a ground truth to diff them against. Costs are
//! exponential in netlist depth; callers keep netlists small (the [`crate::gen`]
//! generators stay well under twenty gates).

use terse_dta::EndpointFilter;
use terse_netlist::{BitSet, GateId, Netlist};
use terse_sta::analysis::Sta;
use terse_sta::delay::DelayLibrary;
use terse_sta::paths::Path;
use terse_sta::statmin::{statistical_min, MinOrdering};
use terse_sta::variation::{VariationConfig, VariationModel};
use terse_sta::CanonicalRv;

/// How many of the most critical activated paths the oracle keeps per
/// endpoint before the percentile re-ranking — mirrors [`terse_dta::DtaMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidatePolicy {
    /// Every activated path (the `RestrictedSearch` limit as candidates → ∞).
    All,
    /// Only the single most critical activated path (what `FaithfulPeeling`
    /// and `ActivatedSubgraph` produce).
    MostCritical,
}

/// Every path capturing at `endpoint`, enumerated by depth-first search
/// backward from the endpoint's D driver. Order is DFS order (arbitrary
/// with respect to delay); sort by [`Path::delay_nominal`] as needed.
///
/// # Panics
///
/// Panics if `endpoint` is not a connected flip-flop.
pub fn all_paths(netlist: &Netlist, endpoint: GateId) -> Vec<Path> {
    fn dfs(
        n: &Netlist,
        g: GateId,
        suffix: &mut Vec<GateId>,
        endpoint: GateId,
        out: &mut Vec<Path>,
    ) {
        if n.kind(g).is_endpoint() {
            let mut gates = suffix.clone();
            gates.reverse();
            out.push(Path {
                source: g,
                gates,
                endpoint,
            });
            return;
        }
        suffix.push(g);
        for &f in n.fanin(g) {
            dfs(n, f, suffix, endpoint, out);
        }
        suffix.pop();
    }
    let driver = netlist.ff_input(endpoint).expect("endpoint has a D driver");
    let mut out = Vec::new();
    dfs(netlist, driver, &mut Vec::new(), endpoint, &mut out);
    out
}

/// The activated subset of [`all_paths`], sorted by decreasing nominal delay
/// (ties keep DFS order — callers that need tie-free comparisons should
/// check [`has_delay_ties`] first).
pub fn activated_paths(
    netlist: &Netlist,
    sta: &Sta<'_>,
    endpoint: GateId,
    vcd: &BitSet,
) -> Vec<Path> {
    let mut paths: Vec<Path> = all_paths(netlist, endpoint)
        .into_iter()
        .filter(|p| p.is_activated(vcd))
        .collect();
    paths.sort_by(|a, b| b.delay_nominal(sta).total_cmp(&a.delay_nominal(sta)));
    paths
}

/// The delay of the most critical activated path of `endpoint`, if any —
/// the scalar every DTA mode must agree on exactly.
pub fn most_critical_activated_delay(
    netlist: &Netlist,
    sta: &Sta<'_>,
    endpoint: GateId,
    vcd: &BitSet,
) -> Option<f64> {
    all_paths(netlist, endpoint)
        .into_iter()
        .filter(|p| p.is_activated(vcd))
        .map(|p| p.delay_nominal(sta))
        .max_by(f64::total_cmp)
}

/// Whether any two *distinct* activated paths of `endpoint` have nominal
/// delays within `tol` of each other. Near ties make "the most critical
/// path" ambiguous: implementations may legitimately pick different winners
/// with different slack RVs, so exact-agreement differential tests skip
/// tied cases (delay-level comparisons stay valid regardless).
pub fn has_delay_ties(
    netlist: &Netlist,
    sta: &Sta<'_>,
    endpoint: GateId,
    vcd: &BitSet,
    tol: f64,
) -> bool {
    let paths = activated_paths(netlist, sta, endpoint, vcd);
    paths
        .windows(2)
        .any(|w| (w[0].delay_nominal(sta) - w[1].delay_nominal(sta)).abs() < tol)
}

/// The exhaustive reference for Algorithm 1: owns its own STA and variation
/// model (built from the same inputs as the engine under test) and computes
/// stage DTS from the *complete* activated path set of every endpoint.
#[derive(Debug)]
pub struct ExhaustiveOracle<'n> {
    netlist: &'n Netlist,
    sta: Sta<'n>,
    model: VariationModel,
    lib: DelayLibrary,
    t_clk: f64,
}

impl<'n> ExhaustiveOracle<'n> {
    /// Builds the oracle.
    ///
    /// # Panics
    ///
    /// Panics on an invalid variation configuration (generator bug).
    pub fn new(
        netlist: &'n Netlist,
        lib: DelayLibrary,
        variation: VariationConfig,
        t_clk: f64,
    ) -> Self {
        let sta = Sta::new(netlist, &lib);
        let model = VariationModel::new(netlist, &lib, variation).expect("valid variation config");
        ExhaustiveOracle {
            netlist,
            sta,
            model,
            lib,
            t_clk,
        }
    }

    /// The oracle's STA view (for delay-level comparisons).
    pub fn sta(&self) -> &Sta<'n> {
        &self.sta
    }

    /// The oracle's variation model.
    pub fn model(&self) -> &VariationModel {
        &self.model
    }

    /// The slack RV of one path at the oracle's operating point.
    pub fn slack_rv(&self, p: &Path) -> CanonicalRv {
        p.slack_rv(&self.model, self.lib.clk_to_q, self.lib.setup, self.t_clk)
    }

    /// Algorithm 1's per-endpoint `AP` contribution, computed from the full
    /// activated path set: evaluate every candidate's slack RV, then keep
    /// the candidates most critical at the 1st and the 99th percentile (the
    /// Section 3 two-pass rule). Empty when no path is activated.
    pub fn endpoint_ap_slacks(
        &self,
        endpoint: GateId,
        vcd: &BitSet,
        policy: CandidatePolicy,
    ) -> Vec<CanonicalRv> {
        let cands = activated_paths(self.netlist, &self.sta, endpoint, vcd);
        let cands: &[Path] = match policy {
            CandidatePolicy::All => &cands,
            CandidatePolicy::MostCritical => &cands[..cands.len().min(1)],
        };
        if cands.is_empty() {
            return Vec::new();
        }
        let slacks: Vec<CanonicalRv> = cands.iter().map(|p| self.slack_rv(p)).collect();
        let pick = |pct: f64| -> usize {
            slacks
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.percentile(pct).total_cmp(&b.percentile(pct)))
                .map(|(i, _)| i)
                .expect("non-empty candidate set")
        };
        let lo = pick(0.01);
        let hi = pick(0.99);
        let mut out = vec![slacks[lo].clone()];
        if hi != lo {
            out.push(slacks[hi].clone());
        }
        out
    }

    /// The exhaustive stage DTS: assemble `AP` over the admitted endpoints
    /// (in endpoint order, like the engine) and take the statistical min.
    pub fn stage_dts(
        &self,
        s: usize,
        vcd: &BitSet,
        filter: EndpointFilter,
        policy: CandidatePolicy,
        ordering: MinOrdering,
    ) -> Option<CanonicalRv> {
        let ap = self.stage_ap_slacks(s, vcd, filter, policy);
        if ap.is_empty() {
            return None;
        }
        Some(statistical_min(&ap, ordering).expect("non-empty AP"))
    }

    /// The assembled `AP` slack set of a stage — the exact operand list the
    /// statistical min runs on (exposed so tests can also diff it against
    /// `monte_carlo_min`).
    pub fn stage_ap_slacks(
        &self,
        s: usize,
        vcd: &BitSet,
        filter: EndpointFilter,
        policy: CandidatePolicy,
    ) -> Vec<CanonicalRv> {
        let endpoints = self.netlist.endpoints(s).expect("stage in range");
        let mut ap = Vec::new();
        for &e in endpoints {
            let class = self
                .netlist
                .endpoint_class(e)
                .expect("stage endpoints are flip-flops");
            let admitted = match filter {
                EndpointFilter::All => true,
                EndpointFilter::Control => class == terse_netlist::EndpointClass::Control,
                EndpointFilter::Data => class == terse_netlist::EndpointClass::Data,
            };
            if admitted {
                ap.extend(self.endpoint_ap_slacks(e, vcd, policy));
            }
        }
        ap
    }

    /// Whether any admitted endpoint of stage `s` has near-tied activated
    /// path delays (see [`has_delay_ties`]).
    pub fn stage_has_ties(&self, s: usize, vcd: &BitSet, tol: f64) -> bool {
        self.netlist
            .endpoints(s)
            .expect("stage in range")
            .iter()
            .any(|&e| has_delay_ties(self.netlist, &self.sta, e, vcd, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn all_paths_counts_fanin_products() {
        // A two-level diamond has exactly fanin-product many paths.
        let n = gen::random_netlist(3, 8);
        let e = n.endpoints(0).unwrap()[2]; // a capture FF
        let paths = all_paths(&n, e);
        assert!(!paths.is_empty());
        // Every enumerated path ends at the endpoint's driver and starts at
        // an endpoint gate.
        let driver = n.ff_input(e).unwrap();
        for p in &paths {
            assert!(n.kind(p.source).is_endpoint());
            if let Some(&last) = p.gates.last() {
                assert_eq!(last, driver);
            } else {
                assert_eq!(p.source, driver);
            }
        }
    }

    #[test]
    fn full_activation_matches_static_sta() {
        let n = gen::random_netlist(11, 12);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let mut vcd = BitSet::new(n.gate_count());
        for g in n.gate_ids() {
            vcd.insert(g.index());
        }
        for &e in n.endpoints(0).unwrap() {
            let brute = most_critical_activated_delay(&n, &sta, e, &vcd).unwrap();
            let block = sta.endpoint_arrival(e).unwrap();
            assert!((brute - block).abs() < 1e-9, "brute {brute} vs STA {block}");
        }
    }

    #[test]
    fn empty_activation_has_no_paths() {
        let n = gen::random_netlist(5, 6);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let vcd = BitSet::new(n.gate_count());
        for &e in n.endpoints(0).unwrap() {
            assert!(most_critical_activated_delay(&n, &sta, e, &vcd).is_none());
            assert!(activated_paths(&n, &sta, e, &vcd).is_empty());
        }
    }
}
