//! Seeded random generators shared by the differential test suites.
//!
//! Everything here is a pure function of its `seed` argument (the generators
//! draw from `terse-stats`' xoshiro256** just like the rest of the
//! workspace), so a failing property case is reproducible from the one seed
//! the proptest shim persists.

use terse_isa::{Instruction, Opcode, Program};
use terse_netlist::builder::NetlistBuilder;
use terse_netlist::netlist::EndpointClass;
use terse_netlist::sim::Simulator;
use terse_netlist::{BitSet, GateKind, Netlist};
use terse_sta::variation::VariationConfig;
use terse_sta::CanonicalRv;
use terse_stats::rng::Xoshiro256;

/// A random single-stage netlist small enough for exhaustive path
/// enumeration: two launching flip-flops (one per endpoint class), `gates`
/// random combinational gates with random placement (so spatial variation
/// coefficients differ per gate), and two capturing flip-flops, again one
/// per class. Every flip-flop's D input is connected, so all four are
/// endpoints of stage 0.
///
/// # Panics
///
/// Panics if `gates == 0` (a netlist with no combinational logic has no
/// paths worth enumerating) or on internal builder misuse (a bug).
pub fn random_netlist(seed: u64, gates: usize) -> Netlist {
    let (b, _) = build_random_netlist(seed, gates);
    b.finish().expect("random netlist is a DAG by construction")
}

/// Gate handles of the shared random-netlist construction, kept so the
/// defect injectors can anchor their corruption on known gates.
struct NetlistHandles {
    src0: terse_netlist::gate::GateId,
    cap_d: terse_netlist::gate::GateId,
}

/// The common random-netlist construction behind [`random_netlist`] and
/// [`random_netlist_with_defect`]. Every gate the random fan-in draws
/// leave unused is OR-folded into the control-capture cone, so the valid
/// artifact has no floating nets (the fold happens after all RNG draws,
/// keeping seed streams identical to earlier revisions up to that point).
fn build_random_netlist(seed: u64, gates: usize) -> (NetlistBuilder, NetlistHandles) {
    assert!(gates > 0, "random_netlist needs at least one gate");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(1);
    let s0 = b.flip_flop("src0", EndpointClass::Data, 0).expect("src0");
    let s1 = b
        .flip_flop("src1", EndpointClass::Control, 0)
        .expect("src1");
    let mut pool = vec![s0, s1];
    // Flip-flops never float (their Q legitimately may go unused), so the
    // two sources start `used`; combinational pool gates must be consumed.
    let mut used = vec![true, true];
    const UNARY: [GateKind; 2] = [GateKind::Buf, GateKind::Not];
    const BINARY: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
    ];
    for _ in 0..gates {
        let x = rng.next_range(0.0, 0.95) as f32;
        let y = rng.next_range(0.0, 0.95) as f32;
        b.set_region(x, y, x + 0.05, y + 0.05);
        let ai = rng.next_below(pool.len() as u64) as usize;
        let a = pool[ai];
        used[ai] = true;
        let g = if rng.next_below(4) == 0 {
            let kind = UNARY[rng.next_below(2) as usize];
            b.gate(kind, &[a], 0).expect("unary gate")
        } else {
            let ci = rng.next_below(pool.len() as u64) as usize;
            let c = pool[ci];
            used[ci] = true;
            let kind = BINARY[rng.next_below(5) as usize];
            b.gate(kind, &[a, c], 0).expect("binary gate")
        };
        pool.push(g);
        used.push(false);
    }
    // Capture endpoints hang off late gates so most of the logic is on some
    // path; the launch endpoints' own D inputs close the state loop.
    let last_idx = pool.len() - 1;
    let last = pool[last_idx];
    let near_idx = pool.len() - 1 - rng.next_below(pool.len().min(4) as u64) as usize;
    let near_last = pool[near_idx];
    used[last_idx] = true;
    used[near_idx] = true;
    // OR-fold any still-unused gate into the control cone: everything the
    // random draws orphaned now reaches the cap_c/src1 endpoints.
    let mut carry = near_last;
    for (i, &g) in pool.iter().enumerate() {
        if !used[i] {
            carry = b.gate(GateKind::Or, &[carry, g], 0).expect("fold gate");
        }
    }
    let d0 = b.flip_flop("cap_d", EndpointClass::Data, 0).expect("cap_d");
    let d1 = b
        .flip_flop("cap_c", EndpointClass::Control, 0)
        .expect("cap_c");
    b.connect_ff_input(d0, last).expect("connect cap_d");
    b.connect_ff_input(d1, carry).expect("connect cap_c");
    b.connect_ff_input(s0, last).expect("connect src0");
    b.connect_ff_input(s1, carry).expect("connect src1");
    (
        b,
        NetlistHandles {
            src0: s0,
            cap_d: d0,
        },
    )
}

/// A structural netlist defect class for static-analyzer fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlistDefect {
    /// Two combinational gates rewired into a cycle.
    CombinationalLoop,
    /// A combinational gate whose output drives nothing.
    FloatingNet,
    /// A flip-flop whose D input was never connected.
    UndrivenNet,
    /// A flip-flop with two D drivers.
    MultiDriver,
}

impl NetlistDefect {
    /// All defect classes, for exhaustive fixture sweeps.
    pub const ALL: [NetlistDefect; 4] = [
        NetlistDefect::CombinationalLoop,
        NetlistDefect::FloatingNet,
        NetlistDefect::UndrivenNet,
        NetlistDefect::MultiDriver,
    ];

    /// The diagnostic code `terse-analyze` must report for this defect.
    pub fn expected_code(self) -> &'static str {
        match self {
            NetlistDefect::CombinationalLoop => "NL001",
            NetlistDefect::FloatingNet => "NL004",
            NetlistDefect::UndrivenNet => "NL002",
            NetlistDefect::MultiDriver => "NL003",
        }
    }
}

/// A [`random_netlist`] deliberately corrupted with one structural defect,
/// assembled through `finish_unchecked` (the checked `finish` would reject
/// some of these outright).
///
/// # Panics
///
/// Panics if `gates == 0` or on internal builder misuse (a bug).
pub fn random_netlist_with_defect(seed: u64, gates: usize, defect: NetlistDefect) -> Netlist {
    let (mut b, h) = build_random_netlist(seed, gates);
    match defect {
        NetlistDefect::CombinationalLoop => {
            let g1 = b.gate(GateKind::Buf, &[h.src0], 0).expect("loop gate 1");
            let g2 = b.gate(GateKind::Buf, &[g1], 0).expect("loop gate 2");
            b.rewire_fanin(g1, &[g2]).expect("rewire into a cycle");
        }
        NetlistDefect::FloatingNet => {
            let _ = b.gate(GateKind::Buf, &[h.src0], 0).expect("floating gate");
        }
        NetlistDefect::UndrivenNet => {
            let _ = b
                .flip_flop("undriven", EndpointClass::Data, 0)
                .expect("undriven ff");
        }
        NetlistDefect::MultiDriver => {
            b.add_ff_driver(h.cap_d, h.src0).expect("second driver");
        }
    }
    b.finish_unchecked()
}

/// A compiled-op-tape defect class for static-analyzer fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeDefect {
    /// An op reading a combinational slot no earlier op has written.
    ReadBeforeWrite,
    /// Two ops writing the same destination slot.
    SlotAliasing,
    /// A source slot index beyond the slab.
    OutOfRange,
    /// An op clobbering a clock-edge-owned (external) slot.
    ExternalClobber,
}

impl TapeDefect {
    /// All defect classes, for exhaustive fixture sweeps.
    pub const ALL: [TapeDefect; 4] = [
        TapeDefect::ReadBeforeWrite,
        TapeDefect::SlotAliasing,
        TapeDefect::OutOfRange,
        TapeDefect::ExternalClobber,
    ];

    /// The diagnostic code `terse-analyze` must report for this defect.
    pub fn expected_code(self) -> &'static str {
        match self {
            TapeDefect::ReadBeforeWrite => "TP001",
            TapeDefect::SlotAliasing => "TP002",
            TapeDefect::OutOfRange => "TP003",
            TapeDefect::ExternalClobber => "TP004",
        }
    }
}

/// The compiled op tape of a [`random_netlist`] — the valid artifact for
/// the tape static-analysis pass (the compiler upholds write-before-read
/// and single-writer order by construction).
///
/// # Panics
///
/// Panics if `gates == 0`.
pub fn random_tape(seed: u64, gates: usize) -> terse_netlist::tape::CompiledTape {
    terse_netlist::tape::CompiledTape::compile(&random_netlist(seed, gates))
}

/// A [`random_tape`] corrupted with one defect class and reassembled
/// through `from_raw_ops` (the unchecked importer path — the compiler can
/// never emit these shapes).
///
/// # Panics
///
/// Panics if `gates == 0`.
pub fn random_tape_with_defect(
    seed: u64,
    gates: usize,
    defect: TapeDefect,
) -> terse_netlist::tape::CompiledTape {
    let tape = random_tape(seed, gates);
    let slots = tape.slot_count();
    let externals: Vec<u32> = (0..slots).filter(|&s| tape.is_external(s)).collect();
    let mut ops = tape.ops().to_vec();
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x7A9E);
    let pick = rng.next_below(ops.len() as u64) as usize;
    match defect {
        TapeDefect::ReadBeforeWrite => {
            // Read the last op's destination: written at a position >= the
            // victim's own, so the forward sweep sees a use-before-def.
            let late = ops[ops.len() - 1].dst;
            ops[pick].src[0] = late;
        }
        TapeDefect::SlotAliasing => {
            // A duplicated op is a second writer of the same slot.
            let dup = ops[pick];
            ops.push(dup);
        }
        TapeDefect::OutOfRange => {
            ops[pick].src[0] = slots + 1 + rng.next_below(7) as u32;
        }
        TapeDefect::ExternalClobber => {
            let e = externals[rng.next_below(externals.len() as u64) as usize];
            ops[pick].dst = e;
        }
    }
    terse_netlist::tape::CompiledTape::from_raw_ops(ops, slots, &externals)
}

/// A random activation set: each gate is independently activated with
/// probability `density`. Unrealizable activation patterns are *on purpose*
/// — the DTA engine must handle any `VCD(t)` bit set, and arbitrary subsets
/// stress the activated-path search harder than simulator traces.
pub fn random_vcd(n: &Netlist, seed: u64, density: f64) -> BitSet {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut v = BitSet::new(n.gate_count());
    for g in n.gate_ids() {
        if rng.next_f64() < density {
            v.insert(g.index());
        }
    }
    v
}

/// A *realizable* activation set: force every flip-flop to a random state,
/// clock once, re-force, and clock again — the second edge's toggle set is
/// what a co-simulation trace would record for this cycle.
pub fn simulated_vcd(n: &Netlist, seed: u64) -> BitSet {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut sim = Simulator::new(n);
    for round in 0..2 {
        for g in n.gate_ids() {
            match n.kind(g) {
                GateKind::FlipFlop => sim.force_ff(g, rng.next_u64() & 1 == 1),
                GateKind::Input => sim.set_input(g, rng.next_u64() & 1 == 1),
                _ => {}
            }
        }
        if round == 0 {
            let _ = sim.step();
        }
    }
    sim.step()
}

/// A random set of canonical slack RVs over `var_count` shared variables:
/// means in `[lo_mean, hi_mean]`, sparse random sensitivities, and a random
/// independent residual. Distinct means (jittered per index) keep
/// mean-sorting orders unambiguous for the metamorphic properties.
pub fn random_slacks(seed: u64, n: usize, var_count: usize) -> Vec<CanonicalRv> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mean = rng.next_range(20.0, 120.0) + i as f64 * 1e-3;
            let coeffs: Vec<f64> = (0..var_count)
                .map(|_| {
                    if rng.next_below(2) == 0 {
                        rng.next_range(-1.5, 1.5)
                    } else {
                        0.0
                    }
                })
                .collect();
            CanonicalRv::with_sensitivities(mean, coeffs, rng.next_range(0.01, 1.0))
        })
        .collect()
}

/// A random valid [`VariationConfig`]: random sigma, 1–3 quad-tree levels,
/// and random variance shares normalized to sum to one.
pub fn random_variation_config(seed: u64) -> VariationConfig {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let g = rng.next_range(0.05, 1.0);
    let s = rng.next_range(0.05, 1.0);
    let i = rng.next_range(0.05, 1.0);
    let t = g + s + i;
    let share_global = g / t;
    let share_spatial = s / t;
    VariationConfig {
        sigma_rel: rng.next_range(0.01, 0.08),
        levels: 1 + rng.next_below(3) as usize,
        share_global,
        share_spatial,
        share_indep: 1.0 - share_global - share_spatial,
    }
}

/// A random straight-line + branches program suitable for CFG-invariant
/// checks: `body` ALU instructions, `branches` conditional branches with
/// in-range targets, and a final `halt`. No indirect jumps and no interior
/// `halt`, so every non-entry block stays reachable through a static edge
/// (fall-through or branch target).
///
/// # Panics
///
/// Panics if `body == 0` or on an internal program-construction error.
pub fn random_program(seed: u64, body: usize, branches: usize) -> Program {
    assert!(body > 0, "random_program needs a non-empty body");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    const RTYPE: [Opcode; 6] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Mul,
    ];
    const BRANCH: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge];
    let mut insts: Vec<Instruction> = (0..body)
        .map(|_| {
            if rng.next_below(3) == 0 {
                Instruction::itype(
                    Opcode::Addi,
                    rng.next_below(32) as u8,
                    rng.next_below(32) as u8,
                    rng.next_range(-64.0, 64.0) as i32,
                )
            } else {
                Instruction::rtype(
                    RTYPE[rng.next_below(6) as usize],
                    rng.next_below(32) as u8,
                    rng.next_below(32) as u8,
                    rng.next_below(32) as u8,
                )
            }
        })
        .collect();
    for _ in 0..branches {
        let pos = rng.next_below(insts.len() as u64 + 1) as usize;
        let target = rng.next_below(insts.len() as u64 + 1) as i32;
        let opcode = BRANCH[rng.next_below(4) as usize];
        let rs1 = rng.next_below(32) as u8;
        let rs2 = rng.next_below(32) as u8;
        // `beq r0, r0` is the unconditional pseudo-jump: its fall-through
        // edge is suppressed, which would break this generator's "every
        // block reachable by a static edge" guarantee. Keep the draw
        // count identical and nudge one register off zero.
        let rs2 = if opcode == Opcode::Beq && rs1 == 0 && rs2 == 0 {
            1
        } else {
            rs2
        };
        insts.insert(
            pos,
            Instruction {
                opcode,
                rd: 0,
                rs1,
                rs2,
                imm: target,
            },
        );
    }
    insts.push(Instruction::halt());
    Program::new(insts, vec![], Default::default(), Default::default())
        .expect("generated instructions are well-formed")
}

/// A CFG defect class for static-analyzer fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgDefect {
    /// A block no static edge can reach (dead code behind a pseudo-jump).
    UnreachableBlock,
    /// A successor edge pointing at a block id the CFG does not have.
    DanglingEdge,
    /// A plain (non-terminated) block whose fall-through edge was dropped.
    MissingTerminator,
    /// Two blocks merged so a branch target lands mid-block.
    LeaderMismatch,
}

impl CfgDefect {
    /// All defect classes, for exhaustive fixture sweeps.
    pub const ALL: [CfgDefect; 4] = [
        CfgDefect::UnreachableBlock,
        CfgDefect::DanglingEdge,
        CfgDefect::MissingTerminator,
        CfgDefect::LeaderMismatch,
    ];

    /// The diagnostic code `terse-analyze` must report for this defect.
    pub fn expected_code(self) -> &'static str {
        match self {
            CfgDefect::UnreachableBlock => "CF001",
            CfgDefect::DanglingEdge => "CF002",
            CfgDefect::MissingTerminator => "CF003",
            CfgDefect::LeaderMismatch => "CF005",
        }
    }
}

/// A random program plus a CFG corrupted with one defect class. The
/// unreachable-block case is expressed in the program itself (the CFG is
/// then the faithful `from_program` derivation); the other three corrupt
/// the graph object through `Cfg::from_raw_parts`, producing shapes
/// `from_program` can never emit.
///
/// # Panics
///
/// Panics if `body < 2` or on an internal program-construction error.
pub fn random_cfg_with_defect(
    seed: u64,
    body: usize,
    defect: CfgDefect,
) -> (Program, terse_isa::Cfg) {
    use terse_isa::{BasicBlock, BlockId, Cfg};
    assert!(body >= 2, "defect CFGs need at least two body instructions");
    match defect {
        CfgDefect::UnreachableBlock => {
            // [j +2; dead alu; body…; halt] — the dead instruction's block
            // has no incoming static edge.
            let base = random_program(seed, body, 0);
            let mut insts = vec![
                Instruction {
                    opcode: Opcode::Beq,
                    rd: 0,
                    rs1: 0,
                    rs2: 0,
                    imm: 2,
                },
                Instruction::rtype(Opcode::Add, 1, 1, 1),
            ];
            // The base program has no branches, so shifting it by two
            // instructions invalidates no targets.
            insts.extend_from_slice(base.instructions());
            let p = Program::new(insts, vec![], Default::default(), Default::default())
                .expect("defect program is well-formed");
            let cfg = Cfg::from_program(&p);
            (p, cfg)
        }
        CfgDefect::DanglingEdge => {
            let p = random_program(seed, body, 1);
            let cfg = Cfg::from_program(&p);
            let blocks = cfg.blocks().to_vec();
            let m = blocks.len();
            let mut succs: Vec<Vec<BlockId>> = blocks
                .iter()
                .map(|b| cfg.successors(b.id).to_vec())
                .collect();
            succs[0].push(BlockId(m as u32 + 7));
            let bad = Cfg::from_raw_parts(blocks, succs, cfg.indirect_blocks().to_vec(), p.len());
            (p, bad)
        }
        CfgDefect::MissingTerminator => {
            let (p, cfg) = branch_back_program(seed, body);
            let blocks = cfg.blocks().to_vec();
            let mut succs: Vec<Vec<BlockId>> = blocks
                .iter()
                .map(|b| cfg.successors(b.id).to_vec())
                .collect();
            // Block 0 is a single plain ALU instruction; dropping its edge
            // leaves a non-terminated block with no fall-through.
            succs[0].clear();
            let bad = Cfg::from_raw_parts(blocks, succs, cfg.indirect_blocks().to_vec(), p.len());
            (p, bad)
        }
        CfgDefect::LeaderMismatch => {
            let (p, cfg) = branch_back_program(seed, body);
            // Merge blocks 0 and 1: the branch target (instruction 1) now
            // lands mid-block.
            let old = cfg.blocks();
            debug_assert!(old.len() >= 3);
            let blocks = vec![
                BasicBlock {
                    id: BlockId(0),
                    start: old[0].start,
                    end: old[1].end,
                },
                BasicBlock {
                    id: BlockId(1),
                    start: old[2].start,
                    end: old[2].end,
                },
            ];
            // Merged block ends with the back-branch: target lands in the
            // merged block itself; fall-through reaches the halt block.
            let succs = vec![vec![BlockId(0), BlockId(1)], Vec::new()];
            let bad = Cfg::from_raw_parts(blocks, succs, Vec::new(), p.len());
            (p, bad)
        }
    }
}

/// `[alu × body; bne r1, r2 -> 1; halt]` and its faithful CFG: block 0 is
/// the first ALU instruction alone (the branch target makes instruction 1
/// a leader), block 1 ends with the branch, block 2 is the halt.
fn branch_back_program(seed: u64, body: usize) -> (Program, terse_isa::Cfg) {
    let base = random_program(seed, body, 0);
    let mut insts: Vec<Instruction> = base.instructions().to_vec();
    let halt = insts.pop().expect("base program ends with halt");
    debug_assert_eq!(halt.opcode, Opcode::Halt);
    insts.push(Instruction {
        opcode: Opcode::Bne,
        rd: 0,
        rs1: 1,
        rs2: 2,
        imm: 1,
    });
    insts.push(halt);
    let p = Program::new(insts, vec![], Default::default(), Default::default())
        .expect("branch-back program is well-formed");
    let cfg = terse_isa::Cfg::from_program(&p);
    (p, cfg)
}

/// A slack-RV defect class for static-analyzer fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlackDefect {
    /// One RV's mean is NaN.
    NanMean,
    /// One RV has an infinite sensitivity coefficient.
    InfCoeff,
    /// One RV is exactly deterministic where variation is enabled.
    DegenerateVariance,
    /// One RV carries a longer sensitivity basis than the rest.
    VarCountMismatch,
}

impl SlackDefect {
    /// All defect classes, for exhaustive fixture sweeps.
    pub const ALL: [SlackDefect; 4] = [
        SlackDefect::NanMean,
        SlackDefect::InfCoeff,
        SlackDefect::DegenerateVariance,
        SlackDefect::VarCountMismatch,
    ];

    /// The diagnostic code `terse-analyze` must report for this defect.
    pub fn expected_code(self) -> &'static str {
        match self {
            SlackDefect::NanMean => "SL001",
            SlackDefect::InfCoeff => "SL001",
            SlackDefect::DegenerateVariance => "SL002",
            SlackDefect::VarCountMismatch => "SL003",
        }
    }
}

/// A [`random_slacks`] set with one RV poisoned by the given defect (at
/// index `n / 2`, so the reference basis taken from the first RV stays
/// valid).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_slacks_with_defect(
    seed: u64,
    n: usize,
    var_count: usize,
    defect: SlackDefect,
) -> Vec<CanonicalRv> {
    assert!(n >= 2, "defect slack sets need at least two RVs");
    let mut rvs = random_slacks(seed, n, var_count);
    let idx = n / 2;
    rvs[idx] = match defect {
        SlackDefect::NanMean => {
            CanonicalRv::with_sensitivities(f64::NAN, vec![0.0; var_count], 0.1)
        }
        SlackDefect::InfCoeff => {
            let mut coeffs = vec![0.0; var_count.max(1)];
            coeffs[0] = f64::INFINITY;
            CanonicalRv::with_sensitivities(50.0, coeffs, 0.1)
        }
        SlackDefect::DegenerateVariance => {
            CanonicalRv::with_sensitivities(50.0, vec![0.0; var_count], 0.0)
        }
        SlackDefect::VarCountMismatch => {
            CanonicalRv::with_sensitivities(50.0, vec![0.1; var_count + 1], 0.1)
        }
    };
    rvs
}

/// A dataflow defect class for DF-pass fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataflowDefect {
    /// A register written but never read on any path (DF001).
    DeadWrite,
    /// A register read before any definition reaches it (DF002).
    UseBeforeDef,
    /// A branch whose operands are statically constant (DF003).
    ConstBranch,
    /// `beq rX, rX` with `rX != r0`, always taken with a dead
    /// fall-through edge (DF004).
    AlwaysTakenBeq,
    /// A corrupted interval solution: an operand's interval is empty at
    /// a reachable instruction (DF005).
    EmptyInterval,
}

impl DataflowDefect {
    /// All defect classes, for exhaustive fixture sweeps.
    pub const ALL: [DataflowDefect; 5] = [
        DataflowDefect::DeadWrite,
        DataflowDefect::UseBeforeDef,
        DataflowDefect::ConstBranch,
        DataflowDefect::AlwaysTakenBeq,
        DataflowDefect::EmptyInterval,
    ];

    /// The diagnostic code `terse-analyze` must report for this defect.
    pub fn expected_code(self) -> &'static str {
        match self {
            DataflowDefect::DeadWrite => "DF001",
            DataflowDefect::UseBeforeDef => "DF002",
            DataflowDefect::ConstBranch => "DF003",
            DataflowDefect::AlwaysTakenBeq => "DF004",
            DataflowDefect::EmptyInterval => "DF005",
        }
    }
}

/// A seeded program (with its faithful CFG) for the dataflow passes,
/// optionally poisoned with one [`DataflowDefect`].
pub struct DataflowFixture {
    /// The program under analysis.
    pub program: Program,
    /// Its faithful CFG (`Cfg::from_program`).
    pub cfg: terse_isa::Cfg,
    /// For [`DataflowDefect::EmptyInterval`] only: a corrupted interval
    /// solution to feed `check_intervals` (the shipped transfers cannot
    /// produce an empty interval on a reachable path, so the defect must
    /// be injected into the solution object). `None` otherwise.
    pub corrupt_intervals:
        Option<terse_analyze::dataflow::Solution<terse_analyze::dataflow::IntervalFact>>,
}

/// Builds a [`DataflowFixture`]. With `defect == None` the program is
/// silent under every DF pass by construction: an init block defines
/// `r1` (a positive trip count), `r2` (a base address) and `r3` (an
/// accumulator); a loop of `chain` ALU ops folds `r1`/`r2` into `r3`;
/// `r1` counts down through a data-dependent back-branch; the exit path
/// stores `r3` through `r2` so every write is eventually read.
///
/// # Panics
///
/// Panics on an internal program-construction error (a generator bug).
pub fn random_dataflow_fixture(
    seed: u64,
    chain: usize,
    defect: Option<DataflowDefect>,
) -> DataflowFixture {
    use terse_analyze::dataflow::{solve, IntervalAnalysis, WorklistOrder};
    use terse_analyze::Interval;

    let mut rng = Xoshiro256::seed_from_u64(seed);
    let c1 = 1 + rng.next_below(63) as i32;
    let c2 = rng.next_below(64) as i32;
    const OPS: [Opcode; 4] = [Opcode::Add, Opcode::Xor, Opcode::Or, Opcode::And];

    let mut insts = vec![
        Instruction::itype(Opcode::Addi, 1, 0, c1),
        Instruction::itype(Opcode::Addi, 2, 0, c2),
    ];
    if defect != Some(DataflowDefect::UseBeforeDef) {
        // Dropping the accumulator's initialiser makes the loop's first
        // read of r3 reach program entry undefined.
        insts.push(Instruction::itype(Opcode::Addi, 3, 0, 0));
    }
    // A statically decided branch to the halt block (target patched once
    // the layout is final): constant operands for DF003, a non-zero
    // same-register `beq` for DF004.
    let static_branch_at = match defect {
        Some(DataflowDefect::ConstBranch) => {
            insts.push(Instruction {
                opcode: Opcode::Bne,
                rd: 0,
                rs1: 2,
                rs2: 0,
                imm: 0,
            });
            Some(insts.len() - 1)
        }
        Some(DataflowDefect::AlwaysTakenBeq) => {
            insts.push(Instruction {
                opcode: Opcode::Beq,
                rd: 0,
                rs1: 1,
                rs2: 1,
                imm: 0,
            });
            Some(insts.len() - 1)
        }
        _ => None,
    };
    if defect == Some(DataflowDefect::DeadWrite) {
        insts.push(Instruction::itype(Opcode::Addi, 5, 0, 7));
    }
    let loop_start = insts.len();
    for _ in 0..chain.max(1) {
        let op = OPS[rng.next_below(4) as usize];
        let rs2 = if rng.next_below(2) == 0 { 1 } else { 2 };
        insts.push(Instruction::rtype(op, 3, 3, rs2));
    }
    insts.push(Instruction::itype(Opcode::Addi, 1, 1, -1));
    insts.push(Instruction {
        opcode: Opcode::Bne,
        rd: 0,
        rs1: 1,
        rs2: 0,
        imm: loop_start as i32,
    });
    insts.push(Instruction {
        opcode: Opcode::St,
        rd: 0,
        rs1: 2,
        rs2: 3,
        imm: 0,
    });
    let halt_at = insts.len();
    insts.push(Instruction::halt());
    if let Some(i) = static_branch_at {
        insts[i].imm = halt_at as i32;
    }

    let program = Program::new(insts, vec![], Default::default(), Default::default())
        .expect("dataflow fixture program is well-formed");
    let cfg = terse_isa::Cfg::from_program(&program);
    let corrupt_intervals = if defect == Some(DataflowDefect::EmptyInterval) {
        let mut sol = solve(&IntervalAnalysis, &program, &cfg, WorklistOrder::Fifo);
        // The loop block's first instruction reads r3: an empty interval
        // there is exactly the inconsistency DF005 guards against.
        let b = cfg.block_containing(loop_start).index();
        sol.entry[b][3] = Interval::EMPTY;
        Some(sol)
    } else {
        None
    };
    DataflowFixture {
        program,
        cfg,
        corrupt_intervals,
    }
}

/// Runs the DF passes over a fixture exactly as a consumer would: the
/// full `analyze_dataflow` sweep, plus `check_intervals` over the
/// injected corrupted solution when the fixture carries one.
pub fn dataflow_fixture_report(fx: &DataflowFixture) -> terse_analyze::AnalysisReport {
    let mut r = terse_analyze::AnalysisReport::new();
    terse_analyze::analyze_dataflow(&fx.program, &fx.cfg, &mut r);
    if let Some(sol) = &fx.corrupt_intervals {
        terse_analyze::dataflow::check_intervals(&fx.program, &fx.cfg, sol, &mut r);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlists_are_reproducible() {
        let a = random_netlist(42, 10);
        let b = random_netlist(42, 10);
        assert_eq!(a.gate_count(), b.gate_count());
        for g in a.gate_ids() {
            assert_eq!(a.kind(g), b.kind(g));
            assert_eq!(a.fanin(g), b.fanin(g));
        }
        // All four named flip-flops are endpoints of stage 0.
        assert_eq!(a.endpoints(0).unwrap().len(), 4);
    }

    #[test]
    fn variation_configs_are_valid() {
        for seed in 0..200 {
            let cfg = random_variation_config(seed);
            let n = random_netlist(seed + 1, 5);
            let lib = terse_sta::delay::DelayLibrary::normalized_45nm();
            assert!(
                terse_sta::variation::VariationModel::new(&n, &lib, cfg).is_ok(),
                "seed {seed}: {cfg:?}"
            );
        }
    }

    #[test]
    fn simulated_vcd_is_subset_of_gates() {
        let n = random_netlist(7, 12);
        let v = simulated_vcd(&n, 99);
        assert!(v.iter().all(|i| i < n.gate_count()));
    }

    #[test]
    fn random_programs_assemble_into_cfgs() {
        for seed in 0..50 {
            let p = random_program(seed, 8, 3);
            let cfg = terse_isa::Cfg::from_program(&p);
            assert!(!cfg.is_empty());
            let total: usize = cfg.blocks().iter().map(|b| b.len()).sum();
            assert_eq!(total, p.len());
        }
    }
}
