//! Seeded random generators shared by the differential test suites.
//!
//! Everything here is a pure function of its `seed` argument (the generators
//! draw from `terse-stats`' xoshiro256** just like the rest of the
//! workspace), so a failing property case is reproducible from the one seed
//! the proptest shim persists.

use terse_isa::{Instruction, Opcode, Program};
use terse_netlist::builder::NetlistBuilder;
use terse_netlist::netlist::EndpointClass;
use terse_netlist::sim::Simulator;
use terse_netlist::{BitSet, GateKind, Netlist};
use terse_sta::variation::VariationConfig;
use terse_sta::CanonicalRv;
use terse_stats::rng::Xoshiro256;

/// A random single-stage netlist small enough for exhaustive path
/// enumeration: two launching flip-flops (one per endpoint class), `gates`
/// random combinational gates with random placement (so spatial variation
/// coefficients differ per gate), and two capturing flip-flops, again one
/// per class. Every flip-flop's D input is connected, so all four are
/// endpoints of stage 0.
///
/// # Panics
///
/// Panics if `gates == 0` (a netlist with no combinational logic has no
/// paths worth enumerating) or on internal builder misuse (a bug).
pub fn random_netlist(seed: u64, gates: usize) -> Netlist {
    assert!(gates > 0, "random_netlist needs at least one gate");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(1);
    let s0 = b.flip_flop("src0", EndpointClass::Data, 0).expect("src0");
    let s1 = b
        .flip_flop("src1", EndpointClass::Control, 0)
        .expect("src1");
    let mut pool = vec![s0, s1];
    const UNARY: [GateKind; 2] = [GateKind::Buf, GateKind::Not];
    const BINARY: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
    ];
    for _ in 0..gates {
        let x = rng.next_range(0.0, 0.95) as f32;
        let y = rng.next_range(0.0, 0.95) as f32;
        b.set_region(x, y, x + 0.05, y + 0.05);
        let a = pool[rng.next_below(pool.len() as u64) as usize];
        let g = if rng.next_below(4) == 0 {
            let kind = UNARY[rng.next_below(2) as usize];
            b.gate(kind, &[a], 0).expect("unary gate")
        } else {
            let c = pool[rng.next_below(pool.len() as u64) as usize];
            let kind = BINARY[rng.next_below(5) as usize];
            b.gate(kind, &[a, c], 0).expect("binary gate")
        };
        pool.push(g);
    }
    // Capture endpoints hang off late gates so most of the logic is on some
    // path; the launch endpoints' own D inputs close the state loop.
    let last = *pool.last().expect("non-empty pool");
    let near_last = pool[pool.len() - 1 - rng.next_below(pool.len().min(4) as u64) as usize];
    let d0 = b.flip_flop("cap_d", EndpointClass::Data, 0).expect("cap_d");
    let d1 = b
        .flip_flop("cap_c", EndpointClass::Control, 0)
        .expect("cap_c");
    b.connect_ff_input(d0, last).expect("connect cap_d");
    b.connect_ff_input(d1, near_last).expect("connect cap_c");
    b.connect_ff_input(s0, last).expect("connect src0");
    b.connect_ff_input(s1, near_last).expect("connect src1");
    b.finish().expect("random netlist is a DAG by construction")
}

/// A random activation set: each gate is independently activated with
/// probability `density`. Unrealizable activation patterns are *on purpose*
/// — the DTA engine must handle any `VCD(t)` bit set, and arbitrary subsets
/// stress the activated-path search harder than simulator traces.
pub fn random_vcd(n: &Netlist, seed: u64, density: f64) -> BitSet {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut v = BitSet::new(n.gate_count());
    for g in n.gate_ids() {
        if rng.next_f64() < density {
            v.insert(g.index());
        }
    }
    v
}

/// A *realizable* activation set: force every flip-flop to a random state,
/// clock once, re-force, and clock again — the second edge's toggle set is
/// what a co-simulation trace would record for this cycle.
pub fn simulated_vcd(n: &Netlist, seed: u64) -> BitSet {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut sim = Simulator::new(n);
    for round in 0..2 {
        for g in n.gate_ids() {
            match n.kind(g) {
                GateKind::FlipFlop => sim.force_ff(g, rng.next_u64() & 1 == 1),
                GateKind::Input => sim.set_input(g, rng.next_u64() & 1 == 1),
                _ => {}
            }
        }
        if round == 0 {
            let _ = sim.step();
        }
    }
    sim.step()
}

/// A random set of canonical slack RVs over `var_count` shared variables:
/// means in `[lo_mean, hi_mean]`, sparse random sensitivities, and a random
/// independent residual. Distinct means (jittered per index) keep
/// mean-sorting orders unambiguous for the metamorphic properties.
pub fn random_slacks(seed: u64, n: usize, var_count: usize) -> Vec<CanonicalRv> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mean = rng.next_range(20.0, 120.0) + i as f64 * 1e-3;
            let coeffs: Vec<f64> = (0..var_count)
                .map(|_| {
                    if rng.next_below(2) == 0 {
                        rng.next_range(-1.5, 1.5)
                    } else {
                        0.0
                    }
                })
                .collect();
            CanonicalRv::with_sensitivities(mean, coeffs, rng.next_range(0.01, 1.0))
        })
        .collect()
}

/// A random valid [`VariationConfig`]: random sigma, 1–3 quad-tree levels,
/// and random variance shares normalized to sum to one.
pub fn random_variation_config(seed: u64) -> VariationConfig {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let g = rng.next_range(0.05, 1.0);
    let s = rng.next_range(0.05, 1.0);
    let i = rng.next_range(0.05, 1.0);
    let t = g + s + i;
    let share_global = g / t;
    let share_spatial = s / t;
    VariationConfig {
        sigma_rel: rng.next_range(0.01, 0.08),
        levels: 1 + rng.next_below(3) as usize,
        share_global,
        share_spatial,
        share_indep: 1.0 - share_global - share_spatial,
    }
}

/// A random straight-line + branches program suitable for CFG-invariant
/// checks: `body` ALU instructions, `branches` conditional branches with
/// in-range targets, and a final `halt`. No indirect jumps and no interior
/// `halt`, so every non-entry block stays reachable through a static edge
/// (fall-through or branch target).
///
/// # Panics
///
/// Panics if `body == 0` or on an internal program-construction error.
pub fn random_program(seed: u64, body: usize, branches: usize) -> Program {
    assert!(body > 0, "random_program needs a non-empty body");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    const RTYPE: [Opcode; 6] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Mul,
    ];
    const BRANCH: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge];
    let mut insts: Vec<Instruction> = (0..body)
        .map(|_| {
            if rng.next_below(3) == 0 {
                Instruction::itype(
                    Opcode::Addi,
                    rng.next_below(32) as u8,
                    rng.next_below(32) as u8,
                    rng.next_range(-64.0, 64.0) as i32,
                )
            } else {
                Instruction::rtype(
                    RTYPE[rng.next_below(6) as usize],
                    rng.next_below(32) as u8,
                    rng.next_below(32) as u8,
                    rng.next_below(32) as u8,
                )
            }
        })
        .collect();
    for _ in 0..branches {
        let pos = rng.next_below(insts.len() as u64 + 1) as usize;
        let target = rng.next_below(insts.len() as u64 + 1) as i32;
        insts.insert(
            pos,
            Instruction {
                opcode: BRANCH[rng.next_below(4) as usize],
                rd: 0,
                rs1: rng.next_below(32) as u8,
                rs2: rng.next_below(32) as u8,
                imm: target,
            },
        );
    }
    insts.push(Instruction::halt());
    Program::new(insts, vec![], Default::default(), Default::default())
        .expect("generated instructions are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlists_are_reproducible() {
        let a = random_netlist(42, 10);
        let b = random_netlist(42, 10);
        assert_eq!(a.gate_count(), b.gate_count());
        for g in a.gate_ids() {
            assert_eq!(a.kind(g), b.kind(g));
            assert_eq!(a.fanin(g), b.fanin(g));
        }
        // All four named flip-flops are endpoints of stage 0.
        assert_eq!(a.endpoints(0).unwrap().len(), 4);
    }

    #[test]
    fn variation_configs_are_valid() {
        for seed in 0..200 {
            let cfg = random_variation_config(seed);
            let n = random_netlist(seed + 1, 5);
            let lib = terse_sta::delay::DelayLibrary::normalized_45nm();
            assert!(
                terse_sta::variation::VariationModel::new(&n, &lib, cfg).is_ok(),
                "seed {seed}: {cfg:?}"
            );
        }
    }

    #[test]
    fn simulated_vcd_is_subset_of_gates() {
        let n = random_netlist(7, 12);
        let v = simulated_vcd(&n, 99);
        assert!(v.iter().all(|i| i < n.gate_count()));
    }

    #[test]
    fn random_programs_assemble_into_cfgs() {
        for seed in 0..50 {
            let p = random_program(seed, 8, 3);
            let cfg = terse_isa::Cfg::from_program(&p);
            assert!(!cfg.is_empty());
            let total: usize = cfg.blocks().iter().map(|b| b.len()).sum();
            assert_eq!(total, p.len());
        }
    }
}
