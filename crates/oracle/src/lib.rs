//! Brute-force ground-truth oracles for differential verification.
//!
//! The paper's headline claim is *accuracy*: Algorithm 1's stage DTS and the
//! Section 5 error-rate pipeline must agree with ground truth. Every other
//! crate implements the *clever* version of its computation (lazy best-first
//! path enumeration, per-SCC linear solves, canonical-form SSTA); this crate
//! implements the *obvious* version — exhaustive DFS over every path, direct
//! probability propagation over a concrete trace, dense Monte Carlo over
//! sampled chips — and the test suites diff the two. The oracles are
//! deliberately simple enough to audit by eye; they share no enumeration or
//! solver code with the implementations they check.
//!
//! Layout:
//!
//! * [`gen`] — seeded random generators (small netlists, activation sets,
//!   canonical slack sets, variation configurations, programs) used by the
//!   property suites of every layer.
//! * [`exhaustive`] — the gate-level oracle: enumerate *all* paths of an
//!   endpoint by DFS, filter by activation, and reproduce Algorithm 1's
//!   candidate ranking from the full path set.
//! * [`mc`] — probability-chain oracles: exact dynamic propagation of the
//!   Bernoulli error chain over a concrete trace, plus its Monte Carlo
//!   counterpart, for checking `errmodel`'s marginal solver.
//!
//! The slow exhaustive suites are `#[ignore]`d; run them with
//! `cargo test -p oracle -- --ignored` (CI runs them on a schedule).

pub mod exhaustive;
pub mod gen;
pub mod mc;
