//! Probability-chain oracles for the marginal solver (`errmodel`).
//!
//! `solve_marginals` answers a steady-state question: given per-instruction
//! conditional probabilities `p^c`/`p^e` and *aggregate* edge/block counts,
//! what is each instruction's marginal error probability? This module
//! answers the same question two independent ways from a *concrete* block
//! trace:
//!
//! 1. [`ChainSpec::exact_dynamic_marginals`] propagates the error
//!    probability exactly, visit by visit, through the trace (the per-step
//!    recurrence is linear in the probability, so this is the true expected
//!    marginal of every dynamic instruction — no sampling noise).
//! 2. [`ChainSpec::mc_marginals`] replays the trace as an actual Bernoulli
//!    error chain many times and reports empirical frequencies.
//!
//! The solver sees only the aggregated counts of the same trace, so the
//! three computations bracket each other: MC ≈ exact-dynamic (binomial
//! noise only), and exact-dynamic ≈ solver (the fixed-point approximation
//! the paper's Eqs. 1–2 make, which vanishes as traces grow).

use std::collections::HashMap;
use terse_errmodel::MarginalProblem;
use terse_isa::BlockId;
use terse_stats::rng::Xoshiro256;
use terse_stats::SampleRv;

/// A concrete error-chain instance: block structure, conditional
/// probabilities, and one execution trace.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Per block, per instruction: `p^c`.
    pub pc: Vec<Vec<f64>>,
    /// Per block, per instruction: `p^e`.
    pub pe: Vec<Vec<f64>>,
    /// The visited block sequence (starts at block 0, the flushed entry).
    pub trace: Vec<usize>,
}

impl ChainSpec {
    /// A random chain: 2–4 blocks of 1–3 instructions, conditional
    /// probabilities with `|p^e − p^c| ≤ 0.5` (keeps the fixed-point
    /// transient small relative to trace length), and a random-walk trace of
    /// `steps` visits starting at block 0.
    pub fn random(seed: u64, steps: usize) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let m = 2 + rng.next_below(3) as usize;
        let mut pc = Vec::with_capacity(m);
        let mut pe = Vec::with_capacity(m);
        for _ in 0..m {
            let n_i = 1 + rng.next_below(3) as usize;
            let mut pcs = Vec::with_capacity(n_i);
            let mut pes = Vec::with_capacity(n_i);
            for _ in 0..n_i {
                let c = rng.next_range(0.0, 0.3);
                pcs.push(c);
                pes.push(c + rng.next_range(0.0, 0.5));
            }
            pc.push(pcs);
            pe.push(pes);
        }
        let mut trace = vec![0usize];
        for _ in 1..steps.max(1) {
            trace.push(rng.next_below(m as u64) as usize);
        }
        ChainSpec { pc, pe, trace }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.pc.len()
    }

    /// Number of visits of block `i` in the trace.
    pub fn visits(&self, i: usize) -> usize {
        self.trace.iter().filter(|&&b| b == i).count()
    }

    /// The aggregated [`MarginalProblem`] the solver under test sees:
    /// single-sample edge and block counts derived from the trace.
    pub fn to_problem(&self) -> MarginalProblem {
        let m = self.block_count();
        let mut edge_counts: HashMap<(BlockId, BlockId), Vec<f64>> = HashMap::new();
        for w in self.trace.windows(2) {
            edge_counts
                .entry((BlockId(w[0] as u32), BlockId(w[1] as u32)))
                .or_insert_with(|| vec![0.0])[0] += 1.0;
        }
        let block_counts: Vec<Vec<f64>> = (0..m).map(|i| vec![self.visits(i) as f64]).collect();
        MarginalProblem {
            cond_correct: self
                .pc
                .iter()
                .map(|b| b.iter().map(|&p| SampleRv::constant(p, 1)).collect())
                .collect(),
            cond_error: self
                .pe
                .iter()
                .map(|b| b.iter().map(|&p| SampleRv::constant(p, 1)).collect())
                .collect(),
            edge_counts,
            block_counts,
        }
    }

    /// The exact expected marginal of every static instruction, averaged
    /// over its dynamic instances: propagate the error probability through
    /// the trace with the linear per-instruction recurrence
    /// `p ← p^e·p + p^c·(1 − p)`, starting from the flushed state `p = 1`.
    ///
    /// Unvisited blocks report 0 (matching the solver's convention).
    pub fn exact_dynamic_marginals(&self) -> Vec<Vec<f64>> {
        let mut acc: Vec<Vec<f64>> = self.pc.iter().map(|b| vec![0.0; b.len()]).collect();
        let mut p = 1.0f64; // flushed start
        for &b in &self.trace {
            let probs = self.pe[b].iter().zip(&self.pc[b]);
            for (slot, (&pe, &pc)) in acc[b].iter_mut().zip(probs) {
                p = pe * p + pc * (1.0 - p);
                *slot += p;
            }
        }
        for (i, blk) in acc.iter_mut().enumerate() {
            let v = self.visits(i);
            if v > 0 {
                for x in blk.iter_mut() {
                    *x /= v as f64;
                }
            }
        }
        acc
    }

    /// Empirical marginals from `trials` Bernoulli replays of the trace.
    pub fn mc_marginals(&self, trials: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut hits: Vec<Vec<u64>> = self.pc.iter().map(|b| vec![0u64; b.len()]).collect();
        for _ in 0..trials {
            let mut prev_err = true; // flushed start
            for &b in &self.trace {
                let probs = self.pe[b].iter().zip(&self.pc[b]);
                for (slot, (&pe, &pc)) in hits[b].iter_mut().zip(probs) {
                    let p = if prev_err { pe } else { pc };
                    prev_err = rng.next_f64() < p;
                    if prev_err {
                        *slot += 1;
                    }
                }
            }
        }
        hits.iter()
            .enumerate()
            .map(|(i, blk)| {
                let v = self.visits(i);
                blk.iter()
                    .map(|&h| {
                        if v > 0 {
                            h as f64 / (trials as f64 * v as f64)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_dynamic_matches_hand_computation() {
        // One block [pc=0.1, pe=0.5], visited twice: flushed start p0 = 1.
        let spec = ChainSpec {
            pc: vec![vec![0.1]],
            pe: vec![vec![0.5]],
            trace: vec![0, 0],
        };
        let m = spec.exact_dynamic_marginals();
        // Visit 1: p = 0.5·1 + 0.1·0 = 0.5.
        // Visit 2: p = 0.5·0.5 + 0.1·0.5 = 0.30. Average = 0.40.
        assert!((m[0][0] - 0.40).abs() < 1e-12, "got {}", m[0][0]);
    }

    #[test]
    fn mc_converges_to_exact_dynamic() {
        let spec = ChainSpec::random(17, 40);
        let exact = spec.exact_dynamic_marginals();
        let mc = spec.mc_marginals(40_000, 5);
        for i in 0..spec.block_count() {
            let v = spec.visits(i);
            if v == 0 {
                continue;
            }
            for k in 0..spec.pc[i].len() {
                let p = exact[i][k];
                let se = (p * (1.0 - p) / (40_000.0 * v as f64)).sqrt();
                assert!(
                    (mc[i][k] - p).abs() < 5.0 * se + 1e-3,
                    "block {i} inst {k}: mc {} vs exact {p} (se {se})",
                    mc[i][k]
                );
            }
        }
    }

    #[test]
    fn problem_counts_are_consistent() {
        let spec = ChainSpec::random(3, 30);
        let prob = spec.to_problem();
        // Edge counts out of each block + trace end equal block counts.
        let total_edges: f64 = prob.edge_counts.values().map(|v| v[0]).sum();
        assert!((total_edges - (spec.trace.len() - 1) as f64).abs() < 1e-12);
        let total_blocks: f64 = prob.block_counts.iter().map(|v| v[0]).sum();
        assert!((total_blocks - spec.trace.len() as f64).abs() < 1e-12);
    }
}
