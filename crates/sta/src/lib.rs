//! # terse-sta
//!
//! Static and statistical static timing analysis (STA / SSTA) over
//! `terse-netlist` netlists — the timing engine behind the paper's
//! Algorithm 1.
//!
//! The paper runs Synopsys PrimeTime for STA and replaces it with SSTA to
//! model process variation. This crate provides the same two modes:
//!
//! * **Deterministic STA** ([`analysis`]): nominal gate delays from a small
//!   normalized cell library ([`delay`]), block-based longest-path arrival
//!   times, endpoint slacks, and exact path delays.
//! * **SSTA** ([`variation`], [`canonical`]): gate delays become Gaussians in
//!   *canonical first-order form* — a mean plus sensitivities to a global
//!   variable, to quad-tree spatial-grid variables (the spatial-correlation
//!   property the paper highlights), and an independent residual. Path
//!   delays sum exactly; statistical max/min across paths uses Clark's
//!   moment matching with the greedy pairwise ordering of Sinha et al.
//!   (\[21] in the paper) implemented in [`statmin`].
//! * **Critical-path enumeration** ([`paths`]): `CP(P_i)` — paths ending at
//!   an endpoint in decreasing criticality — implemented lazily (best-first
//!   search with an admissible longest-distance bound), plus the
//!   activated-subgraph shortcut used by the fast DTA mode.
//!
//! # Example
//!
//! ```
//! use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};
//! use terse_sta::delay::DelayLibrary;
//! use terse_sta::analysis::Sta;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = PipelineNetlist::build(PipelineConfig::default())?;
//! let lib = DelayLibrary::normalized_45nm();
//! let sta = Sta::new(p.netlist(), &lib);
//! // The most critical stage of the full-width pipeline is EX (stage 3).
//! let crit = sta.critical_stage();
//! assert_eq!(crit, 3);
//! # Ok(())
//! # }
//! ```

// Numeric-kernel idioms used intentionally throughout this crate:
// `!(x >= 0.0)` rejects NaN along with negatives, and index loops run over
// several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]
#![warn(missing_docs)]
pub mod analysis;
pub mod canonical;
pub mod delay;
pub mod paths;
pub mod statmin;
pub mod variation;

pub use analysis::Sta;
pub use canonical::{CanonicalRv, SensitivityInterner};
pub use delay::{DelayLibrary, TimingConstraints};
pub use paths::{Path, PathEnumerator};
pub use variation::{ChipSample, VariationConfig, VariationModel};

use std::fmt;

/// Error type for timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// The referenced endpoint is not a flip-flop of the netlist.
    NotAnEndpoint {
        /// The gate id supplied.
        id: u32,
    },
    /// A path was empty or malformed.
    MalformedPath {
        /// What was wrong.
        reason: &'static str,
    },
    /// A numeric parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::NotAnEndpoint { id } => write!(f, "gate {id} is not an endpoint"),
            StaError::MalformedPath { reason } => write!(f, "malformed path: {reason}"),
            StaError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter `{name}` = {value}")
            }
        }
    }
}

impl std::error::Error for StaError {}

/// Crate-wide result alias.
pub type Result<T, E = StaError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::StaError>();
    }
}
