//! Gate delay annotation — the normalized 45 nm-flavoured cell library.
//!
//! The paper's absolute numbers come from a TSMC 45 nm library we cannot
//! ship; what the estimator consumes is only *relative* slack, so we use a
//! normalized library in picosecond-like units whose ratios follow typical
//! 45 nm standard cells (INV ≈ 8, NAND2 ≈ 10, XOR2 ≈ 18, MUX2 ≈ 16, plus a
//! per-fanout load adder). DESIGN.md records this substitution.

use terse_netlist::{GateId, GateKind, Netlist};

/// Per-kind base delays plus a linear fanout load model:
/// `delay(g) = base(kind) + load_per_fanout · max(fanout − 1, 0)`.
///
/// # Example
/// ```
/// use terse_sta::delay::DelayLibrary;
/// let lib = DelayLibrary::normalized_45nm();
/// assert!(lib.base(terse_netlist::GateKind::Xor) > lib.base(terse_netlist::GateKind::Nand));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayLibrary {
    inv: f64,
    buf: f64,
    nand: f64,
    nor: f64,
    and: f64,
    or: f64,
    xor: f64,
    xnor: f64,
    mux: f64,
    /// Clock-to-Q delay of a flip-flop (contributes at the head of a path).
    pub clk_to_q: f64,
    /// Setup time of a flip-flop (contributes at the tail of a path).
    pub setup: f64,
    /// Additional delay per fanout beyond the first.
    pub load_per_fanout: f64,
}

impl DelayLibrary {
    /// The default normalized 45 nm-flavoured library.
    pub fn normalized_45nm() -> Self {
        DelayLibrary {
            inv: 8.0,
            buf: 10.0,
            nand: 10.0,
            nor: 11.0,
            and: 14.0,
            or: 14.0,
            xor: 18.0,
            xnor: 18.0,
            mux: 16.0,
            clk_to_q: 45.0,
            setup: 25.0,
            load_per_fanout: 1.5,
        }
    }

    /// Base (unloaded) delay of a gate kind. Ports, ties and flip-flops have
    /// no combinational delay of their own (flip-flop timing enters through
    /// [`DelayLibrary::clk_to_q`] / [`DelayLibrary::setup`]).
    pub fn base(&self, kind: GateKind) -> f64 {
        match kind {
            GateKind::Input | GateKind::Tie(_) | GateKind::FlipFlop => 0.0,
            GateKind::Buf => self.buf,
            GateKind::Not => self.inv,
            GateKind::And => self.and,
            GateKind::Or => self.or,
            GateKind::Nand => self.nand,
            GateKind::Nor => self.nor,
            GateKind::Xor => self.xor,
            GateKind::Xnor => self.xnor,
            GateKind::Mux => self.mux,
        }
    }

    /// Loaded nominal delay of a specific gate instance.
    pub fn nominal(&self, netlist: &Netlist, id: GateId) -> f64 {
        let base = self.base(netlist.kind(id));
        if base == 0.0 {
            return 0.0;
        }
        let fo = netlist.fanout(id).len().saturating_sub(1) as f64;
        base + self.load_per_fanout * fo
    }

    /// Nominal delays for every gate, indexed by gate id.
    pub fn annotate(&self, netlist: &Netlist) -> Vec<f64> {
        netlist
            .gate_ids()
            .map(|g| self.nominal(netlist, g))
            .collect()
    }
}

impl Default for DelayLibrary {
    fn default() -> Self {
        DelayLibrary::normalized_45nm()
    }
}

/// Clock constraints of an analysis: the clock period under test.
///
/// The paper's operating points map to periods: 718 MHz (STA-safe baseline),
/// 810 MHz (point of first failure), 825 MHz (working point, 1.15×).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConstraints {
    /// Clock period in library units (ps).
    pub clock_period: f64,
}

impl TimingConstraints {
    /// Creates constraints from a period.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive.
    pub fn with_period(clock_period: f64) -> Self {
        assert!(clock_period > 0.0, "clock period must be positive");
        TimingConstraints { clock_period }
    }

    /// Creates constraints from a frequency in GHz-like units (reciprocal of
    /// the period in the library's time unit ×1000).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    pub fn with_frequency_ghz(f: f64) -> Self {
        assert!(f > 0.0, "frequency must be positive");
        TimingConstraints {
            clock_period: 1000.0 / f,
        }
    }

    /// The frequency implied by the period, in GHz-like units.
    pub fn frequency_ghz(&self) -> f64 {
        1000.0 / self.clock_period
    }

    /// A new constraint with the period scaled by `1/factor` (i.e. the
    /// frequency scaled by `factor`) — how the paper overclocks from the
    /// baseline to 1.13× and 1.15×.
    pub fn overclocked(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "overclock factor must be positive");
        TimingConstraints {
            clock_period: self.clock_period / factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terse_netlist::builder::NetlistBuilder;
    use terse_netlist::netlist::EndpointClass;

    #[test]
    fn base_delays_ordering() {
        let lib = DelayLibrary::normalized_45nm();
        assert!(lib.base(GateKind::Not) < lib.base(GateKind::Nand));
        assert!(lib.base(GateKind::Nand) < lib.base(GateKind::And));
        assert!(lib.base(GateKind::And) < lib.base(GateKind::Xor));
        assert_eq!(lib.base(GateKind::FlipFlop), 0.0);
        assert_eq!(lib.base(GateKind::Input), 0.0);
    }

    #[test]
    fn fanout_loading() {
        let mut b = NetlistBuilder::new(1);
        let x = b.input("x", 0).unwrap();
        let inv = b.gate(GateKind::Not, &[x], 0).unwrap();
        // Give the inverter 3 fanouts.
        let f1 = b.gate(GateKind::Buf, &[inv], 0).unwrap();
        let _f2 = b.gate(GateKind::Buf, &[inv], 0).unwrap();
        let _f3 = b.gate(GateKind::Buf, &[inv], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, f1).unwrap();
        let n = b.finish().unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let d = lib.nominal(&n, inv);
        assert!((d - (8.0 + 1.5 * 2.0)).abs() < 1e-12);
        // Buffers driving one load have their base delay.
        assert!((lib.nominal(&n, f1) - 10.0).abs() < 1e-12);
        let ann = lib.annotate(&n);
        assert_eq!(ann.len(), n.gate_count());
        assert_eq!(ann[inv.index()], d);
    }

    #[test]
    fn constraints_conversions() {
        let c = TimingConstraints::with_frequency_ghz(0.718);
        assert!((c.frequency_ghz() - 0.718).abs() < 1e-12);
        let oc = c.overclocked(1.15);
        assert!((oc.frequency_ghz() - 0.718 * 1.15).abs() < 1e-12);
        assert!(oc.clock_period < c.clock_period);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = TimingConstraints::with_period(0.0);
    }
}
