//! Greedy pairwise statistical minimum over a set of slack RVs.
//!
//! Algorithm 1's last line returns "the statistical minimum of timing slacks
//! of all paths in AP using a greedy algorithm [Sinha et al., 21] that
//! performs a sequence of pairwise minimum operations in an order that would
//! minimize the approximation error". Clark's pairwise min is exact for
//! jointly Gaussian pairs only in its first two moments, and the error of a
//! *sequence* of mins depends on the order — Sinha et al. showed that
//! merging highly correlated (or clearly ordered) operands first reduces the
//! accumulated moment-matching error. We implement three orderings and
//! expose them for the ablation bench.

use crate::canonical::CanonicalRv;
use crate::{Result, StaError};
use rayon::prelude::*;

/// Order in which pairwise Clark minimums are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MinOrdering {
    /// Merge the most correlated pair first (greedy, O(n³) pair scans) —
    /// the Sinha-style error-minimizing heuristic.
    #[default]
    MaxCorrelationFirst,
    /// Sort by ascending mean and fold — cheap and usually close.
    AscendingMean,
    /// Fold in the order given — the naive baseline the ablation compares
    /// against.
    InputOrder,
}

/// Statistical minimum of a non-empty set of canonical slacks.
///
/// # Errors
///
/// Returns [`StaError::MalformedPath`] for an empty input.
///
/// # Example
/// ```
/// use terse_sta::CanonicalRv;
/// use terse_sta::statmin::{statistical_min, MinOrdering};
///
/// # fn main() -> Result<(), terse_sta::StaError> {
/// let slacks = vec![
///     CanonicalRv::with_sensitivities(10.0, vec![1.0], 0.2),
///     CanonicalRv::with_sensitivities(12.0, vec![0.8], 0.3),
///     CanonicalRv::with_sensitivities(9.5, vec![1.1], 0.1),
/// ];
/// let min = statistical_min(&slacks, MinOrdering::MaxCorrelationFirst)?;
/// // The min's mean is below every operand's mean.
/// assert!(min.mean() <= 9.5);
/// # Ok(())
/// # }
/// ```
pub fn statistical_min(slacks: &[CanonicalRv], ordering: MinOrdering) -> Result<CanonicalRv> {
    failpoints::fail_point!("sta::statmin", |_| Err(StaError::MalformedPath {
        reason: "injected statistical-min fault",
    }));
    if slacks.is_empty() {
        return Err(StaError::MalformedPath {
            reason: "statistical min of an empty slack set",
        });
    }
    if slacks.len() == 1 {
        return Ok(slacks[0].clone());
    }
    match ordering {
        MinOrdering::InputOrder => {
            let mut acc = slacks[0].clone();
            for s in &slacks[1..] {
                acc = acc.stat_min(s).0;
            }
            Ok(acc)
        }
        MinOrdering::AscendingMean => {
            let mut sorted: Vec<&CanonicalRv> = slacks.iter().collect();
            sorted.sort_by(|a, b| a.mean().total_cmp(&b.mean()));
            let mut acc = sorted[0].clone();
            for s in &sorted[1..] {
                acc = acc.stat_min(s).0;
            }
            Ok(acc)
        }
        MinOrdering::MaxCorrelationFirst => {
            // Greedy agglomeration; for large sets fall back to the sort
            // (quadratic pair scans would dominate the whole analysis).
            if slacks.len() > 64 {
                return statistical_min(slacks, MinOrdering::AscendingMean);
            }
            let mut pool: Vec<CanonicalRv> = slacks.to_vec();
            while pool.len() > 1 {
                // Each round scans every pair for the most correlated one.
                // Rows (fixed `i`) are independent, so evaluate them in
                // parallel; each row keeps its best `j` under a strict `>`,
                // and a serial fold over rows in ascending `i` (also strict
                // `>`) then reproduces exactly the pair the serial
                // double-loop would pick, ties and all. Small pools (the
                // per-instruction two-operand mins on the simulator's hot
                // path) stay serial — fan-out would cost more than the scan.
                let rows = pool.len() - 1;
                let row_fn = |i: usize| {
                    let (mut best, mut bj) = (f64::NEG_INFINITY, i + 1);
                    for j in i + 1..pool.len() {
                        let c = pool[i].corr(&pool[j]);
                        if c > best {
                            best = c;
                            bj = j;
                        }
                    }
                    (best, bj)
                };
                let row_best: Vec<(f64, usize)> = if rows < 32 {
                    (0..rows).map(row_fn).collect()
                } else {
                    (0..rows).into_par_iter().map(row_fn).collect()
                };
                let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::NEG_INFINITY);
                for (i, &(c, j)) in row_best.iter().enumerate() {
                    if c > best {
                        best = c;
                        bi = i;
                        bj = j;
                    }
                }
                let b = pool.swap_remove(bj);
                let a = pool.swap_remove(if bi > bj { bi - 1 } else { bi });
                pool.push(a.stat_min(&b).0);
            }
            // The loop above maintains `pool.len() ≥ 1` (each round removes
            // two and pushes one, and only runs while len > 1).
            pool.pop().ok_or(StaError::MalformedPath {
                reason: "statistical min pool emptied",
            })
        }
    }
}

/// Monte Carlo reference for the minimum of canonical forms (shared draw per
/// scenario, independent residual per operand) — used by tests and the
/// ordering ablation to measure each ordering's approximation error.
pub fn monte_carlo_min(slacks: &[CanonicalRv], samples: usize, seed: u64) -> Result<(f64, f64)> {
    if slacks.is_empty() {
        return Err(StaError::MalformedPath {
            reason: "monte carlo min of an empty slack set",
        });
    }
    let k = slacks[0].var_count();
    let mut rng = terse_stats::rng::Xoshiro256::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    for _ in 0..samples {
        let draw: Vec<f64> = (0..k).map(|_| rng.next_gaussian()).collect();
        let m = slacks
            .iter()
            .map(|s| s.sample_at(&draw, rng.next_gaussian()))
            .fold(f64::INFINITY, f64::min);
        sum += m;
        sum2 += m * m;
    }
    let mean = sum / samples as f64;
    Ok((mean, sum2 / samples as f64 - mean * mean))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slack_set() -> Vec<CanonicalRv> {
        vec![
            CanonicalRv::with_sensitivities(10.0, vec![1.0, 0.3], 0.4),
            CanonicalRv::with_sensitivities(10.5, vec![0.9, 0.4], 0.5),
            CanonicalRv::with_sensitivities(11.0, vec![0.1, 1.2], 0.3),
            CanonicalRv::with_sensitivities(12.0, vec![0.2, 1.0], 0.6),
            CanonicalRv::with_sensitivities(10.2, vec![1.1, 0.2], 0.2),
        ]
    }

    #[test]
    fn min_below_every_operand_mean() {
        let slacks = slack_set();
        for ord in [
            MinOrdering::MaxCorrelationFirst,
            MinOrdering::AscendingMean,
            MinOrdering::InputOrder,
        ] {
            let m = statistical_min(&slacks, ord).unwrap();
            for s in &slacks {
                assert!(m.mean() <= s.mean() + 1e-9, "{ord:?}");
            }
        }
    }

    #[test]
    fn orderings_agree_with_monte_carlo() {
        let slacks = slack_set();
        let (mc_mean, _) = monte_carlo_min(&slacks, 200_000, 3).unwrap();
        for ord in [
            MinOrdering::MaxCorrelationFirst,
            MinOrdering::AscendingMean,
            MinOrdering::InputOrder,
        ] {
            let m = statistical_min(&slacks, ord).unwrap();
            assert!(
                (m.mean() - mc_mean).abs() < 0.05,
                "{ord:?}: {} vs MC {mc_mean}",
                m.mean()
            );
        }
    }

    #[test]
    fn correlation_first_beats_or_matches_naive_on_adversarial_order() {
        // Adversarial input order: alternating between two correlated
        // clusters. The greedy ordering should be at least as accurate.
        let a = CanonicalRv::with_sensitivities(10.0, vec![2.0, 0.0], 0.1);
        let a2 = CanonicalRv::with_sensitivities(10.1, vec![2.0, 0.0], 0.1);
        let b = CanonicalRv::with_sensitivities(10.0, vec![0.0, 2.0], 0.1);
        let b2 = CanonicalRv::with_sensitivities(10.1, vec![0.0, 2.0], 0.1);
        let slacks = vec![a, b, a2, b2];
        let (mc_mean, _) = monte_carlo_min(&slacks, 400_000, 11).unwrap();
        let greedy = statistical_min(&slacks, MinOrdering::MaxCorrelationFirst).unwrap();
        let naive = statistical_min(&slacks, MinOrdering::InputOrder).unwrap();
        let err_greedy = (greedy.mean() - mc_mean).abs();
        let err_naive = (naive.mean() - mc_mean).abs();
        assert!(
            err_greedy <= err_naive + 0.01,
            "greedy {err_greedy} vs naive {err_naive}"
        );
    }

    #[test]
    fn single_operand_is_identity() {
        let s = slack_set();
        let m = statistical_min(&s[..1], MinOrdering::MaxCorrelationFirst).unwrap();
        assert_eq!(&m, &s[0]);
    }

    #[test]
    fn empty_set_rejected() {
        assert!(statistical_min(&[], MinOrdering::AscendingMean).is_err());
        assert!(monte_carlo_min(&[], 10, 0).is_err());
    }

    #[test]
    fn large_set_falls_back_gracefully() {
        let slacks: Vec<CanonicalRv> = (0..100)
            .map(|i| CanonicalRv::with_sensitivities(10.0 + i as f64 * 0.01, vec![1.0, 0.5], 0.2))
            .collect();
        let m = statistical_min(&slacks, MinOrdering::MaxCorrelationFirst).unwrap();
        assert!(m.mean() <= 10.0 + 1e-9);
        assert!(m.sd() > 0.0);
    }
}
