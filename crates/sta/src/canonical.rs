//! Canonical first-order Gaussian form and Clark's statistical max/min.
//!
//! SSTA represents every timing quantity as
//!
//! ```text
//! X = μ + Σᵢ aᵢ·ΔXᵢ + b·ΔR
//! ```
//!
//! where the `ΔXᵢ` are shared standard-normal principal components (one
//! global variable plus quad-tree spatial-grid variables — see
//! [`crate::variation`]) and `ΔR` is an independent standard-normal residual.
//! Sums are exact; max/min of two canonical forms is approximated by Clark's
//! moment matching, re-canonicalized through the *tightness probability* so
//! correlations keep propagating — the standard block-based SSTA machinery
//! the paper builds Algorithm 1 on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use terse_stats::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile_clamped};

thread_local! {
    /// Interned all-zero sensitivity vectors by length. `deterministic` is
    /// called for every constant delay contribution, so sharing one
    /// allocation per variable count removes the dominant small-vector
    /// allocation of the DTA hot path.
    static ZERO_COEFFS: RefCell<HashMap<usize, Arc<[f64]>>> = RefCell::new(HashMap::new());
}

fn zero_coeffs(var_count: usize) -> Arc<[f64]> {
    ZERO_COEFFS.with(|z| {
        z.borrow_mut()
            .entry(var_count)
            .or_insert_with(|| vec![0.0; var_count].into())
            .clone()
    })
}

/// A Gaussian in canonical first-order form.
///
/// # Example
/// ```
/// use terse_sta::CanonicalRv;
/// let a = CanonicalRv::deterministic(10.0, 3);
/// let b = CanonicalRv::with_sensitivities(12.0, vec![1.0, 0.0, 0.0], 0.5);
/// let s = a.add(&b);
/// assert!((s.mean() - 22.0).abs() < 1e-12);
/// assert!((s.variance() - (1.0 + 0.25)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalRv {
    mean: f64,
    /// Sensitivities to the shared principal components (dense, shared
    /// storage: clones are reference-count bumps, and identical vectors can
    /// be interned — see [`SensitivityInterner`]).
    coeffs: Arc<[f64]>,
    /// Independent residual sensitivity (σ of the private part).
    indep: f64,
}

impl CanonicalRv {
    /// A deterministic value (all sensitivities zero) over `var_count`
    /// shared variables. The zero vector is interned per thread, so this
    /// does not allocate after the first call for a given `var_count`.
    pub fn deterministic(mean: f64, var_count: usize) -> Self {
        CanonicalRv {
            mean,
            coeffs: zero_coeffs(var_count),
            indep: 0.0,
        }
    }

    /// Builds a canonical form from explicit sensitivities.
    ///
    /// # Panics
    ///
    /// Panics if `indep < 0`.
    pub fn with_sensitivities(mean: f64, coeffs: Vec<f64>, indep: f64) -> Self {
        assert!(indep >= 0.0, "independent sensitivity must be non-negative");
        CanonicalRv {
            mean,
            coeffs: coeffs.into(),
            indep,
        }
    }

    /// The mean μ.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The shared-variable sensitivities.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The independent residual sensitivity.
    pub fn indep(&self) -> f64 {
        self.indep
    }

    /// Number of shared variables.
    pub fn var_count(&self) -> usize {
        self.coeffs.len()
    }

    /// Variance `Σ aᵢ² + b²`.
    pub fn variance(&self) -> f64 {
        self.coeffs.iter().map(|a| a * a).sum::<f64>() + self.indep * self.indep
    }

    /// Standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Covariance with another canonical form (shared variables only;
    /// residuals are independent across forms).
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn cov(&self, other: &CanonicalRv) -> f64 {
        assert_eq!(
            self.coeffs.len(),
            other.coeffs.len(),
            "canonical forms must share the variable space"
        );
        self.coeffs
            .iter()
            .zip(other.coeffs.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Correlation coefficient with another form (0 when either is
    /// deterministic).
    pub fn corr(&self, other: &CanonicalRv) -> f64 {
        let va = self.variance();
        let vb = other.variance();
        if va <= 0.0 || vb <= 0.0 {
            return 0.0;
        }
        (self.cov(other) / (va * vb).sqrt()).clamp(-1.0, 1.0)
    }

    /// Exact sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn add(&self, other: &CanonicalRv) -> CanonicalRv {
        assert_eq!(self.coeffs.len(), other.coeffs.len());
        CanonicalRv {
            mean: self.mean + other.mean,
            coeffs: self
                .coeffs
                .iter()
                .zip(other.coeffs.iter())
                .map(|(a, b)| a + b)
                .collect(),
            indep: (self.indep * self.indep + other.indep * other.indep).sqrt(),
        }
    }

    /// In-place accumulation (the hot loop of path-delay summation).
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn add_assign(&mut self, other: &CanonicalRv) {
        assert_eq!(self.coeffs.len(), other.coeffs.len());
        self.mean += other.mean;
        // Copy-on-write: a uniquely-owned accumulator mutates in place; a
        // shared one (e.g. the interned zero vector) is cloned first.
        if let Some(coeffs) = Arc::get_mut(&mut self.coeffs) {
            for (a, b) in coeffs.iter_mut().zip(other.coeffs.iter()) {
                *a += b;
            }
        } else {
            self.coeffs = self
                .coeffs
                .iter()
                .zip(other.coeffs.iter())
                .map(|(a, b)| a + b)
                .collect();
        }
        self.indep = (self.indep * self.indep + other.indep * other.indep).sqrt();
    }

    /// Adds a deterministic offset.
    pub fn add_scalar(&self, dx: f64) -> CanonicalRv {
        CanonicalRv {
            mean: self.mean + dx,
            coeffs: self.coeffs.clone(),
            indep: self.indep,
        }
    }

    /// Negation (used for `min = −max(−a, −b)` and for slack = period −
    /// delay).
    pub fn negate(&self) -> CanonicalRv {
        CanonicalRv {
            mean: -self.mean,
            coeffs: self.coeffs.iter().map(|a| -a).collect(),
            indep: self.indep,
        }
    }

    /// The `p`-quantile `μ + z_p·σ` (clamped at the endpoints).
    pub fn percentile(&self, p: f64) -> f64 {
        let z = std_normal_quantile_clamped(p.clamp(1e-12, 1.0 - 1e-12));
        self.mean + z * self.sd()
    }

    /// `Pr(X < 0)` — the instruction error probability primitive once `X` is
    /// a dynamic timing slack.
    pub fn prob_negative(&self) -> f64 {
        let sd = self.sd();
        if sd == 0.0 {
            return if self.mean < 0.0 { 1.0 } else { 0.0 };
        }
        std_normal_cdf(-self.mean / sd)
    }

    /// `Pr(X < 0 | shared variables = draw)` — the *chip-conditional*
    /// failure probability: on one manufactured chip the shared components
    /// are fixed and only the independent residual remains Gaussian.
    ///
    /// # Panics
    ///
    /// Panics if `draw.len()` differs from the variable count.
    pub fn prob_negative_given(&self, draw: &[f64]) -> f64 {
        assert_eq!(draw.len(), self.coeffs.len());
        let m = self.mean
            + self
                .coeffs
                .iter()
                .zip(draw)
                .map(|(a, x)| a * x)
                .sum::<f64>();
        if self.indep == 0.0 {
            return if m < 0.0 { 1.0 } else { 0.0 };
        }
        std_normal_cdf(-m / self.indep)
    }

    /// Evaluates the form at a concrete draw of the shared variables plus a
    /// private standard-normal `r` (used by Monte Carlo chip sampling).
    ///
    /// # Panics
    ///
    /// Panics if `draw.len()` differs from the variable count.
    pub fn sample_at(&self, draw: &[f64], r: f64) -> f64 {
        assert_eq!(draw.len(), self.coeffs.len());
        self.mean
            + self
                .coeffs
                .iter()
                .zip(draw)
                .map(|(a, x)| a * x)
                .sum::<f64>()
            + self.indep * r
    }

    /// Clark's statistical maximum, re-canonicalized: returns the canonical
    /// approximation of `max(self, other)` and the tightness probability
    /// `T = Pr(self > other)`.
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn stat_max(&self, other: &CanonicalRv) -> (CanonicalRv, f64) {
        assert_eq!(self.coeffs.len(), other.coeffs.len());
        let va = self.variance();
        let vb = other.variance();
        let cov = self.cov(other);
        let theta2 = (va + vb - 2.0 * cov).max(0.0);
        let theta = theta2.sqrt();
        if theta < 1e-12 {
            // Effectively perfectly correlated with equal spread: the max is
            // whichever has the larger mean.
            return if self.mean >= other.mean {
                (self.clone(), 1.0)
            } else {
                (other.clone(), 0.0)
            };
        }
        let alpha = (self.mean - other.mean) / theta;
        let t = std_normal_cdf(alpha); // tightness Pr(A > B)
        let phi = std_normal_pdf(alpha);
        let mean = self.mean * t + other.mean * (1.0 - t) + theta * phi;
        // Clark's second moment.
        let second = (self.mean * self.mean + va) * t
            + (other.mean * other.mean + vb) * (1.0 - t)
            + (self.mean + other.mean) * theta * phi;
        let var = (second - mean * mean).max(0.0);
        // Re-canonicalize: aᵢ = T·aᵢ + (1−T)·bᵢ (preserves covariances with
        // third-party forms to first order), residual absorbs the remainder.
        let coeffs: Vec<f64> = self
            .coeffs
            .iter()
            .zip(other.coeffs.iter())
            .map(|(a, b)| t * a + (1.0 - t) * b)
            .collect();
        let shared_var: f64 = coeffs.iter().map(|a| a * a).sum();
        let indep = (var - shared_var).max(0.0).sqrt();
        (
            CanonicalRv {
                mean,
                coeffs: coeffs.into(),
                indep,
            },
            t,
        )
    }

    /// Clark's statistical minimum (via `min(a,b) = −max(−a,−b)`); returns
    /// the canonical approximation and the tightness `Pr(self < other)`.
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn stat_min(&self, other: &CanonicalRv) -> (CanonicalRv, f64) {
        let (neg_max, t) = self.negate().stat_max(&other.negate());
        (neg_max.negate(), t)
    }
}

impl std::fmt::Display for CanonicalRv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N({:.3}, {:.3}²)", self.mean, self.sd())
    }
}

/// Content-addressed interner for sensitivity vectors.
///
/// Many canonical forms in a DTA run share byte-identical coefficient
/// vectors — re-ranked candidate paths through the same spatial grid cells,
/// memoized stage-DTS results across cycles with repeating activity. The
/// interner maps the exact bit pattern of a vector to one shared
/// [`Arc<\[f64\]>`](std::sync::Arc) allocation, so long-lived caches (the
/// DTA memo cache keeps it alive across cycles) store each distinct vector
/// once. Keys use `f64::to_bits`, so `-0.0`/`0.0` and NaN payloads are
/// distinguished exactly and interning never changes a value.
#[derive(Debug, Default)]
pub struct SensitivityInterner {
    map: Mutex<HashMap<Vec<u64>, Arc<[f64]>>>,
    hits: AtomicU64,
}

impl SensitivityInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<Vec<u64>, Arc<[f64]>>> {
        // A poisoned lock only means another thread panicked mid-insert; the
        // map itself is always in a valid state (std HashMap is
        // panic-safe for reads after a failed insert).
        match self.map.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a canonical form equal to `rv` whose coefficient storage is
    /// shared with every other interned form holding the same vector.
    pub fn intern_rv(&self, rv: &CanonicalRv) -> CanonicalRv {
        let key: Vec<u64> = rv.coeffs.iter().map(|c| c.to_bits()).collect();
        let mut map = self.lock();
        let coeffs = if let Some(existing) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            existing.clone()
        } else {
            map.insert(key, rv.coeffs.clone());
            rv.coeffs.clone()
        };
        CanonicalRv {
            mean: rv.mean,
            coeffs,
            indep: rv.indep,
        }
    }

    /// Number of distinct vectors interned so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no vector has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Number of times `intern_rv` found an existing vector.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terse_stats::rng::Xoshiro256;

    fn mc_max(a: &CanonicalRv, b: &CanonicalRv, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let k = a.var_count();
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let draw: Vec<f64> = (0..k).map(|_| rng.next_gaussian()).collect();
            let xa = a.sample_at(&draw, rng.next_gaussian());
            let xb = b.sample_at(&draw, rng.next_gaussian());
            let m = xa.max(xb);
            sum += m;
            sum2 += m * m;
        }
        let mean = sum / n as f64;
        (mean, sum2 / n as f64 - mean * mean)
    }

    #[test]
    fn sum_is_exact() {
        let a = CanonicalRv::with_sensitivities(5.0, vec![1.0, 2.0], 1.0);
        let b = CanonicalRv::with_sensitivities(3.0, vec![0.5, -1.0], 2.0);
        let s = a.add(&b);
        assert_eq!(s.mean(), 8.0);
        assert_eq!(s.coeffs(), &[1.5, 1.0]);
        assert!((s.indep() - 5f64.sqrt()).abs() < 1e-12);
        // Var(A+B) = Var(A)+Var(B)+2Cov — check through the canonical form.
        let want = a.variance() + b.variance() + 2.0 * a.cov(&b);
        assert!((s.variance() - want).abs() < 1e-10);
    }

    #[test]
    fn covariance_and_correlation() {
        let a = CanonicalRv::with_sensitivities(0.0, vec![3.0, 0.0], 0.0);
        let b = CanonicalRv::with_sensitivities(0.0, vec![3.0, 0.0], 0.0);
        assert!((a.corr(&b) - 1.0).abs() < 1e-12);
        let c = CanonicalRv::with_sensitivities(0.0, vec![0.0, 1.0], 0.0);
        assert_eq!(a.corr(&c), 0.0);
        let det = CanonicalRv::deterministic(1.0, 2);
        assert_eq!(det.corr(&a), 0.0);
    }

    #[test]
    fn clark_max_identical_independent_gaussians() {
        // max of two iid N(0,1): mean = 1/√π, var = 1 − 1/π.
        let a = CanonicalRv::with_sensitivities(0.0, vec![], 1.0);
        let b = CanonicalRv::with_sensitivities(0.0, vec![], 1.0);
        let (m, t) = a.stat_max(&b);
        assert!((t - 0.5).abs() < 1e-12);
        let want_mean = 1.0 / std::f64::consts::PI.sqrt();
        assert!((m.mean() - want_mean).abs() < 1e-12, "mean = {}", m.mean());
        let want_var = 1.0 - 1.0 / std::f64::consts::PI;
        assert!((m.variance() - want_var).abs() < 1e-12);
    }

    #[test]
    fn clark_max_matches_monte_carlo() {
        let a = CanonicalRv::with_sensitivities(10.0, vec![2.0, 0.5], 1.0);
        let b = CanonicalRv::with_sensitivities(10.5, vec![1.0, 1.5], 0.7);
        let (m, _) = a.stat_max(&b);
        let (mc_mean, mc_var) = mc_max(&a, &b, 200_000, 7);
        assert!(
            (m.mean() - mc_mean).abs() < 0.02,
            "{} vs {mc_mean}",
            m.mean()
        );
        assert!(
            (m.variance() - mc_var).abs() < 0.1,
            "{} vs {mc_var}",
            m.variance()
        );
    }

    #[test]
    fn clark_max_dominating_operand() {
        // When A ≫ B the max is A.
        let a = CanonicalRv::with_sensitivities(100.0, vec![1.0], 0.5);
        let b = CanonicalRv::with_sensitivities(0.0, vec![0.3], 0.5);
        let (m, t) = a.stat_max(&b);
        assert!((t - 1.0).abs() < 1e-9);
        assert!((m.mean() - 100.0).abs() < 1e-6);
        assert!((m.variance() - a.variance()).abs() < 1e-6);
    }

    #[test]
    fn clark_min_is_dual() {
        let a = CanonicalRv::with_sensitivities(5.0, vec![1.0], 0.5);
        let b = CanonicalRv::with_sensitivities(5.2, vec![0.8], 0.6);
        let (mn, t_min) = a.stat_min(&b);
        let (mx, _) = a.stat_max(&b);
        // E[min] + E[max] = E[A] + E[B].
        assert!((mn.mean() + mx.mean() - (5.0 + 5.2)).abs() < 1e-10);
        // Tightness of min is Pr(A < B).
        assert!((0.0..=1.0).contains(&t_min));
        // min mean below both operand means.
        assert!(mn.mean() <= 5.0 + 1e-12);
    }

    #[test]
    fn perfectly_correlated_max_picks_larger_mean() {
        let a = CanonicalRv::with_sensitivities(4.0, vec![1.0], 0.0);
        let b = CanonicalRv::with_sensitivities(5.0, vec![1.0], 0.0);
        let (m, t) = a.stat_max(&b);
        assert_eq!(t, 0.0);
        assert_eq!(m.mean(), 5.0);
    }

    #[test]
    fn percentiles_and_prob_negative() {
        let x = CanonicalRv::with_sensitivities(2.0, vec![1.0], 0.0);
        assert!((x.percentile(0.5) - 2.0).abs() < 1e-9);
        assert!(x.percentile(0.99) > x.percentile(0.01));
        // Pr(N(2,1) < 0) = Φ(−2).
        assert!((x.prob_negative() - std_normal_cdf(-2.0)).abs() < 1e-12);
        let det = CanonicalRv::deterministic(-1.0, 0);
        assert_eq!(det.prob_negative(), 1.0);
    }

    #[test]
    fn display_shows_mean_and_sd() {
        let x = CanonicalRv::with_sensitivities(1.0, vec![1.0], 0.0);
        assert!(x.to_string().contains("N(1.000"));
    }

    #[test]
    fn deterministic_shares_zero_storage() {
        let a = CanonicalRv::deterministic(1.0, 8);
        let b = CanonicalRv::deterministic(2.0, 8);
        assert!(Arc::ptr_eq(&a.coeffs, &b.coeffs));
        // COW: accumulating into a shared vector must not corrupt the other.
        let mut acc = a.clone();
        acc.add_assign(&CanonicalRv::with_sensitivities(0.0, vec![1.0; 8], 0.0));
        assert_eq!(b.coeffs(), &[0.0; 8]);
        assert_eq!(acc.coeffs(), &[1.0; 8]);
    }

    #[test]
    fn add_assign_mutates_unique_storage_in_place() {
        let mut acc = CanonicalRv::with_sensitivities(1.0, vec![1.0, 2.0], 0.0);
        let before = Arc::as_ptr(&acc.coeffs);
        acc.add_assign(&CanonicalRv::with_sensitivities(1.0, vec![0.5, 0.5], 1.0));
        assert_eq!(
            Arc::as_ptr(&acc.coeffs),
            before,
            "unique arc should not realloc"
        );
        assert_eq!(acc.coeffs(), &[1.5, 2.5]);
        assert!((acc.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interner_dedups_identical_vectors() {
        let interner = SensitivityInterner::new();
        let a = CanonicalRv::with_sensitivities(1.0, vec![0.25, -0.5], 0.1);
        let b = CanonicalRv::with_sensitivities(9.0, vec![0.25, -0.5], 0.7);
        let c = CanonicalRv::with_sensitivities(9.0, vec![0.25, 0.5], 0.7);
        let ia = interner.intern_rv(&a);
        let ib = interner.intern_rv(&b);
        let ic = interner.intern_rv(&c);
        assert_eq!(ia, a);
        assert_eq!(ib, b);
        assert!(Arc::ptr_eq(&ia.coeffs, &ib.coeffs));
        assert!(!Arc::ptr_eq(&ia.coeffs, &ic.coeffs));
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.hits(), 1);
    }

    #[test]
    fn interner_distinguishes_zero_signs() {
        let interner = SensitivityInterner::new();
        let pos = interner.intern_rv(&CanonicalRv::with_sensitivities(0.0, vec![0.0], 0.0));
        let neg = interner.intern_rv(&CanonicalRv::with_sensitivities(0.0, vec![-0.0], 0.0));
        assert!(!Arc::ptr_eq(&pos.coeffs, &neg.coeffs));
        assert_eq!(interner.len(), 2);
    }
}
