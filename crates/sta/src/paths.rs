//! Timing paths and critical-path enumeration — the `CP(P_i)` primitive of
//! the paper's Algorithm 1.
//!
//! A path (Definition 3.1) starts at an endpoint (flip-flop/port), traverses
//! combinational gates, and ends at a gate connected to a capturing endpoint.
//! Algorithm 1 pops paths of an endpoint in decreasing criticality until it
//! finds one whose gates are all activated. Materializing all paths is
//! exponential, so [`PathEnumerator`] enumerates them *lazily* in exact
//! decreasing nominal-delay order: a best-first search over path suffixes,
//! expanded backward from the endpoint, using the longest upstream arrival
//! as an admissible bound (this is the classical K-most-critical-paths
//! construction).
//!
//! For the fast DTA mode, [`longest_activated_path`] computes the single
//! most-critical *activated* path directly by dynamic programming on the
//! activated subgraph.

use crate::analysis::Sta;
use crate::canonical::CanonicalRv;
use crate::variation::VariationModel;
use crate::{Result, StaError};
use std::collections::BinaryHeap;
use terse_netlist::{BitSet, GateId, GateKind};

/// A combinational timing path from a launching endpoint to a capturing
/// endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The launching endpoint (the "first gate" of Definition 3.1).
    pub source: GateId,
    /// The combinational gates in source→endpoint order.
    pub gates: Vec<GateId>,
    /// The capturing endpoint this path's last gate is connected to.
    pub endpoint: GateId,
}

impl Path {
    /// All gates whose activation Definition 3.3 requires: the source
    /// endpoint plus the combinational gates (the capturing endpoint is
    /// *connected to* the path, not part of it).
    pub fn required_gates(&self) -> impl Iterator<Item = GateId> + '_ {
        std::iter::once(self.source).chain(self.gates.iter().copied())
    }

    /// Whether all required gates are in the activation set `vcd` —
    /// Definition 3.3's "a path is activated iff all of its gates are".
    pub fn is_activated(&self, vcd: &BitSet) -> bool {
        self.required_gates().all(|g| vcd.contains(g.index()))
    }

    /// Nominal path delay: clock-to-Q + Σ gate delays + setup.
    pub fn delay_nominal(&self, sta: &Sta<'_>) -> f64 {
        sta.clk_to_q() + self.gates.iter().map(|&g| sta.delay(g)).sum::<f64>() + sta.setup()
    }

    /// Nominal slack under clock period `t_clk` (the paper's `SL`).
    pub fn slack_nominal(&self, sta: &Sta<'_>, t_clk: f64) -> f64 {
        t_clk - self.delay_nominal(sta)
    }

    /// Statistical path delay in canonical form: the *exact* sum of the
    /// gate-delay canonical forms (no max approximation on a single path),
    /// plus the deterministic clock-to-Q and setup.
    pub fn delay_rv(&self, model: &VariationModel, clk_to_q: f64, setup: f64) -> CanonicalRv {
        let mut acc = model.constant(clk_to_q + setup);
        for &g in &self.gates {
            acc.add_assign(model.gate_delay(g));
        }
        acc
    }

    /// Statistical slack under period `t_clk`: `t_clk − delay`.
    pub fn slack_rv(
        &self,
        model: &VariationModel,
        clk_to_q: f64,
        setup: f64,
        t_clk: f64,
    ) -> CanonicalRv {
        self.delay_rv(model, clk_to_q, setup)
            .negate()
            .add_scalar(t_clk)
    }

    /// Number of combinational gates on the path.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the path has no combinational gates (a direct FF→FF wire).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }
}

/// A heap entry: a partial path suffix reaching back to `head`, with an
/// admissible upper bound on the delay of any completion.
#[derive(Debug, Clone)]
struct Suffix {
    bound: f64,
    head: GateId,
    /// Index into the node arena for suffix reconstruction.
    node: usize,
}

impl PartialEq for Suffix {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Suffix {}
impl PartialOrd for Suffix {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Suffix {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound.total_cmp(&other.bound)
    }
}

/// Lazy enumeration of the paths ending at one endpoint in exact decreasing
/// nominal-delay order.
///
/// # Example
/// ```
/// use terse_sta::{DelayLibrary, Sta, PathEnumerator};
/// use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PipelineNetlist::build(PipelineConfig::small())?;
/// let lib = DelayLibrary::normalized_45nm();
/// let sta = Sta::new(p.netlist(), &lib);
/// let endpoint = p.netlist().endpoints(3)?[0];
/// let mut paths = PathEnumerator::new(&sta, endpoint)?;
/// let first = paths.next().expect("endpoint has paths");
/// let second = paths.next().expect("more than one path");
/// assert!(first.delay_nominal(&sta) >= second.delay_nominal(&sta));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PathEnumerator<'s, 'n> {
    sta: &'s Sta<'n>,
    endpoint: GateId,
    heap: BinaryHeap<Suffix>,
    /// Arena of (gate, parent) links for reconstructing suffixes.
    nodes: Vec<(GateId, Option<usize>)>,
    /// Optional activation restriction: expand only activated gates.
    restrict: Option<BitSet>,
}

impl<'s, 'n> PathEnumerator<'s, 'n> {
    /// Starts enumeration of paths capturing at `endpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `endpoint` is not a flip-flop.
    pub fn new(sta: &'s Sta<'n>, endpoint: GateId) -> Result<Self> {
        Self::build(sta, endpoint, None)
    }

    /// Starts enumeration restricted to the activated subgraph `vcd`
    /// (yields only activated paths, still in decreasing delay order).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `endpoint` is not a flip-flop.
    pub fn restricted(sta: &'s Sta<'n>, endpoint: GateId, vcd: &BitSet) -> Result<Self> {
        Self::build(sta, endpoint, Some(vcd.clone()))
    }

    fn build(sta: &'s Sta<'n>, endpoint: GateId, restrict: Option<BitSet>) -> Result<Self> {
        let netlist = sta.netlist();
        if netlist.kind(endpoint) != GateKind::FlipFlop {
            return Err(StaError::NotAnEndpoint {
                id: endpoint.index() as u32,
            });
        }
        let driver = netlist
            .ff_input(endpoint)
            .map_err(|_| StaError::NotAnEndpoint {
                id: endpoint.index() as u32,
            })?;
        let mut e = PathEnumerator {
            sta,
            endpoint,
            heap: BinaryHeap::new(),
            nodes: Vec::new(),
            restrict,
        };
        e.push_suffix(driver, None, sta.setup());
        Ok(e)
    }

    fn allowed(&self, g: GateId) -> bool {
        self.restrict.as_ref().is_none_or(|r| r.contains(g.index()))
    }

    /// Pushes the suffix obtained by prepending `head` (with `suffix_delay`
    /// being the delay of everything after and including previous head plus
    /// setup).
    fn push_suffix(&mut self, head: GateId, parent: Option<usize>, tail_delay: f64) {
        if !self.allowed(head) {
            return;
        }
        let node = self.nodes.len();
        self.nodes.push((head, parent));
        // Bound: best possible completion = longest arrival at head's output
        // + delay of the recorded tail (which excludes head's own delay only
        // for endpoint heads — arrival already includes gate delays).
        let bound = self.sta.arrival(head) + tail_delay;
        self.heap.push(Suffix { bound, head, node });
    }

    /// Reconstructs the gate list from a node chain (head exclusive).
    fn materialize(&self, mut node: usize) -> (GateId, Vec<GateId>) {
        let mut gates = Vec::new();
        let head = self.nodes[node].0;
        loop {
            let (g, parent) = self.nodes[node];
            gates.push(g);
            match parent {
                Some(p) => node = p,
                None => break,
            }
        }
        (head, gates)
    }

    /// Tail delay of a node chain: Σ delays of all gates in the suffix that
    /// are combinational, plus setup.
    fn tail_delay(&self, node: usize) -> f64 {
        let mut d = self.sta.setup();
        let mut cur = Some(node);
        while let Some(c) = cur {
            let (g, parent) = self.nodes[c];
            d += self.sta.delay(g);
            cur = parent;
        }
        d
    }
}

impl Iterator for PathEnumerator<'_, '_> {
    type Item = Path;

    fn next(&mut self) -> Option<Path> {
        while let Some(Suffix { head, node, .. }) = self.heap.pop() {
            let netlist = self.sta.netlist();
            if netlist.kind(head).is_endpoint() {
                // Complete path: head is the launching endpoint.
                let (source, mut gates) = self.materialize(node);
                debug_assert_eq!(source, head);
                gates.remove(0); // drop the source endpoint from the gate list
                return Some(Path {
                    source: head,
                    gates,
                    endpoint: self.endpoint,
                });
            }
            // Expand backward through each fanin.
            let tail = self.tail_delay(node);
            let fanin: Vec<GateId> = netlist.fanin(head).to_vec();
            for f in fanin {
                self.push_suffix(f, Some(node), tail);
            }
        }
        None
    }
}

/// The per-cycle activated-subgraph dynamic program, shared across all
/// endpoints: one `O(V + E)` pass computes the longest activated arrival at
/// every gate, after which each endpoint's most critical activated path is
/// a backtrack.
#[derive(Debug, Clone)]
pub struct ActivatedDp {
    act_arr: Vec<f64>,
    pred: Vec<Option<GateId>>,
}

impl ActivatedDp {
    /// Runs the DP over the activated subgraph `vcd`.
    pub fn new(sta: &Sta<'_>, vcd: &BitSet) -> Self {
        let netlist = sta.netlist();
        let n = netlist.gate_count();
        let mut act_arr = vec![f64::NEG_INFINITY; n];
        let mut pred: Vec<Option<GateId>> = vec![None; n];
        for g in netlist.gate_ids() {
            if netlist.kind(g).is_endpoint()
                && !matches!(netlist.kind(g), GateKind::Tie(_))
                && vcd.contains(g.index())
            {
                act_arr[g.index()] = sta.clk_to_q();
            }
        }
        for &g in netlist.topo_order() {
            let gi = g.index();
            if !vcd.contains(gi) {
                continue;
            }
            let mut best = f64::NEG_INFINITY;
            let mut best_f = None;
            for &f in netlist.fanin(g) {
                let a = act_arr[f.index()];
                if a > best {
                    best = a;
                    best_f = Some(f);
                }
            }
            if let Some(f) = best_f {
                if best > f64::NEG_INFINITY {
                    act_arr[gi] = best + sta.delay(g);
                    pred[gi] = Some(f);
                }
            }
        }
        ActivatedDp { act_arr, pred }
    }

    /// The most critical activated path capturing at `endpoint`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `endpoint` is not a flip-flop.
    // Invariant: the DP stores a predecessor for every gate it assigns an
    // activated arrival to, so walking back from an activated endpoint
    // always reaches a source before `pred` runs out.
    #[allow(clippy::expect_used)]
    pub fn path_to(&self, sta: &Sta<'_>, endpoint: GateId) -> Result<Option<Path>> {
        let netlist = sta.netlist();
        if netlist.kind(endpoint) != GateKind::FlipFlop {
            return Err(StaError::NotAnEndpoint {
                id: endpoint.index() as u32,
            });
        }
        let driver = netlist
            .ff_input(endpoint)
            .map_err(|_| StaError::NotAnEndpoint {
                id: endpoint.index() as u32,
            })?;
        if self.act_arr[driver.index()] == f64::NEG_INFINITY {
            return Ok(None);
        }
        let mut gates = Vec::new();
        let mut cur = driver;
        loop {
            if netlist.kind(cur).is_endpoint() {
                gates.reverse();
                return Ok(Some(Path {
                    source: cur,
                    gates,
                    endpoint,
                }));
            }
            gates.push(cur);
            cur = self.pred[cur.index()].expect("activated arrival implies a predecessor chain");
        }
    }
}

/// The most critical (longest-delay) **activated** path capturing at
/// `endpoint`, or `None` if no activated path reaches it — the inner loop of
/// Algorithm 1 in the fast (subgraph) mode.
///
/// Dynamic programming over the activated subgraph: `O(gates + edges)` per
/// call, independent of how many non-activated paths are more critical.
///
/// # Errors
///
/// Returns [`StaError::NotAnEndpoint`] if `endpoint` is not a flip-flop.
pub fn longest_activated_path(
    sta: &Sta<'_>,
    endpoint: GateId,
    vcd: &BitSet,
) -> Result<Option<Path>> {
    ActivatedDp::new(sta, vcd).path_to(sta, endpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayLibrary;
    use terse_netlist::builder::NetlistBuilder;
    use terse_netlist::netlist::EndpointClass;

    /// Diamond: src -> {short: buf, long: inv→inv} -> or -> dst
    /// (exactly two source-to-endpoint paths).
    fn diamond() -> (terse_netlist::Netlist, GateId, GateId) {
        let mut b = NetlistBuilder::new(1);
        let src = b.flip_flop("src", EndpointClass::Data, 0).unwrap();
        let short = b.gate(GateKind::Buf, &[src], 0).unwrap();
        let x1 = b.gate(GateKind::Not, &[src], 0).unwrap();
        let x2 = b.gate(GateKind::Not, &[x1], 0).unwrap();
        let or = b.gate(GateKind::Or, &[short, x2], 0).unwrap();
        let dst = b.flip_flop("dst", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(dst, or).unwrap();
        b.connect_ff_input(src, or).unwrap();
        let n = b.finish().unwrap();
        let src = n.bus("src").unwrap()[0];
        let dst = n.bus("dst").unwrap()[0];
        (n, src, dst)
    }

    #[test]
    fn paths_enumerate_in_decreasing_order() {
        let (n, _src, dst) = diamond();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let paths: Vec<Path> = PathEnumerator::new(&sta, dst).unwrap().collect();
        // Two distinct routes: via xor-chain (long) and via buf (short).
        assert_eq!(paths.len(), 2);
        let d0 = paths[0].delay_nominal(&sta);
        let d1 = paths[1].delay_nominal(&sta);
        assert!(d0 >= d1);
        // The long path goes through both xors.
        assert_eq!(paths[0].gates.len(), 3);
        assert_eq!(paths[1].gates.len(), 2);
        // Path delay matches block-based arrival for the most critical one.
        let want = sta.endpoint_arrival(dst).unwrap();
        assert!((d0 - want).abs() < 1e-9);
    }

    #[test]
    fn enumeration_brute_force_cross_check() {
        // On a random DAG, the enumerator must produce exactly the set of
        // all paths, sorted by delay.
        let mut b = NetlistBuilder::new(1);
        let src = b.flip_flop("src", EndpointClass::Data, 0).unwrap();
        let mut pool = vec![src];
        let mut state = 12345u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let a = pool[(rnd() % pool.len() as u64) as usize];
            let c = pool[(rnd() % pool.len() as u64) as usize];
            let kinds = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand];
            let g = b.gate(kinds[(rnd() % 4) as usize], &[a, c], 0).unwrap();
            pool.push(g);
        }
        let last = *pool.last().unwrap();
        let dst = b.flip_flop("dst", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(dst, last).unwrap();
        b.connect_ff_input(src, last).unwrap();
        let n = b.finish().unwrap();
        let dst = n.bus("dst").unwrap()[0];
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);

        // Brute force: DFS all paths from the driver backwards.
        fn dfs(
            n: &terse_netlist::Netlist,
            g: GateId,
            suffix: &mut Vec<GateId>,
            out: &mut Vec<Vec<GateId>>,
        ) {
            if n.kind(g).is_endpoint() {
                let mut p = suffix.clone();
                p.reverse();
                out.push(p);
                return;
            }
            suffix.push(g);
            for &f in n.fanin(g) {
                dfs(n, f, suffix, out);
            }
            suffix.pop();
        }
        let mut all = Vec::new();
        dfs(&n, n.ff_input(dst).unwrap(), &mut Vec::new(), &mut all);
        let mut brute: Vec<f64> = all
            .iter()
            .map(|gs| sta.clk_to_q() + gs.iter().map(|&g| sta.delay(g)).sum::<f64>() + sta.setup())
            .collect();
        brute.sort_by(|a, b| b.total_cmp(a));

        let enumerated: Vec<f64> = PathEnumerator::new(&sta, dst)
            .unwrap()
            .map(|p| p.delay_nominal(&sta))
            .collect();
        assert_eq!(enumerated.len(), brute.len());
        for (e, w) in enumerated.iter().zip(&brute) {
            assert!((e - w).abs() < 1e-9, "enumerated {e} want {w}");
        }
    }

    #[test]
    fn activation_restriction_skips_inactive_paths() {
        let (n, src, dst) = diamond();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        // Activate only the short route: src, buf, or.
        let all: Vec<Path> = PathEnumerator::new(&sta, dst).unwrap().collect();
        let short = &all[1];
        let mut vcd = BitSet::new(n.gate_count());
        vcd.insert(src.index());
        for g in &short.gates {
            vcd.insert(g.index());
        }
        let got: Vec<Path> = PathEnumerator::restricted(&sta, dst, &vcd)
            .unwrap()
            .collect();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0], short);
        assert!(short.is_activated(&vcd));
        assert!(!all[0].is_activated(&vcd));
    }

    #[test]
    fn longest_activated_matches_restricted_enumeration() {
        let (n, src, dst) = diamond();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        // Activate everything.
        let mut vcd = BitSet::new(n.gate_count());
        for g in n.gate_ids() {
            vcd.insert(g.index());
        }
        let fast = longest_activated_path(&sta, dst, &vcd).unwrap().unwrap();
        let slow = PathEnumerator::restricted(&sta, dst, &vcd)
            .unwrap()
            .next()
            .unwrap();
        assert!((fast.delay_nominal(&sta) - slow.delay_nominal(&sta)).abs() < 1e-9);
        // Nothing activated → no path.
        let empty = BitSet::new(n.gate_count());
        assert!(longest_activated_path(&sta, dst, &empty).unwrap().is_none());
        let _ = src;
    }

    #[test]
    fn statistical_path_slack() {
        use crate::variation::{VariationConfig, VariationModel};
        let (n, _src, dst) = diamond();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let model = VariationModel::new(&n, &lib, VariationConfig::default()).unwrap();
        let p = PathEnumerator::new(&sta, dst).unwrap().next().unwrap();
        let rv = p.delay_rv(&model, lib.clk_to_q, lib.setup);
        assert!((rv.mean() - p.delay_nominal(&sta)).abs() < 1e-9);
        assert!(rv.sd() > 0.0);
        let slack = p.slack_rv(&model, lib.clk_to_q, lib.setup, 200.0);
        assert!((slack.mean() - (200.0 - rv.mean())).abs() < 1e-9);
        assert_eq!(slack.sd(), rv.sd());
    }

    #[test]
    fn non_endpoint_rejected() {
        let (n, _src, dst) = diamond();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let driver = n.ff_input(dst).unwrap();
        assert!(PathEnumerator::new(&sta, driver).is_err());
        let vcd = BitSet::new(n.gate_count());
        assert!(longest_activated_path(&sta, driver, &vcd).is_err());
    }
}
