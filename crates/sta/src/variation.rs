//! Process-variation modeling with spatially correlated gate delays.
//!
//! The paper stresses that its instruction error model accounts for process
//! variation "including its spatial correlation property". We implement the
//! classic quad-tree grid model (Agarwal-style): gate-delay variation splits
//! into a chip-global component, spatially correlated grid components (one
//! grid per quad-tree level — gates in the same cell share that level's
//! variable, so physical neighbours correlate more strongly), and an
//! independent per-gate residual:
//!
//! ```text
//! D_g = d_g · (1 + σ_rel · Z_g)
//! Z_g = √s_G·G + √(s_S/L)·Σ_ℓ C[ℓ, cell_ℓ(g)] + √s_I·R_g
//! ```
//!
//! with variance shares `s_G + s_S + s_I = 1`. Every gate delay becomes a
//! [`CanonicalRv`]; path delays and slacks stay in canonical form throughout
//! Algorithm 1.

use crate::canonical::CanonicalRv;
use crate::{Result, StaError};
use terse_netlist::{GateId, Netlist};
use terse_stats::rng::Xoshiro256;

/// Configuration of the variation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationConfig {
    /// Relative gate-delay sigma (σ/μ); 45 nm-typical is ~5 %.
    pub sigma_rel: f64,
    /// Number of quad-tree levels (level ℓ has `4^ℓ` cells). 3 levels give
    /// 1 + 4 + 16 = 21 spatial variables.
    pub levels: usize,
    /// Variance share of the chip-global component.
    pub share_global: f64,
    /// Variance share of the spatially correlated component.
    pub share_spatial: f64,
    /// Variance share of the independent per-gate residual.
    pub share_indep: f64,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig {
            sigma_rel: 0.05,
            levels: 3,
            share_global: 0.3,
            share_spatial: 0.5,
            share_indep: 0.2,
        }
    }
}

impl VariationConfig {
    /// A configuration with variation disabled (deterministic STA) — the
    /// baseline for the spatial-correlation ablation.
    pub fn disabled() -> Self {
        VariationConfig {
            sigma_rel: 0.0,
            ..VariationConfig::default()
        }
    }

    /// A configuration with the spatial component folded into the
    /// independent one (no correlation) — the other ablation arm.
    pub fn without_spatial_correlation(self) -> Self {
        VariationConfig {
            share_indep: self.share_indep + self.share_spatial,
            share_spatial: 0.0,
            ..self
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.sigma_rel >= 0.0) {
            return Err(StaError::InvalidParameter {
                name: "sigma_rel",
                value: self.sigma_rel,
            });
        }
        let total = self.share_global + self.share_spatial + self.share_indep;
        if (total - 1.0).abs() > 1e-9 {
            return Err(StaError::InvalidParameter {
                name: "variance shares (must sum to 1)",
                value: total,
            });
        }
        if self.levels == 0 || self.levels > 6 {
            return Err(StaError::InvalidParameter {
                name: "levels",
                value: self.levels as f64,
            });
        }
        Ok(())
    }
}

/// The instantiated variation model: canonical-form delay for every gate of
/// a netlist.
///
/// # Example
/// ```
/// use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};
/// use terse_sta::delay::DelayLibrary;
/// use terse_sta::variation::{VariationConfig, VariationModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = PipelineNetlist::build(PipelineConfig::small())?;
/// let lib = DelayLibrary::normalized_45nm();
/// let model = VariationModel::new(p.netlist(), &lib, VariationConfig::default())?;
/// // Each gate delay is a Gaussian with ~5% relative sigma.
/// let g = p.netlist().topo_order()[0];
/// let d = model.gate_delay(g);
/// assert!((d.sd() / d.mean() - 0.05).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VariationModel {
    config: VariationConfig,
    var_count: usize,
    delays: Vec<CanonicalRv>,
}

impl VariationModel {
    /// Builds the model from a netlist, a delay library and a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidParameter`] for invalid configurations.
    pub fn new(
        netlist: &Netlist,
        lib: &crate::delay::DelayLibrary,
        config: VariationConfig,
    ) -> Result<Self> {
        config.validate()?;
        let var_count = Self::shared_var_count(config.levels);
        let sg = config.share_global.sqrt();
        let ss = if config.levels > 0 {
            (config.share_spatial / config.levels as f64).sqrt()
        } else {
            0.0
        };
        let si = config.share_indep.sqrt();
        let mut delays = Vec::with_capacity(netlist.gate_count());
        for g in netlist.gate_ids() {
            let nom = lib.nominal(netlist, g);
            if nom == 0.0 || config.sigma_rel == 0.0 {
                delays.push(CanonicalRv::deterministic(nom, var_count));
                continue;
            }
            let scale = nom * config.sigma_rel;
            let mut coeffs = vec![0.0; var_count];
            coeffs[0] = scale * sg;
            let pos = netlist.position(g);
            for level in 0..config.levels {
                let idx = Self::cell_index(config.levels, level, pos.x, pos.y);
                coeffs[idx] = scale * ss;
            }
            delays.push(CanonicalRv::with_sensitivities(nom, coeffs, scale * si));
        }
        Ok(VariationModel {
            config,
            var_count,
            delays,
        })
    }

    /// Total number of shared variables for a level count
    /// (1 global + Σ 4^ℓ grid cells).
    pub fn shared_var_count(levels: usize) -> usize {
        1 + (0..levels).map(|l| 4usize.pow(l as u32)).sum::<usize>()
    }

    /// Flat shared-variable index for the quad-tree cell containing `(x, y)`
    /// at `level`.
    fn cell_index(levels: usize, level: usize, x: f32, y: f32) -> usize {
        debug_assert!(level < levels);
        let side = 1usize << level; // 2^level cells per axis
        let cx = ((x.clamp(0.0, 0.999_99) * side as f32) as usize).min(side - 1);
        let cy = ((y.clamp(0.0, 0.999_99) * side as f32) as usize).min(side - 1);
        let offset = 1 + (0..level).map(|l| 4usize.pow(l as u32)).sum::<usize>();
        offset + cy * side + cx
    }

    /// The configuration.
    pub fn config(&self) -> VariationConfig {
        self.config
    }

    /// Number of shared variables in every canonical form of this model.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// The canonical delay of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the modeled netlist.
    pub fn gate_delay(&self, id: GateId) -> &CanonicalRv {
        &self.delays[id.index()]
    }

    /// A deterministic zero in this model's variable space (identity for
    /// path-delay accumulation).
    pub fn zero(&self) -> CanonicalRv {
        CanonicalRv::deterministic(0.0, self.var_count)
    }

    /// A deterministic constant in this model's variable space.
    pub fn constant(&self, value: f64) -> CanonicalRv {
        CanonicalRv::deterministic(value, self.var_count)
    }

    /// Draws one manufactured chip: a realization of all shared variables
    /// plus a seed for the per-gate residuals.
    pub fn sample_chip(&self, rng: &mut Xoshiro256) -> ChipSample {
        let draw: Vec<f64> = (0..self.var_count).map(|_| rng.next_gaussian()).collect();
        ChipSample {
            draw,
            indep_seed: rng.next_u64(),
        }
    }
}

/// A concrete manufactured-chip realization: every gate has a fixed delay.
///
/// Used by the Monte Carlo baseline (`terse-sim`) to validate the analytic
/// estimator on affordable cases.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSample {
    draw: Vec<f64>,
    indep_seed: u64,
}

impl ChipSample {
    /// The realized shared-variable vector.
    pub fn shared_draw(&self) -> &[f64] {
        &self.draw
    }

    /// The realized delay of a gate on this chip.
    ///
    /// The per-gate residual is derived deterministically from the chip seed
    /// and the gate id, so repeated queries agree.
    pub fn gate_delay(&self, model: &VariationModel, id: GateId) -> f64 {
        let r = self.residual(id);
        model.gate_delay(id).sample_at(&self.draw, r)
    }

    /// Evaluates an arbitrary canonical form on this chip, using `tag` to
    /// derive the residual draw (pass the gate/path id for reproducibility).
    pub fn eval(&self, rv: &CanonicalRv, tag: u64) -> f64 {
        let mut h = self.indep_seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let mut rng = Xoshiro256::seed_from_u64(h);
        rv.sample_at(&self.draw, rng.next_gaussian())
    }

    fn residual(&self, id: GateId) -> f64 {
        let mut h = self.indep_seed ^ (id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let mut rng = Xoshiro256::seed_from_u64(h);
        rng.next_gaussian()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayLibrary;
    use terse_netlist::builder::NetlistBuilder;
    use terse_netlist::netlist::EndpointClass;
    use terse_netlist::GateKind;

    fn two_gate_netlist(
        p1: (f32, f32),
        p2: (f32, f32),
    ) -> (terse_netlist::Netlist, GateId, GateId) {
        let mut b = NetlistBuilder::new(1);
        let x = b.input("x", 0).unwrap();
        b.set_region(p1.0, p1.1, p1.0 + 1e-4, p1.1 + 1e-4);
        let g1 = b.gate(GateKind::Not, &[x], 0).unwrap();
        b.set_region(p2.0, p2.1, p2.0 + 1e-4, p2.1 + 1e-4);
        let g2 = b.gate(GateKind::Not, &[x], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        let or = b.gate(GateKind::Or, &[g1, g2], 0).unwrap();
        b.connect_ff_input(ff, or).unwrap();
        (b.finish().unwrap(), g1, g2)
    }

    #[test]
    fn relative_sigma_matches_config() {
        let (n, g1, _) = two_gate_netlist((0.1, 0.1), (0.9, 0.9));
        let lib = DelayLibrary::normalized_45nm();
        let m = VariationModel::new(&n, &lib, VariationConfig::default()).unwrap();
        let d = m.gate_delay(g1);
        assert!(d.mean() > 0.0);
        assert!((d.sd() / d.mean() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn nearby_gates_correlate_more() {
        let lib = DelayLibrary::normalized_45nm();
        let cfg = VariationConfig::default();
        let (n_near, a1, a2) = two_gate_netlist((0.10, 0.10), (0.12, 0.12));
        let m_near = VariationModel::new(&n_near, &lib, cfg).unwrap();
        let c_near = m_near.gate_delay(a1).corr(m_near.gate_delay(a2));
        let (n_far, b1, b2) = two_gate_netlist((0.05, 0.05), (0.95, 0.95));
        let m_far = VariationModel::new(&n_far, &lib, cfg).unwrap();
        let c_far = m_far.gate_delay(b1).corr(m_far.gate_delay(b2));
        assert!(
            c_near > c_far + 0.2,
            "near corr {c_near} should exceed far corr {c_far}"
        );
        // Far gates still share the global component and the level-0 cell.
        assert!(c_far > 0.0);
    }

    #[test]
    fn no_spatial_correlation_ablation() {
        let lib = DelayLibrary::normalized_45nm();
        let cfg = VariationConfig::default().without_spatial_correlation();
        let (n, g1, g2) = two_gate_netlist((0.10, 0.10), (0.11, 0.11));
        let m = VariationModel::new(&n, &lib, cfg).unwrap();
        let c = m.gate_delay(g1).corr(m.gate_delay(g2));
        // Only the global share remains: corr = share_global = 0.3.
        assert!((c - 0.3).abs() < 1e-9, "corr = {c}");
        // Total sigma unchanged.
        let d = m.gate_delay(g1);
        assert!((d.sd() / d.mean() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn disabled_variation_is_deterministic() {
        let (n, g1, _) = two_gate_netlist((0.2, 0.2), (0.8, 0.8));
        let lib = DelayLibrary::normalized_45nm();
        let m = VariationModel::new(&n, &lib, VariationConfig::disabled()).unwrap();
        assert_eq!(m.gate_delay(g1).sd(), 0.0);
        assert!(m.gate_delay(g1).mean() > 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (n, _, _) = two_gate_netlist((0.2, 0.2), (0.8, 0.8));
        let lib = DelayLibrary::normalized_45nm();
        let bad_shares = VariationConfig {
            share_global: 0.9,
            ..VariationConfig::default()
        };
        assert!(VariationModel::new(&n, &lib, bad_shares).is_err());
        let bad_levels = VariationConfig {
            levels: 0,
            ..VariationConfig::default()
        };
        assert!(VariationModel::new(&n, &lib, bad_levels).is_err());
    }

    #[test]
    fn chip_samples_are_reproducible_and_distinct() {
        let (n, g1, _) = two_gate_netlist((0.3, 0.3), (0.6, 0.6));
        let lib = DelayLibrary::normalized_45nm();
        let m = VariationModel::new(&n, &lib, VariationConfig::default()).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let chip1 = m.sample_chip(&mut rng);
        let chip2 = m.sample_chip(&mut rng);
        let d1a = chip1.gate_delay(&m, g1);
        let d1b = chip1.gate_delay(&m, g1);
        assert_eq!(d1a, d1b, "same chip, same gate, same delay");
        assert_ne!(d1a, chip2.gate_delay(&m, g1));
    }

    #[test]
    fn chip_sample_statistics_match_model() {
        let (n, g1, _) = two_gate_netlist((0.3, 0.3), (0.6, 0.6));
        let lib = DelayLibrary::normalized_45nm();
        let m = VariationModel::new(&n, &lib, VariationConfig::default()).unwrap();
        let rv = m.gate_delay(g1);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let nchips = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..nchips {
            let chip = m.sample_chip(&mut rng);
            let d = chip.gate_delay(&m, g1);
            sum += d;
            sum2 += d * d;
        }
        let mean = sum / nchips as f64;
        let var = sum2 / nchips as f64 - mean * mean;
        assert!((mean - rv.mean()).abs() / rv.mean() < 0.01);
        assert!((var - rv.variance()).abs() / rv.variance() < 0.05);
    }

    #[test]
    fn var_count_formula() {
        assert_eq!(VariationModel::shared_var_count(1), 2);
        assert_eq!(VariationModel::shared_var_count(2), 6);
        assert_eq!(VariationModel::shared_var_count(3), 22);
    }
}
