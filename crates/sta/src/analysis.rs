//! Block-based timing analysis: arrival times, endpoint slacks, critical
//! stages — in both deterministic (STA) and statistical (SSTA) modes.

use crate::canonical::CanonicalRv;
use crate::delay::DelayLibrary;
use crate::variation::VariationModel;
use crate::{Result, StaError};
use terse_netlist::{GateId, GateKind, Netlist};

/// Deterministic static timing analysis of a netlist.
///
/// Arrival times are longest-path delays from any launching endpoint
/// (flip-flop Q / primary input, which contribute the clock-to-Q delay) to
/// each gate output; an endpoint's *data arrival* is the arrival at its D
/// driver, and its slack under period `T` is `T − arrival − t_setup`.
#[derive(Debug, Clone)]
pub struct Sta<'n> {
    netlist: &'n Netlist,
    delays: Vec<f64>,
    arrival: Vec<f64>,
    clk_to_q: f64,
    setup: f64,
}

impl<'n> Sta<'n> {
    /// Runs STA over the netlist with the given delay library.
    pub fn new(netlist: &'n Netlist, lib: &DelayLibrary) -> Self {
        let delays = lib.annotate(netlist);
        let mut arrival = vec![0.0f64; netlist.gate_count()];
        for g in netlist.gate_ids() {
            match netlist.kind(g) {
                GateKind::FlipFlop | GateKind::Input => arrival[g.index()] = lib.clk_to_q,
                GateKind::Tie(_) => arrival[g.index()] = 0.0,
                _ => {}
            }
        }
        for &g in netlist.topo_order() {
            let gi = g.index();
            let max_in = netlist
                .fanin(g)
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0f64, f64::max);
            arrival[gi] = max_in + delays[gi];
        }
        Sta {
            netlist,
            delays,
            arrival,
            clk_to_q: lib.clk_to_q,
            setup: lib.setup,
        }
    }

    /// The analyzed netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Nominal delay of a gate.
    pub fn delay(&self, g: GateId) -> f64 {
        self.delays[g.index()]
    }

    /// All annotated nominal delays (indexed by gate id).
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// Clock-to-Q delay used at path sources.
    pub fn clk_to_q(&self) -> f64 {
        self.clk_to_q
    }

    /// Setup time used at path endpoints.
    pub fn setup(&self) -> f64 {
        self.setup
    }

    /// Longest arrival time at a gate's output.
    pub fn arrival(&self, g: GateId) -> f64 {
        self.arrival[g.index()]
    }

    /// Data arrival at an endpoint (arrival at its D driver plus setup).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_arrival(&self, e: GateId) -> Result<f64> {
        let d = self
            .netlist
            .ff_input(e)
            .map_err(|_| StaError::NotAnEndpoint {
                id: e.index() as u32,
            })?;
        Ok(self.arrival[d.index()] + self.setup)
    }

    /// Slack of an endpoint under clock period `t_clk`.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_slack(&self, e: GateId, t_clk: f64) -> Result<f64> {
        Ok(t_clk - self.endpoint_arrival(e)?)
    }

    /// The worst (largest) data arrival over all endpoints of a stage —
    /// the stage's critical-path delay.
    ///
    /// # Panics
    ///
    /// Panics if the stage has no endpoints (valid pipeline netlists always
    /// have some).
    // Invariant: `Netlist::validate` guarantees in-range stages have
    // flip-flop endpoints, so both expects are unreachable post-validation.
    #[allow(clippy::expect_used)]
    pub fn stage_critical_delay(&self, stage: usize) -> f64 {
        self.netlist
            .endpoints(stage)
            .expect("stage in range")
            .iter()
            .map(|&e| self.endpoint_arrival(e).expect("endpoint"))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the stage with the largest critical-path delay.
    // Invariant: validated netlists have ≥ 1 stage, so `max_by` is `Some`.
    #[allow(clippy::expect_used)]
    pub fn critical_stage(&self) -> usize {
        (0..self.netlist.stage_count())
            .max_by(|&a, &b| {
                self.stage_critical_delay(a)
                    .total_cmp(&self.stage_critical_delay(b))
            })
            .expect("netlists have at least one stage")
    }

    /// The minimum clock period at which every endpoint meets timing — the
    /// period PrimeTime-style STA would sign off.
    pub fn min_period(&self) -> f64 {
        (0..self.netlist.stage_count())
            .map(|s| self.stage_critical_delay(s))
            .fold(0.0f64, f64::max)
    }

    /// Maximum STA-safe frequency in GHz-like units.
    pub fn max_frequency_ghz(&self) -> f64 {
        1000.0 / self.min_period()
    }
}

/// Statistical (SSTA) block-based analysis: arrivals in canonical form,
/// statistical-max at reconvergence.
#[derive(Debug, Clone)]
pub struct StatisticalSta<'n> {
    netlist: &'n Netlist,
    arrival: Vec<CanonicalRv>,
    setup: f64,
}

impl<'n> StatisticalSta<'n> {
    /// Runs SSTA using a variation model (which embeds the delay library's
    /// nominal values).
    pub fn new(netlist: &'n Netlist, lib: &DelayLibrary, model: &VariationModel) -> Self {
        let mut arrival: Vec<CanonicalRv> =
            (0..netlist.gate_count()).map(|_| model.zero()).collect();
        for g in netlist.gate_ids() {
            match netlist.kind(g) {
                GateKind::FlipFlop | GateKind::Input => {
                    arrival[g.index()] = model.constant(lib.clk_to_q);
                }
                _ => {}
            }
        }
        for &g in netlist.topo_order() {
            let gi = g.index();
            let fanin = netlist.fanin(g);
            let mut acc: Option<CanonicalRv> = None;
            for f in fanin {
                let a = &arrival[f.index()];
                acc = Some(match acc {
                    None => a.clone(),
                    Some(cur) => cur.stat_max(a).0,
                });
            }
            let mut a = acc.unwrap_or_else(|| model.zero());
            a.add_assign(model.gate_delay(g));
            arrival[gi] = a;
        }
        StatisticalSta {
            netlist,
            arrival,
            setup: lib.setup,
        }
    }

    /// Statistical arrival at a gate output.
    pub fn arrival(&self, g: GateId) -> &CanonicalRv {
        &self.arrival[g.index()]
    }

    /// Statistical data arrival (incl. setup) at an endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_arrival(&self, e: GateId) -> Result<CanonicalRv> {
        let d = self
            .netlist
            .ff_input(e)
            .map_err(|_| StaError::NotAnEndpoint {
                id: e.index() as u32,
            })?;
        Ok(self.arrival[d.index()].add_scalar(self.setup))
    }

    /// Statistical slack of an endpoint under period `t_clk`.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_slack(&self, e: GateId, t_clk: f64) -> Result<CanonicalRv> {
        Ok(self.endpoint_arrival(e)?.negate().add_scalar(t_clk))
    }

    /// The statistical critical-path delay of a stage (statistical max over
    /// its endpoints' arrivals).
    ///
    /// # Panics
    ///
    /// Panics if the stage has no endpoints.
    // Invariant: `Netlist::validate` guarantees in-range stages have
    // flip-flop endpoints, so the accumulator is always populated.
    #[allow(clippy::expect_used)]
    pub fn stage_critical_delay(&self, stage: usize) -> CanonicalRv {
        let mut acc: Option<CanonicalRv> = None;
        for &e in self.netlist.endpoints(stage).expect("stage in range") {
            let a = self.endpoint_arrival(e).expect("endpoint");
            acc = Some(match acc {
                None => a,
                Some(cur) => cur.stat_max(&a).0,
            });
        }
        acc.expect("stage has endpoints")
    }

    /// The period at which the whole design meets timing with probability
    /// `yield_target` — the SSTA sign-off period (the paper signs off at
    /// the 0.99-ish percentile with guardbands).
    // Invariant: validated netlists have ≥ 1 stage, so the accumulator is
    // always populated.
    #[allow(clippy::expect_used)]
    pub fn period_at_yield(&self, yield_target: f64) -> f64 {
        let mut acc: Option<CanonicalRv> = None;
        for s in 0..self.netlist.stage_count() {
            let d = self.stage_critical_delay(s);
            acc = Some(match acc {
                None => d,
                Some(cur) => cur.stat_max(&d).0,
            });
        }
        acc.expect("stages exist").percentile(yield_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::VariationConfig;
    use terse_netlist::builder::NetlistBuilder;
    use terse_netlist::netlist::EndpointClass;
    use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};

    /// src_ff -> inv -> and(inv, src_ff) -> dst_ff  (2 levels of logic)
    fn chain() -> terse_netlist::Netlist {
        let mut b = NetlistBuilder::new(1);
        let src = b.flip_flop("src", EndpointClass::Data, 0).unwrap();
        let inv = b.gate(GateKind::Not, &[src], 0).unwrap();
        let and = b.gate(GateKind::And, &[inv, src], 0).unwrap();
        let dst = b.flip_flop("dst", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(dst, and).unwrap();
        b.connect_ff_input(src, and).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn arrival_times_hand_computed() {
        let n = chain();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let inv = n.bus("src").map(|_| ()).ok().and(None::<GateId>);
        let _ = inv;
        let src = n.bus("src").unwrap()[0];
        let dst = n.bus("dst").unwrap()[0];
        // src drives inv and and (fanout 2 -> inv has load 0 extra? src's
        // fanout is 2 but FF delay is 0; inv fanout 1).
        // arrival(inv) = clk_to_q + 8; arrival(and) = max(arr(inv), clk2q) + and_delay.
        let and = n.ff_input(dst).unwrap();
        let and_delay = sta.delay(and);
        // `and` drives two FFs → fanout 2 → 14 + 1.5.
        assert!((and_delay - 15.5).abs() < 1e-12);
        let want_arr_and = (45.0 + 8.0) + 15.5;
        assert!((sta.arrival(and) - want_arr_and).abs() < 1e-12);
        let want_ep = want_arr_and + 25.0;
        assert!((sta.endpoint_arrival(dst).unwrap() - want_ep).abs() < 1e-12);
        assert!((sta.endpoint_arrival(src).unwrap() - want_ep).abs() < 1e-12);
        // Slack at T = 100: 100 − 93.5 = 6.5.
        assert!((sta.endpoint_slack(dst, 100.0).unwrap() - (100.0 - want_ep)).abs() < 1e-12);
        assert!((sta.min_period() - want_ep).abs() < 1e-12);
    }

    #[test]
    fn non_endpoint_rejected() {
        let n = chain();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let dst = n.bus("dst").unwrap()[0];
        let and = n.ff_input(dst).unwrap();
        assert!(sta.endpoint_arrival(and).is_err());
    }

    #[test]
    fn pipeline_critical_stage_is_ex_or_id() {
        // At the full 32-bit width the EX adder dominates; in the narrow
        // test pipeline the ID qualifier chains (whose depth scales slower
        // than the datapath) can take over. Either way the critical stage
        // is one of the two deep ones.
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        assert!(matches!(sta.critical_stage(), 1 | 3));
        assert!(sta.min_period() > 0.0);
        assert!(sta.max_frequency_ghz() > 0.0);
        // The default-width pipeline is EX-critical.
        let full = PipelineNetlist::build(PipelineConfig::default()).unwrap();
        let sta_full = Sta::new(full.netlist(), &lib);
        assert_eq!(sta_full.critical_stage(), 3);
    }

    #[test]
    fn ssta_mean_tracks_sta_and_adds_spread() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        let model = VariationModel::new(p.netlist(), &lib, VariationConfig::default()).unwrap();
        let ssta = StatisticalSta::new(p.netlist(), &lib, &model);
        let det = sta.stage_critical_delay(3);
        let stat = ssta.stage_critical_delay(3);
        // Statistical mean ≥ deterministic (max of RVs exceeds max of means)
        // but within a few sigma.
        assert!(stat.mean() >= det - 1e-9, "{} vs {det}", stat.mean());
        assert!(stat.mean() < det * 1.10);
        assert!(stat.sd() > 0.0);
        // Sign-off at 99% exceeds the mean.
        let p99 = ssta.period_at_yield(0.99);
        assert!(p99 > stat.mean());
    }

    #[test]
    fn ssta_with_disabled_variation_equals_sta() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        let model = VariationModel::new(p.netlist(), &lib, VariationConfig::disabled()).unwrap();
        let ssta = StatisticalSta::new(p.netlist(), &lib, &model);
        for s in 0..6 {
            let det = sta.stage_critical_delay(s);
            let stat = ssta.stage_critical_delay(s);
            assert!(
                (stat.mean() - det).abs() < 1e-9,
                "stage {s}: {} vs {det}",
                stat.mean()
            );
            assert_eq!(stat.sd(), 0.0);
        }
    }

    #[test]
    fn slack_decreases_with_frequency() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        let e = p.netlist().endpoints(3).unwrap()[0];
        let s1 = sta.endpoint_slack(e, 800.0).unwrap();
        let s2 = sta.endpoint_slack(e, 700.0).unwrap();
        assert!(s2 < s1);
        assert!((s1 - s2 - 100.0).abs() < 1e-12);
    }
}
