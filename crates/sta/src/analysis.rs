//! Block-based timing analysis: arrival times, endpoint slacks, critical
//! stages — in both deterministic (STA) and statistical (SSTA) modes.

use crate::canonical::CanonicalRv;
use crate::delay::DelayLibrary;
use crate::variation::VariationModel;
use crate::{Result, StaError};
use terse_netlist::{GateId, GateKind, Netlist, Tri};

/// Deterministic static timing analysis of a netlist.
///
/// Arrival times are longest-path delays from any launching endpoint
/// (flip-flop Q / primary input, which contribute the clock-to-Q delay) to
/// each gate output; an endpoint's *data arrival* is the arrival at its D
/// driver, and its slack under period `T` is `T − arrival − t_setup`.
#[derive(Debug, Clone)]
pub struct Sta<'n> {
    netlist: &'n Netlist,
    delays: Vec<f64>,
    arrival: Vec<f64>,
    clk_to_q: f64,
    setup: f64,
}

impl<'n> Sta<'n> {
    /// Runs STA over the netlist with the given delay library.
    pub fn new(netlist: &'n Netlist, lib: &DelayLibrary) -> Self {
        let delays = lib.annotate(netlist);
        let mut arrival = vec![0.0f64; netlist.gate_count()];
        for g in netlist.gate_ids() {
            match netlist.kind(g) {
                GateKind::FlipFlop | GateKind::Input => arrival[g.index()] = lib.clk_to_q,
                GateKind::Tie(_) => arrival[g.index()] = 0.0,
                _ => {}
            }
        }
        for &g in netlist.topo_order() {
            let gi = g.index();
            let max_in = netlist
                .fanin(g)
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0f64, f64::max);
            arrival[gi] = max_in + delays[gi];
        }
        Sta {
            netlist,
            delays,
            arrival,
            clk_to_q: lib.clk_to_q,
            setup: lib.setup,
        }
    }

    /// The analyzed netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Nominal delay of a gate.
    pub fn delay(&self, g: GateId) -> f64 {
        self.delays[g.index()]
    }

    /// All annotated nominal delays (indexed by gate id).
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// Clock-to-Q delay used at path sources.
    pub fn clk_to_q(&self) -> f64 {
        self.clk_to_q
    }

    /// Setup time used at path endpoints.
    pub fn setup(&self) -> f64 {
        self.setup
    }

    /// Longest arrival time at a gate's output.
    pub fn arrival(&self, g: GateId) -> f64 {
        self.arrival[g.index()]
    }

    /// Data arrival at an endpoint (arrival at its D driver plus setup).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_arrival(&self, e: GateId) -> Result<f64> {
        let d = self
            .netlist
            .ff_input(e)
            .map_err(|_| StaError::NotAnEndpoint {
                id: e.index() as u32,
            })?;
        Ok(self.arrival[d.index()] + self.setup)
    }

    /// Slack of an endpoint under clock period `t_clk`.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_slack(&self, e: GateId, t_clk: f64) -> Result<f64> {
        Ok(t_clk - self.endpoint_arrival(e)?)
    }

    /// Longest-path arrivals restricted to gates that can actually
    /// toggle.
    ///
    /// `vals[g]` is a sound three-valued abstraction of the values gate
    /// `g` can carry on every cycle under consideration (see
    /// `terse_netlist::consts::stable_values`). A gate whose value is a
    /// known constant neither launches nor propagates a transition, so
    /// every path through it is timing-dead; a `Mux` whose select is a
    /// known constant propagates transitions only from the selected
    /// branch (and the select itself), even though its output varies.
    /// The returned per-gate arrival is `f64::NEG_INFINITY` for wires
    /// that can never carry a transition: constant gates, `Tie`
    /// constants, and combinational gates whose entire live fanin is
    /// dead. An endpoint whose D driver reports `NEG_INFINITY` is
    /// immune at *any* clock period; finite values upper-bound the
    /// nominal delay of every *activatable* path, which is the bound
    /// the DTA pre-screen certificates scale.
    pub fn masked_arrival(&self, vals: &[Tri]) -> Vec<f64> {
        let nl = self.netlist;
        let quiet =
            |gi: usize| -> bool { vals.get(gi).copied().unwrap_or(Tri::Unknown).is_known() };
        let mut arr = vec![f64::NEG_INFINITY; nl.gate_count()];
        for g in nl.gate_ids() {
            let gi = g.index();
            if quiet(gi) {
                continue;
            }
            match nl.kind(g) {
                GateKind::FlipFlop | GateKind::Input => arr[gi] = self.clk_to_q,
                // A tie never transitions regardless of masking.
                GateKind::Tie(_) => {}
                _ => {}
            }
        }
        for &g in nl.topo_order() {
            let gi = g.index();
            if quiet(gi)
                || matches!(
                    nl.kind(g),
                    GateKind::FlipFlop | GateKind::Input | GateKind::Tie(_)
                )
            {
                continue;
            }
            let fanin = nl.fanin(g);
            // fanin of a Mux = [sel, a, b], output = sel ? b : a. With
            // a constant select only the chosen branch can drive an
            // output transition; the constant select's own arrival is
            // already NEG_INFINITY.
            let max_in = match nl.kind(g) {
                GateKind::Mux => {
                    let chosen = match vals.get(fanin[0].index()).copied() {
                        Some(Tri::Zero) => arr[fanin[1].index()],
                        Some(Tri::One) => arr[fanin[2].index()],
                        _ => f64::max(arr[fanin[1].index()], arr[fanin[2].index()]),
                    };
                    f64::max(arr[fanin[0].index()], chosen)
                }
                _ => fanin
                    .iter()
                    .map(|f| arr[f.index()])
                    .fold(f64::NEG_INFINITY, f64::max),
            };
            // No live fanin -> the gate output cannot toggle either.
            arr[gi] = if max_in == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                max_in + self.delays[gi]
            };
        }
        arr
    }

    /// Data arrival at an endpoint under a quiet-gate mask: the masked
    /// arrival at its D driver plus setup, or `NEG_INFINITY` when no
    /// transition can ever reach the endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn masked_endpoint_arrival(&self, e: GateId, masked: &[f64]) -> Result<f64> {
        let d = self
            .netlist
            .ff_input(e)
            .map_err(|_| StaError::NotAnEndpoint {
                id: e.index() as u32,
            })?;
        let a = masked[d.index()];
        if a == f64::NEG_INFINITY {
            Ok(f64::NEG_INFINITY)
        } else {
            Ok(a + self.setup)
        }
    }

    /// The worst (largest) data arrival over all endpoints of a stage —
    /// the stage's critical-path delay.
    ///
    /// # Panics
    ///
    /// Panics if the stage has no endpoints (valid pipeline netlists always
    /// have some).
    // Invariant: `Netlist::validate` guarantees in-range stages have
    // flip-flop endpoints, so both expects are unreachable post-validation.
    #[allow(clippy::expect_used)]
    pub fn stage_critical_delay(&self, stage: usize) -> f64 {
        self.netlist
            .endpoints(stage)
            .expect("stage in range")
            .iter()
            .map(|&e| self.endpoint_arrival(e).expect("endpoint"))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index of the stage with the largest critical-path delay.
    // Invariant: validated netlists have ≥ 1 stage, so `max_by` is `Some`.
    #[allow(clippy::expect_used)]
    pub fn critical_stage(&self) -> usize {
        (0..self.netlist.stage_count())
            .max_by(|&a, &b| {
                self.stage_critical_delay(a)
                    .total_cmp(&self.stage_critical_delay(b))
            })
            .expect("netlists have at least one stage")
    }

    /// The minimum clock period at which every endpoint meets timing — the
    /// period PrimeTime-style STA would sign off.
    pub fn min_period(&self) -> f64 {
        (0..self.netlist.stage_count())
            .map(|s| self.stage_critical_delay(s))
            .fold(0.0f64, f64::max)
    }

    /// Maximum STA-safe frequency in GHz-like units.
    pub fn max_frequency_ghz(&self) -> f64 {
        1000.0 / self.min_period()
    }
}

/// Statistical (SSTA) block-based analysis: arrivals in canonical form,
/// statistical-max at reconvergence.
#[derive(Debug, Clone)]
pub struct StatisticalSta<'n> {
    netlist: &'n Netlist,
    arrival: Vec<CanonicalRv>,
    setup: f64,
}

impl<'n> StatisticalSta<'n> {
    /// Runs SSTA using a variation model (which embeds the delay library's
    /// nominal values).
    pub fn new(netlist: &'n Netlist, lib: &DelayLibrary, model: &VariationModel) -> Self {
        let mut arrival: Vec<CanonicalRv> =
            (0..netlist.gate_count()).map(|_| model.zero()).collect();
        for g in netlist.gate_ids() {
            match netlist.kind(g) {
                GateKind::FlipFlop | GateKind::Input => {
                    arrival[g.index()] = model.constant(lib.clk_to_q);
                }
                _ => {}
            }
        }
        for &g in netlist.topo_order() {
            let gi = g.index();
            let fanin = netlist.fanin(g);
            let mut acc: Option<CanonicalRv> = None;
            for f in fanin {
                let a = &arrival[f.index()];
                acc = Some(match acc {
                    None => a.clone(),
                    Some(cur) => cur.stat_max(a).0,
                });
            }
            let mut a = acc.unwrap_or_else(|| model.zero());
            a.add_assign(model.gate_delay(g));
            arrival[gi] = a;
        }
        StatisticalSta {
            netlist,
            arrival,
            setup: lib.setup,
        }
    }

    /// Statistical arrival at a gate output.
    pub fn arrival(&self, g: GateId) -> &CanonicalRv {
        &self.arrival[g.index()]
    }

    /// Statistical data arrival (incl. setup) at an endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_arrival(&self, e: GateId) -> Result<CanonicalRv> {
        let d = self
            .netlist
            .ff_input(e)
            .map_err(|_| StaError::NotAnEndpoint {
                id: e.index() as u32,
            })?;
        Ok(self.arrival[d.index()].add_scalar(self.setup))
    }

    /// Statistical slack of an endpoint under period `t_clk`.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NotAnEndpoint`] if `e` is not a flip-flop.
    pub fn endpoint_slack(&self, e: GateId, t_clk: f64) -> Result<CanonicalRv> {
        Ok(self.endpoint_arrival(e)?.negate().add_scalar(t_clk))
    }

    /// The statistical critical-path delay of a stage (statistical max over
    /// its endpoints' arrivals).
    ///
    /// # Panics
    ///
    /// Panics if the stage has no endpoints.
    // Invariant: `Netlist::validate` guarantees in-range stages have
    // flip-flop endpoints, so the accumulator is always populated.
    #[allow(clippy::expect_used)]
    pub fn stage_critical_delay(&self, stage: usize) -> CanonicalRv {
        let mut acc: Option<CanonicalRv> = None;
        for &e in self.netlist.endpoints(stage).expect("stage in range") {
            let a = self.endpoint_arrival(e).expect("endpoint");
            acc = Some(match acc {
                None => a,
                Some(cur) => cur.stat_max(&a).0,
            });
        }
        acc.expect("stage has endpoints")
    }

    /// The period at which the whole design meets timing with probability
    /// `yield_target` — the SSTA sign-off period (the paper signs off at
    /// the 0.99-ish percentile with guardbands).
    // Invariant: validated netlists have ≥ 1 stage, so the accumulator is
    // always populated.
    #[allow(clippy::expect_used)]
    pub fn period_at_yield(&self, yield_target: f64) -> f64 {
        let mut acc: Option<CanonicalRv> = None;
        for s in 0..self.netlist.stage_count() {
            let d = self.stage_critical_delay(s);
            acc = Some(match acc {
                None => d,
                Some(cur) => cur.stat_max(&d).0,
            });
        }
        acc.expect("stages exist").percentile(yield_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::VariationConfig;
    use terse_netlist::builder::NetlistBuilder;
    use terse_netlist::netlist::EndpointClass;
    use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};

    /// src_ff -> inv -> and(inv, src_ff) -> dst_ff  (2 levels of logic)
    fn chain() -> terse_netlist::Netlist {
        let mut b = NetlistBuilder::new(1);
        let src = b.flip_flop("src", EndpointClass::Data, 0).unwrap();
        let inv = b.gate(GateKind::Not, &[src], 0).unwrap();
        let and = b.gate(GateKind::And, &[inv, src], 0).unwrap();
        let dst = b.flip_flop("dst", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(dst, and).unwrap();
        b.connect_ff_input(src, and).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn arrival_times_hand_computed() {
        let n = chain();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let inv = n.bus("src").map(|_| ()).ok().and(None::<GateId>);
        let _ = inv;
        let src = n.bus("src").unwrap()[0];
        let dst = n.bus("dst").unwrap()[0];
        // src drives inv and and (fanout 2 -> inv has load 0 extra? src's
        // fanout is 2 but FF delay is 0; inv fanout 1).
        // arrival(inv) = clk_to_q + 8; arrival(and) = max(arr(inv), clk2q) + and_delay.
        let and = n.ff_input(dst).unwrap();
        let and_delay = sta.delay(and);
        // `and` drives two FFs → fanout 2 → 14 + 1.5.
        assert!((and_delay - 15.5).abs() < 1e-12);
        let want_arr_and = (45.0 + 8.0) + 15.5;
        assert!((sta.arrival(and) - want_arr_and).abs() < 1e-12);
        let want_ep = want_arr_and + 25.0;
        assert!((sta.endpoint_arrival(dst).unwrap() - want_ep).abs() < 1e-12);
        assert!((sta.endpoint_arrival(src).unwrap() - want_ep).abs() < 1e-12);
        // Slack at T = 100: 100 − 93.5 = 6.5.
        assert!((sta.endpoint_slack(dst, 100.0).unwrap() - (100.0 - want_ep)).abs() < 1e-12);
        assert!((sta.min_period() - want_ep).abs() < 1e-12);
    }

    #[test]
    fn non_endpoint_rejected() {
        let n = chain();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let dst = n.bus("dst").unwrap()[0];
        let and = n.ff_input(dst).unwrap();
        assert!(sta.endpoint_arrival(and).is_err());
    }

    #[test]
    fn masked_arrival_all_unknown_matches_plain_sta() {
        let n = chain();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let vals = vec![Tri::Unknown; n.gate_count()];
        let masked = sta.masked_arrival(&vals);
        let dst = n.bus("dst").unwrap()[0];
        let got = sta.masked_endpoint_arrival(dst, &masked).unwrap();
        assert!((got - sta.endpoint_arrival(dst).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn masked_arrival_drops_constant_cones_and_dead_mux_branches() {
        // sel, a: primary inputs; deep = Not(Not(Not(a))); ff captures
        // mux(sel, a, deep) = sel ? deep : a.
        let mut b = NetlistBuilder::new(1);
        let sel = b.input("sel", 0).unwrap();
        let a = b.input("a", 0).unwrap();
        let mut deep = a;
        for _ in 0..3 {
            deep = b.gate(GateKind::Not, &[deep], 0).unwrap();
        }
        let m = b.gate(GateKind::Mux, &[sel, a, deep], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, m).unwrap();
        let n = b.finish().unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);

        // Unknown select: the deep branch dominates the masked arrival.
        let free = sta.masked_arrival(&vec![Tri::Unknown; n.gate_count()]);
        let ep_free = sta.masked_endpoint_arrival(ff, &free).unwrap();
        assert!((ep_free - sta.endpoint_arrival(ff).unwrap()).abs() < 1e-12);

        // Constant-zero select: only the shallow branch can propagate a
        // transition, even though the mux output still varies with `a`.
        let mut c = vec![None; n.gate_count()];
        c[sel.index()] = Some(Tri::Zero);
        let vals = terse_netlist::stable_values(&n, &c);
        assert_eq!(vals[m.index()], Tri::Unknown, "output still varies");
        let masked = sta.masked_arrival(&vals);
        let ep_masked = sta.masked_endpoint_arrival(ff, &masked).unwrap();
        assert!(
            ep_masked < ep_free,
            "dead branch must be pruned: {ep_masked} vs {ep_free}"
        );

        // Constant input upstream of everything: nothing toggles, so no
        // transition ever reaches the endpoint.
        let mut c2 = vec![None; n.gate_count()];
        c2[sel.index()] = Some(Tri::Zero);
        c2[a.index()] = Some(Tri::Zero);
        let vals2 = terse_netlist::stable_values(&n, &c2);
        let masked2 = sta.masked_arrival(&vals2);
        assert_eq!(
            sta.masked_endpoint_arrival(ff, &masked2).unwrap(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn pipeline_critical_stage_is_ex_or_id() {
        // At the full 32-bit width the EX adder dominates; in the narrow
        // test pipeline the ID qualifier chains (whose depth scales slower
        // than the datapath) can take over. Either way the critical stage
        // is one of the two deep ones.
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        assert!(matches!(sta.critical_stage(), 1 | 3));
        assert!(sta.min_period() > 0.0);
        assert!(sta.max_frequency_ghz() > 0.0);
        // The default-width pipeline is EX-critical.
        let full = PipelineNetlist::build(PipelineConfig::default()).unwrap();
        let sta_full = Sta::new(full.netlist(), &lib);
        assert_eq!(sta_full.critical_stage(), 3);
    }

    #[test]
    fn ssta_mean_tracks_sta_and_adds_spread() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        let model = VariationModel::new(p.netlist(), &lib, VariationConfig::default()).unwrap();
        let ssta = StatisticalSta::new(p.netlist(), &lib, &model);
        let det = sta.stage_critical_delay(3);
        let stat = ssta.stage_critical_delay(3);
        // Statistical mean ≥ deterministic (max of RVs exceeds max of means)
        // but within a few sigma.
        assert!(stat.mean() >= det - 1e-9, "{} vs {det}", stat.mean());
        assert!(stat.mean() < det * 1.10);
        assert!(stat.sd() > 0.0);
        // Sign-off at 99% exceeds the mean.
        let p99 = ssta.period_at_yield(0.99);
        assert!(p99 > stat.mean());
    }

    #[test]
    fn ssta_with_disabled_variation_equals_sta() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        let model = VariationModel::new(p.netlist(), &lib, VariationConfig::disabled()).unwrap();
        let ssta = StatisticalSta::new(p.netlist(), &lib, &model);
        for s in 0..6 {
            let det = sta.stage_critical_delay(s);
            let stat = ssta.stage_critical_delay(s);
            assert!(
                (stat.mean() - det).abs() < 1e-9,
                "stage {s}: {} vs {det}",
                stat.mean()
            );
            assert_eq!(stat.sd(), 0.0);
        }
    }

    #[test]
    fn slack_decreases_with_frequency() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(p.netlist(), &lib);
        let e = p.netlist().endpoints(3).unwrap()[0];
        let s1 = sta.endpoint_slack(e, 800.0).unwrap();
        let s2 = sta.endpoint_slack(e, 700.0).unwrap();
        assert!(s2 < s1);
        assert!((s1 - s2 - 100.0).abs() < 1e-12);
    }
}
