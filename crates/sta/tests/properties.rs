//! Property-based tests for the timing-analysis invariants.

use proptest::prelude::*;
use terse_netlist::builder::NetlistBuilder;
use terse_netlist::netlist::EndpointClass;
use terse_netlist::{GateKind, Netlist};
use terse_sta::analysis::Sta;
use terse_sta::delay::DelayLibrary;
use terse_sta::paths::PathEnumerator;
use terse_sta::statmin::{statistical_min, MinOrdering};
use terse_sta::variation::{VariationConfig, VariationModel};
use terse_sta::CanonicalRv;

/// A random layered DAG between one source FF and one sink FF.
fn random_dag(seed: u64, gates: usize) -> Netlist {
    let mut b = NetlistBuilder::new(1);
    let src = b.flip_flop("src", EndpointClass::Data, 0).unwrap();
    let mut pool = vec![src];
    let mut state = seed | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const KINDS: [GateKind; 5] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
    ];
    for _ in 0..gates {
        let a = pool[(rnd() % pool.len() as u64) as usize];
        let c = pool[(rnd() % pool.len() as u64) as usize];
        let g = b.gate(KINDS[(rnd() % 5) as usize], &[a, c], 0).unwrap();
        pool.push(g);
    }
    let last = *pool.last().unwrap();
    let dst = b.flip_flop("dst", EndpointClass::Data, 0).unwrap();
    b.connect_ff_input(dst, last).unwrap();
    b.connect_ff_input(src, last).unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn block_arrival_equals_most_critical_path(seed in 1u64..5000, gates in 3usize..25) {
        // Block-based STA's endpoint arrival must equal the delay of the
        // most critical enumerated path — two independent computations.
        let n = random_dag(seed, gates);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let dst = n.bus("dst").unwrap()[0];
        let first = PathEnumerator::new(&sta, dst).unwrap().next().unwrap();
        let block = sta.endpoint_arrival(dst).unwrap();
        prop_assert!((first.delay_nominal(&sta) - block).abs() < 1e-9);
    }

    #[test]
    fn enumeration_is_sorted(seed in 1u64..5000, gates in 3usize..18) {
        let n = random_dag(seed, gates);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let dst = n.bus("dst").unwrap()[0];
        let delays: Vec<f64> = PathEnumerator::new(&sta, dst)
            .unwrap()
            .take(200)
            .map(|p| p.delay_nominal(&sta))
            .collect();
        for w in delays.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "{} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn slack_is_anti_monotone_in_frequency(seed in 1u64..1000, t1 in 200.0f64..1000.0, dt in 1.0f64..500.0) {
        let n = random_dag(seed, 10);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let dst = n.bus("dst").unwrap()[0];
        let s1 = sta.endpoint_slack(dst, t1).unwrap();
        let s2 = sta.endpoint_slack(dst, t1 + dt).unwrap();
        prop_assert!((s2 - s1 - dt).abs() < 1e-9);
    }

    #[test]
    fn path_delay_rv_mean_matches_nominal(seed in 1u64..2000, gates in 3usize..15) {
        let n = random_dag(seed, gates);
        let lib = DelayLibrary::normalized_45nm();
        let sta = Sta::new(&n, &lib);
        let model = VariationModel::new(&n, &lib, VariationConfig::default()).unwrap();
        let dst = n.bus("dst").unwrap()[0];
        for p in PathEnumerator::new(&sta, dst).unwrap().take(10) {
            let rv = p.delay_rv(&model, lib.clk_to_q, lib.setup);
            prop_assert!((rv.mean() - p.delay_nominal(&sta)).abs() < 1e-9);
            prop_assert!(rv.sd() >= 0.0);
        }
    }

    #[test]
    fn statistical_min_bounded_by_operands(
        means in prop::collection::vec(50.0f64..150.0, 2..12),
        seed in 0u64..1000,
    ) {
        let mut rng = terse_stats::rng::Xoshiro256::seed_from_u64(seed);
        let slacks: Vec<CanonicalRv> = means
            .iter()
            .map(|&m| {
                let coeffs = vec![rng.next_range(-1.0, 1.0), rng.next_range(-1.0, 1.0)];
                CanonicalRv::with_sensitivities(m, coeffs, rng.next_range(0.01, 2.0))
            })
            .collect();
        let min_mean = means.iter().copied().fold(f64::INFINITY, f64::min);
        for ordering in [
            MinOrdering::InputOrder,
            MinOrdering::AscendingMean,
            MinOrdering::MaxCorrelationFirst,
        ] {
            let m = statistical_min(&slacks, ordering).unwrap();
            // E[min] ≤ min of means, and the result keeps a valid variance.
            prop_assert!(m.mean() <= min_mean + 1e-9, "{ordering:?}");
            prop_assert!(m.variance() >= 0.0);
        }
    }

    #[test]
    fn clark_max_bounds(m1 in -50.0f64..50.0, m2 in -50.0f64..50.0, s1 in 0.1f64..5.0, s2 in 0.1f64..5.0) {
        let a = CanonicalRv::with_sensitivities(m1, vec![s1], 0.0);
        let b = CanonicalRv::with_sensitivities(m2, vec![0.0], s2);
        let (mx, t) = a.stat_max(&b);
        // E[max] ≥ max of means; tightness is a probability.
        prop_assert!(mx.mean() >= m1.max(m2) - 1e-9);
        prop_assert!((0.0..=1.0).contains(&t));
        // min/max duality: E[min] + E[max] = E[A] + E[B].
        let (mn, _) = a.stat_min(&b);
        prop_assert!((mn.mean() + mx.mean() - (m1 + m2)).abs() < 1e-9);
    }
}
