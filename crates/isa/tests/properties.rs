//! Property-based tests for the ISA: encode/decode round trips, assembler
//! stability, and CFG partition invariants.

use proptest::prelude::*;
use terse_isa::{assemble, disassemble, Cfg, Instruction, Opcode};

fn arb_rtype() -> impl Strategy<Value = Instruction> {
    (
        prop::sample::select(vec![
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Sll,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Mul,
            Opcode::Slt,
            Opcode::Sltu,
        ]),
        0u8..32,
        0u8..32,
        0u8..32,
    )
        .prop_map(|(op, rd, rs1, rs2)| Instruction::rtype(op, rd, rs1, rs2))
}

fn arb_itype() -> impl Strategy<Value = Instruction> {
    (
        prop::sample::select(vec![
            Opcode::Addi,
            Opcode::Slli,
            Opcode::Srli,
            Opcode::Srai,
            Opcode::Slti,
            Opcode::Ld,
        ]),
        0u8..32,
        0u8..32,
        -32768i32..32768,
    )
        .prop_map(|(op, rd, rs1, imm)| Instruction::itype(op, rd, rs1, imm))
}

fn arb_branch() -> impl Strategy<Value = Instruction> {
    (
        prop::sample::select(vec![Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge]),
        0u8..32,
        0u8..32,
        0i32..65536,
    )
        .prop_map(|(op, rs1, rs2, target)| Instruction {
            opcode: op,
            rd: 0,
            rs1,
            rs2,
            imm: target,
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip_rtype(inst in arb_rtype()) {
        let w = inst.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn encode_decode_roundtrip_itype(inst in arb_itype()) {
        let w = inst.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn encode_decode_roundtrip_branch(inst in arb_branch()) {
        let w = inst.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn store_roundtrip(rs1 in 0u8..32, rs2 in 0u8..32, imm in -32768i32..32768) {
        let st = Instruction { opcode: Opcode::St, rd: 0, rs1, rs2, imm };
        let w = st.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), st);
    }

    #[test]
    fn disassembly_reassembles_identically(
        insts in prop::collection::vec(
            prop_oneof![arb_rtype(), arb_itype()],
            1..40,
        )
    ) {
        // Build a program text from generated instructions plus a halt, then
        // assemble → disassemble → reassemble and compare binaries.
        let mut src = String::new();
        for i in &insts {
            src.push_str(&format!("    {i}\n"));
        }
        src.push_str("    halt\n");
        let p1 = assemble(&src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        prop_assert_eq!(p1.instructions(), p2.instructions());
    }

    #[test]
    fn cfg_partitions_program_exactly(
        insts in prop::collection::vec(prop_oneof![arb_rtype(), arb_itype()], 1..30),
        branch_positions in prop::collection::vec(0usize..30, 0..5),
    ) {
        // Insert branches at arbitrary in-range positions targeting
        // arbitrary in-range instructions.
        let mut all: Vec<Instruction> = insts;
        let n0 = all.len();
        for (k, &pos) in branch_positions.iter().enumerate() {
            let target = (pos * 7 + k) % n0;
            all.insert(pos % all.len(), Instruction {
                opcode: Opcode::Bne,
                rd: 0,
                rs1: (k % 31) as u8,
                rs2: 0,
                imm: target as i32,
            });
        }
        all.push(Instruction::halt());
        let program = terse_isa::Program::new(
            all,
            vec![],
            Default::default(),
            Default::default(),
        ).unwrap();
        let cfg = Cfg::from_program(&program);
        // Blocks tile the program: contiguous, ordered, complete.
        let mut next = 0u32;
        for b in cfg.blocks() {
            prop_assert_eq!(b.start, next);
            prop_assert!(b.end > b.start);
            next = b.end;
        }
        prop_assert_eq!(next as usize, program.len());
        // Every instruction's containing block is consistent.
        for i in 0..program.len() {
            let blk = cfg.blocks()[cfg.block_containing(i).index()];
            prop_assert!(blk.range().contains(&i));
        }
        // Successor lists never point past the program.
        for b in cfg.blocks() {
            for s in cfg.successors(b.id) {
                prop_assert!(s.index() < cfg.len());
            }
        }
    }
}
