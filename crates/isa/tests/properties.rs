//! Property-based tests for the ISA: encode/decode round trips, assembler
//! stability, and CFG partition invariants.

use proptest::prelude::*;
use terse_isa::{assemble, disassemble, Cfg, Instruction, Opcode};

fn arb_rtype() -> impl Strategy<Value = Instruction> {
    (
        prop::sample::select(vec![
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Sll,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Mul,
            Opcode::Slt,
            Opcode::Sltu,
        ]),
        0u8..32,
        0u8..32,
        0u8..32,
    )
        .prop_map(|(op, rd, rs1, rs2)| Instruction::rtype(op, rd, rs1, rs2))
}

fn arb_itype() -> impl Strategy<Value = Instruction> {
    (
        prop::sample::select(vec![
            Opcode::Addi,
            Opcode::Slli,
            Opcode::Srli,
            Opcode::Srai,
            Opcode::Slti,
            Opcode::Ld,
        ]),
        0u8..32,
        0u8..32,
        -32768i32..32768,
    )
        .prop_map(|(op, rd, rs1, imm)| Instruction::itype(op, rd, rs1, imm))
}

fn arb_branch() -> impl Strategy<Value = Instruction> {
    (
        prop::sample::select(vec![Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge]),
        0u8..32,
        0u8..32,
        0i32..65536,
    )
        .prop_map(|(op, rs1, rs2, target)| Instruction {
            opcode: op,
            rd: 0,
            rs1,
            rs2,
            imm: target,
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip_rtype(inst in arb_rtype()) {
        let w = inst.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn encode_decode_roundtrip_itype(inst in arb_itype()) {
        let w = inst.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn encode_decode_roundtrip_branch(inst in arb_branch()) {
        let w = inst.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), inst);
    }

    #[test]
    fn store_roundtrip(rs1 in 0u8..32, rs2 in 0u8..32, imm in -32768i32..32768) {
        let st = Instruction { opcode: Opcode::St, rd: 0, rs1, rs2, imm };
        let w = st.encode().unwrap();
        prop_assert_eq!(Instruction::decode(w).unwrap(), st);
    }

    #[test]
    fn disassembly_reassembles_identically(
        insts in prop::collection::vec(
            prop_oneof![arb_rtype(), arb_itype()],
            1..40,
        )
    ) {
        // Build a program text from generated instructions plus a halt, then
        // assemble → disassemble → reassemble and compare binaries.
        let mut src = String::new();
        for i in &insts {
            src.push_str(&format!("    {i}\n"));
        }
        src.push_str("    halt\n");
        let p1 = assemble(&src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        prop_assert_eq!(p1.instructions(), p2.instructions());
    }

    #[test]
    fn cfg_partitions_program_exactly(
        insts in prop::collection::vec(prop_oneof![arb_rtype(), arb_itype()], 1..30),
        branch_positions in prop::collection::vec(0usize..30, 0..5),
    ) {
        // Insert branches at arbitrary in-range positions targeting
        // arbitrary in-range instructions.
        let mut all: Vec<Instruction> = insts;
        let n0 = all.len();
        for (k, &pos) in branch_positions.iter().enumerate() {
            let target = (pos * 7 + k) % n0;
            all.insert(pos % all.len(), Instruction {
                opcode: Opcode::Bne,
                rd: 0,
                rs1: (k % 31) as u8,
                rs2: 0,
                imm: target as i32,
            });
        }
        all.push(Instruction::halt());
        let program = terse_isa::Program::new(
            all,
            vec![],
            Default::default(),
            Default::default(),
        ).unwrap();
        let cfg = Cfg::from_program(&program);
        // Blocks tile the program: contiguous, ordered, complete.
        let mut next = 0u32;
        for b in cfg.blocks() {
            prop_assert_eq!(b.start, next);
            prop_assert!(b.end > b.start);
            next = b.end;
        }
        prop_assert_eq!(next as usize, program.len());
        // Every instruction's containing block is consistent.
        for i in 0..program.len() {
            let blk = cfg.blocks()[cfg.block_containing(i).index()];
            prop_assert!(blk.range().contains(&i));
        }
        // Successor lists never point past the program.
        for b in cfg.blocks() {
            for s in cfg.successors(b.id) {
                prop_assert!(s.index() < cfg.len());
            }
        }
    }

    #[test]
    fn every_non_entry_block_has_a_predecessor(
        insts in prop::collection::vec(prop_oneof![arb_rtype(), arb_itype()], 1..30),
        branch_positions in prop::collection::vec((0usize..30, 0usize..30, 0u8..4), 0..6),
    ) {
        // With only conditional branches (never `beq r0,r0`), no indirect
        // jumps, and a single trailing halt, every block except the entry
        // starts at a branch target or falls through from its predecessor —
        // so it must have at least one incoming static edge.
        let program = branchy_program(insts, &branch_positions);
        let cfg = Cfg::from_program(&program);
        for b in cfg.blocks().iter().skip(1) {
            prop_assert!(
                !cfg.predecessors(b.id).is_empty(),
                "block {} ({}..{}) has no incoming edge",
                b.id,
                b.start,
                b.end
            );
        }
        prop_assert_eq!(cfg.blocks()[0].start, 0);
    }

    #[test]
    fn edge_lists_are_duplicate_free_and_consistent(
        insts in prop::collection::vec(prop_oneof![arb_rtype(), arb_itype()], 1..30),
        branch_positions in prop::collection::vec((0usize..30, 0usize..30, 0u8..4), 0..6),
    ) {
        let program = branchy_program(insts, &branch_positions);
        let cfg = Cfg::from_program(&program);
        for b in cfg.blocks() {
            let succs = cfg.successors(b.id);
            let preds = cfg.predecessors(b.id);
            for (i, s) in succs.iter().enumerate() {
                prop_assert!(!succs[..i].contains(s), "duplicate successor {s} of {}", b.id);
            }
            for (i, p) in preds.iter().enumerate() {
                prop_assert!(!preds[..i].contains(p), "duplicate predecessor {p} of {}", b.id);
            }
            // succs/preds are transposes of each other.
            for s in succs {
                prop_assert!(cfg.predecessors(*s).contains(&b.id));
            }
            for p in preds {
                prop_assert!(cfg.successors(*p).contains(&b.id));
            }
        }
    }

    #[test]
    fn branch_targets_start_blocks(
        insts in prop::collection::vec(prop_oneof![arb_rtype(), arb_itype()], 1..30),
        branch_positions in prop::collection::vec((0usize..30, 0usize..30, 0u8..4), 0..6),
    ) {
        // Block boundaries respect branch targets: every in-range target is
        // a leader, i.e. the first instruction of its block.
        let program = branchy_program(insts, &branch_positions);
        let cfg = Cfg::from_program(&program);
        for inst in program.instructions() {
            if inst.opcode.is_branch() {
                let t = inst.imm as usize;
                if t < program.len() {
                    let blk = cfg.blocks()[cfg.block_containing(t).index()];
                    prop_assert_eq!(blk.start as usize, t, "target {} is mid-block", t);
                }
            }
        }
    }

    #[test]
    fn control_flow_only_terminates_blocks(
        insts in prop::collection::vec(prop_oneof![arb_rtype(), arb_itype()], 1..30),
        branch_positions in prop::collection::vec((0usize..30, 0usize..30, 0u8..4), 0..6),
    ) {
        // A branch, jump, or halt can only be a block's final instruction —
        // anything else would put a leader mid-block.
        let program = branchy_program(insts, &branch_positions);
        let cfg = Cfg::from_program(&program);
        for b in cfg.blocks() {
            for i in b.range() {
                let inst = &program.instructions()[i];
                let terminator = inst.opcode.is_branch()
                    || matches!(inst.opcode, Opcode::Jal | Opcode::Jr | Opcode::Halt);
                if terminator {
                    prop_assert_eq!(
                        i + 1,
                        b.end as usize,
                        "control flow mid-block at {} in {}",
                        i,
                        b.id
                    );
                }
            }
        }
    }

    #[test]
    fn pseudo_jump_has_no_fall_through_edge(
        pad in 1usize..10,
        insts in prop::collection::vec(arb_rtype(), 2..20),
    ) {
        // `beq r0, r0, t` is the assembler's unconditional jump: its block
        // gets exactly one successor (the target), never the fall-through.
        let mut all = insts;
        let pad = pad.min(all.len() - 1);
        let target = all.len(); // the trailing halt
        all.insert(pad, Instruction {
            opcode: Opcode::Beq,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: target as i32 + 1, // +1: the insert shifts the tail
        });
        all.push(Instruction::halt());
        let program = terse_isa::Program::new(
            all,
            vec![],
            Default::default(),
            Default::default(),
        ).unwrap();
        let cfg = Cfg::from_program(&program);
        let jump_block = cfg.block_containing(pad);
        let succs = cfg.successors(jump_block);
        prop_assert_eq!(succs.len(), 1, "pseudo-jump block has {} successors", succs.len());
        prop_assert_eq!(succs[0], cfg.block_containing(target + 1));
    }
}

/// A program of ALU instructions with conditional branches (never the
/// `beq r0,r0` pseudo-jump) inserted at arbitrary in-range positions, ending
/// in a single halt — the shape the CFG edge invariants quantify over.
fn branchy_program(
    mut insts: Vec<Instruction>,
    branch_positions: &[(usize, usize, u8)],
) -> terse_isa::Program {
    const BRANCH: [Opcode; 4] = [Opcode::Beq, Opcode::Bne, Opcode::Blt, Opcode::Bge];
    let n0 = insts.len();
    for &(pos, target, op) in branch_positions {
        insts.insert(
            pos % insts.len(),
            Instruction {
                opcode: BRANCH[op as usize],
                rd: 0,
                // rs1 ≥ 1 keeps `beq` conditional (r0 ≠ r0 is impossible,
                // but `beq r0,r0` is the special-cased pseudo-jump).
                rs1: 1 + (target % 31) as u8,
                rs2: 0,
                imm: (target % n0) as i32,
            },
        );
    }
    insts.push(Instruction::halt());
    terse_isa::Program::new(insts, vec![], Default::default(), Default::default())
        .expect("generated instructions are well-formed")
}
