//! The assembled program container.

use crate::inst::Instruction;
use crate::{IsaError, Result};
use std::collections::HashMap;

/// An assembled TERSE-32 program: instruction memory, initial data memory,
/// and the label maps (text labels are instruction indices, data labels are
/// data-memory word addresses).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
    data: Vec<u32>,
    text_labels: HashMap<String, u32>,
    data_labels: HashMap<String, u32>,
}

impl Program {
    /// Builds a program from parts (used by the assembler; tests may build
    /// programs directly).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyProgram`] if there are no instructions.
    pub fn new(
        instructions: Vec<Instruction>,
        data: Vec<u32>,
        text_labels: HashMap<String, u32>,
        data_labels: HashMap<String, u32>,
    ) -> Result<Self> {
        if instructions.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        Ok(Program {
            instructions,
            data,
            text_labels,
            data_labels,
        })
    }

    /// The instruction memory.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The initial data memory (word-addressed from 0).
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions (never true post-assembly).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Looks up a text label (instruction index).
    pub fn text_label(&self, name: &str) -> Option<u32> {
        self.text_labels.get(name).copied()
    }

    /// Looks up a data label (data word address).
    pub fn data_label(&self, name: &str) -> Option<u32> {
        self.data_labels.get(name).copied()
    }

    /// All text labels sorted by address (for disassembly).
    pub fn text_labels_sorted(&self) -> Vec<(&str, u32)> {
        let mut v: Vec<(&str, u32)> = self
            .text_labels
            .iter()
            .map(|(k, &a)| (k.as_str(), a))
            .collect();
        v.sort_by_key(|&(_, a)| a);
        v
    }

    /// Encodes the instruction memory to binary words.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (cannot occur for assembler output).
    pub fn encode(&self) -> Result<Vec<u32>> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Decodes a binary instruction memory back into a program (labels are
    /// lost).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] on undecodable words or
    /// [`IsaError::EmptyProgram`] for an empty image.
    pub fn from_words(words: &[u32], data: Vec<u32>) -> Result<Self> {
        let instructions: Vec<Instruction> = words
            .iter()
            .map(|&w| Instruction::decode(w))
            .collect::<Result<_>>()?;
        Program::new(instructions, data, HashMap::new(), HashMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn empty_program_rejected() {
        assert!(matches!(
            Program::new(vec![], vec![], HashMap::new(), HashMap::new()),
            Err(IsaError::EmptyProgram)
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let prog = Program::new(
            vec![
                Instruction::itype(Opcode::Addi, 1, 0, 7),
                Instruction::rtype(Opcode::Add, 2, 1, 1),
                Instruction::halt(),
            ],
            vec![1, 2, 3],
            HashMap::new(),
            HashMap::new(),
        )
        .unwrap();
        let words = prog.encode().unwrap();
        let back = Program::from_words(&words, prog.data().to_vec()).unwrap();
        assert_eq!(back.instructions(), prog.instructions());
        assert_eq!(back.data(), prog.data());
    }

    #[test]
    fn label_lookup() {
        let mut tl = HashMap::new();
        tl.insert("main".to_string(), 0u32);
        let mut dl = HashMap::new();
        dl.insert("buf".to_string(), 16u32);
        let prog = Program::new(vec![Instruction::halt()], vec![], tl, dl).unwrap();
        assert_eq!(prog.text_label("main"), Some(0));
        assert_eq!(prog.data_label("buf"), Some(16));
        assert_eq!(prog.text_label("nope"), None);
        assert_eq!(prog.text_labels_sorted(), vec![("main", 0)]);
    }
}
