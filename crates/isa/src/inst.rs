//! Decoded instructions and their 32-bit binary encoding.
//!
//! Encoding layout (big fields first):
//!
//! ```text
//! R-type:  [31:26] op  [25:21] rd  [20:16] rs1  [15:11] rs2
//! I-type:  [31:26] op  [25:21] rd  [20:16] rs1  [15:0]  imm16 (sign-extended)
//! store:   [31:26] op  [25:21] rs2 [20:16] rs1  [15:0]  imm16
//! branch:  [31:26] op  [25:21] t_hi[20:16] rs1  [15:11] rs2  [10:0] t_lo
//! jal:     [31:26] op  [25:0]  target26
//! ```
//!
//! Branches compare `rs1`/`rs2` and carry a 16-bit absolute instruction
//! index (`t_hi:t_lo`); `jal` carries a 26-bit absolute target. Absolute
//! targets keep the assembler and CFG trivial to reason about without
//! changing anything the timing analysis sees.

use crate::opcode::Opcode;
use crate::{IsaError, Result};

/// A decoded TERSE-32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation.
    pub opcode: Opcode,
    /// Destination register (0..32).
    pub rd: u8,
    /// First source register.
    pub rs1: u8,
    /// Second source register.
    pub rs2: u8,
    /// Immediate / absolute target. Sign-extended 16-bit for I-type, an
    /// absolute instruction index for branches and `jal`.
    pub imm: i32,
}

impl Instruction {
    /// A canonical `nop`.
    pub fn nop() -> Self {
        Instruction {
            opcode: Opcode::Nop,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        }
    }

    /// A `halt`.
    pub fn halt() -> Self {
        Instruction {
            opcode: Opcode::Halt,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        }
    }

    /// An R-type instruction.
    ///
    /// # Panics
    ///
    /// Panics if a register index is ≥ 32 or the opcode is not R-type.
    pub fn rtype(opcode: Opcode, rd: u8, rs1: u8, rs2: u8) -> Self {
        assert!(opcode.is_rtype(), "{opcode} is not an R-type opcode");
        assert!(rd < 32 && rs1 < 32 && rs2 < 32, "register out of range");
        Instruction {
            opcode,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// An I-type instruction (also used for `ld`).
    ///
    /// # Panics
    ///
    /// Panics if a register index is ≥ 32.
    pub fn itype(opcode: Opcode, rd: u8, rs1: u8, imm: i32) -> Self {
        assert!(rd < 32 && rs1 < 32, "register out of range");
        Instruction {
            opcode,
            rd,
            rs1,
            rs2: 0,
            imm,
        }
    }

    /// Encodes to a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOverflow`] if the immediate does not
    /// fit the destination field.
    pub fn encode(&self) -> Result<u32> {
        let op = (self.opcode.code() as u32) << 26;
        let rd = (self.rd as u32 & 31) << 21;
        let rs1 = (self.rs1 as u32 & 31) << 16;
        let rs2 = (self.rs2 as u32 & 31) << 11;
        let word = match self.opcode {
            Opcode::Nop | Opcode::Halt => op,
            o if o.is_rtype() => op | rd | rs1 | rs2,
            Opcode::Jr => op | rs1,
            Opcode::Jal => {
                let t = self.imm;
                if !(0..1 << 26).contains(&t) {
                    return Err(IsaError::ImmediateOverflow {
                        line: 0,
                        value: t as i64,
                    });
                }
                // rd is implicitly r31 (link); target fills [25:0].
                op | (t as u32)
            }
            o if o.is_branch() => {
                let t = self.imm;
                if !(0..1 << 16).contains(&t) {
                    return Err(IsaError::ImmediateOverflow {
                        line: 0,
                        value: t as i64,
                    });
                }
                // rs1/rs2 compared; 16-bit target split over the rd field
                // (high 5 bits) and [10:0] (low 11 bits).
                let hi = ((t >> 11) & 31) as u32;
                let lo = (t & 0x7FF) as u32;
                op | (hi << 21) | rs1 | rs2 | lo
            }
            Opcode::St => {
                let imm = self.imm;
                if !(-(1 << 15)..1 << 15).contains(&imm) {
                    return Err(IsaError::ImmediateOverflow {
                        line: 0,
                        value: imm as i64,
                    });
                }
                // Value register travels in the rd field.
                op | ((self.rs2 as u32 & 31) << 21) | rs1 | (imm as u32 & 0xFFFF)
            }
            _ => {
                // I-type incl. ld/lui.
                let imm = self.imm;
                if !(-(1 << 15)..1 << 15).contains(&imm) {
                    return Err(IsaError::ImmediateOverflow {
                        line: 0,
                        value: imm as i64,
                    });
                }
                op | rd | rs1 | (imm as u32 & 0xFFFF)
            }
        };
        Ok(word)
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] for unknown opcodes.
    pub fn decode(word: u32) -> Result<Self> {
        let code = (word >> 26) as u8;
        let opcode = Opcode::from_code(code).ok_or(IsaError::BadEncoding { word })?;
        let rd = ((word >> 21) & 31) as u8;
        let rs1 = ((word >> 16) & 31) as u8;
        let rs2 = ((word >> 11) & 31) as u8;
        let imm16 = (word & 0xFFFF) as u16 as i16 as i32;
        let inst = match opcode {
            Opcode::Nop | Opcode::Halt => Instruction {
                opcode,
                rd: 0,
                rs1: 0,
                rs2: 0,
                imm: 0,
            },
            o if o.is_rtype() => Instruction {
                opcode,
                rd,
                rs1,
                rs2,
                imm: 0,
            },
            Opcode::Jr => Instruction {
                opcode,
                rd: 0,
                rs1,
                rs2: 0,
                imm: 0,
            },
            Opcode::Jal => Instruction {
                opcode,
                rd: 31,
                rs1: 0,
                rs2: 0,
                imm: (word & 0x03FF_FFFF) as i32,
            },
            o if o.is_branch() => Instruction {
                opcode,
                rd: 0,
                rs1,
                rs2,
                imm: ((rd as i32) << 11) | (word & 0x7FF) as i32,
            },
            Opcode::St => Instruction {
                opcode,
                rd: 0,
                rs1,
                rs2: rd, // value register travels in the rd field
                imm: imm16,
            },
            _ => Instruction {
                opcode,
                rd,
                rs1,
                rs2: 0,
                imm: imm16,
            },
        };
        Ok(inst)
    }

    /// The registers this instruction reads.
    pub fn sources(&self) -> Vec<u8> {
        match self.opcode {
            o if o.is_rtype() => vec![self.rs1, self.rs2],
            o if o.is_branch() => vec![self.rs1, self.rs2],
            Opcode::St => vec![self.rs1, self.rs2],
            Opcode::Jr => vec![self.rs1],
            Opcode::Nop | Opcode::Halt | Opcode::Jal => vec![],
            Opcode::Lui => vec![],
            _ => vec![self.rs1],
        }
    }

    /// The register this instruction writes, if any.
    pub fn destination(&self) -> Option<u8> {
        if self.opcode.writes_rd() && self.rd != 0 {
            Some(self.rd)
        } else {
            None
        }
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.opcode.mnemonic();
        match self.opcode {
            Opcode::Nop | Opcode::Halt => write!(f, "{m}"),
            o if o.is_rtype() => write!(f, "{m} r{}, r{}, r{}", self.rd, self.rs1, self.rs2),
            o if o.is_branch() => write!(f, "{m} r{}, r{}, {}", self.rs1, self.rs2, self.imm),
            Opcode::Jal => write!(f, "{m} {}", self.imm),
            Opcode::Jr => write!(f, "{m} r{}", self.rs1),
            Opcode::St => write!(f, "{m} r{}, r{}, {}", self.rs2, self.rs1, self.imm),
            Opcode::Lui => write!(f, "{m} r{}, {}", self.rd, self.imm),
            _ => write!(f, "{m} r{}, r{}, {}", self.rd, self.rs1, self.imm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instruction) {
        let w = i.encode().unwrap();
        let d = Instruction::decode(w).unwrap();
        assert_eq!(i, d, "word {w:#010x}");
    }

    #[test]
    fn rtype_roundtrip() {
        for op in [Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Sltu] {
            roundtrip(Instruction::rtype(op, 5, 17, 31));
        }
    }

    #[test]
    fn itype_roundtrip_with_negative_imm() {
        roundtrip(Instruction::itype(Opcode::Addi, 1, 2, -300));
        roundtrip(Instruction::itype(Opcode::Ld, 9, 30, 32767));
        roundtrip(Instruction::itype(Opcode::Addi, 9, 30, -32768));
        roundtrip(Instruction::itype(Opcode::Lui, 4, 0, 1234));
    }

    #[test]
    fn store_roundtrip() {
        let st = Instruction {
            opcode: Opcode::St,
            rd: 0,
            rs1: 3,
            rs2: 7,
            imm: -8,
        };
        roundtrip(st);
    }

    #[test]
    fn branch_roundtrip_with_large_target() {
        let b = Instruction {
            opcode: Opcode::Bne,
            rd: 0,
            rs1: 4,
            rs2: 5,
            imm: 60_000, // needs the 5 high bits in the rd field
        };
        roundtrip(b);
        let too_far = Instruction {
            opcode: Opcode::Bne,
            rd: 0,
            rs1: 4,
            rs2: 5,
            imm: 1 << 16,
        };
        assert!(too_far.encode().is_err());
    }

    #[test]
    fn jal_and_jr_roundtrip() {
        let j = Instruction {
            opcode: Opcode::Jal,
            rd: 31,
            rs1: 0,
            rs2: 0,
            imm: 40_000_000,
        };
        roundtrip(j);
        let r = Instruction {
            opcode: Opcode::Jr,
            rd: 0,
            rs1: 31,
            rs2: 0,
            imm: 0,
        };
        roundtrip(r);
    }

    #[test]
    fn overflow_rejected() {
        let too_big = Instruction::itype(Opcode::Addi, 1, 1, 40000);
        assert!(matches!(
            too_big.encode(),
            Err(IsaError::ImmediateOverflow { .. })
        ));
        let neg_branch = Instruction {
            opcode: Opcode::Beq,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: -1,
        };
        assert!(neg_branch.encode().is_err());
    }

    #[test]
    fn bad_opcode_rejected() {
        let word = 62u32 << 26;
        assert!(matches!(
            Instruction::decode(word),
            Err(IsaError::BadEncoding { .. })
        ));
    }

    #[test]
    fn sources_and_destination() {
        let add = Instruction::rtype(Opcode::Add, 3, 1, 2);
        assert_eq!(add.sources(), vec![1, 2]);
        assert_eq!(add.destination(), Some(3));
        let st = Instruction {
            opcode: Opcode::St,
            rd: 0,
            rs1: 4,
            rs2: 5,
            imm: 0,
        };
        assert_eq!(st.sources(), vec![4, 5]);
        assert_eq!(st.destination(), None);
        // Writes to r0 are discarded.
        let to_zero = Instruction::rtype(Opcode::Add, 0, 1, 2);
        assert_eq!(to_zero.destination(), None);
        let lui = Instruction::itype(Opcode::Lui, 7, 0, 5);
        assert!(lui.sources().is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instruction::nop().to_string(), "nop");
        assert_eq!(
            Instruction::rtype(Opcode::Add, 1, 2, 3).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Instruction::itype(Opcode::Ld, 1, 2, 4).to_string(),
            "ld r1, r2, 4"
        );
    }
}
