//! # terse-isa
//!
//! TERSE-32: a SPARC-V8-flavoured 32-bit in-order RISC instruction set,
//! with a two-pass assembler and CFG extraction.
//!
//! The paper analyzes SPARC V8 binaries of MiBench programs on the LEON3
//! integer unit. Shipping a SPARC toolchain is out of scope, so the
//! workloads are written for this deliberately LEON3-like ISA: 32 registers
//! (`r0` hardwired to zero, `r31` the link register), single-issue in-order
//! semantics, loads/stores against a word-addressed data memory, and the
//! usual integer/branch repertoire. The estimator only consumes the CFG,
//! per-instruction timing features and block/edge statistics, all of which
//! this ISA exercises identically to SPARC.
//!
//! Contents:
//!
//! * [`opcode`] — the instruction repertoire and its properties.
//! * [`inst`] — decoded instruction type and 32-bit binary encoding.
//! * [`asm`] — the two-pass text assembler (labels, `.data`/`.word`/
//!   `.space`, pseudo-instructions) and the disassembler.
//! * [`program`] — the assembled program container.
//! * [`mod@cfg`] — basic-block partitioning and static control-flow edges
//!   (indirect jumps contribute edges discovered at profile time).
//!
//! # Example
//!
//! ```
//! use terse_isa::asm::assemble;
//!
//! # fn main() -> Result<(), terse_isa::IsaError> {
//! let program = assemble(r#"
//!     .text
//!     main:
//!         addi r1, r0, 10
//!     loop:
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         halt
//! "#)?;
//! assert_eq!(program.instructions().len(), 4);
//! let cfg = terse_isa::cfg::Cfg::from_program(&program);
//! assert_eq!(cfg.blocks().len(), 3); // main / loop / halt
//! # Ok(())
//! # }
//! ```

// Numeric-kernel idioms used intentionally throughout this crate:
// `!(x >= 0.0)` rejects NaN along with negatives, and index loops run over
// several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]
#![warn(missing_docs)]
pub mod asm;
pub mod cfg;
pub mod inst;
pub mod opcode;
pub mod program;

pub use asm::{assemble, disassemble};
pub use cfg::{BasicBlock, BlockId, Cfg, ControlKind};
pub use inst::Instruction;
pub use opcode::Opcode;
pub use program::Program;

use std::fmt;

/// Errors from assembling or decoding TERSE-32 code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A syntax error at a source line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An undefined label was referenced.
    UndefinedLabel {
        /// The label name.
        label: String,
        /// 1-based line number of the reference.
        line: usize,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The label name.
        label: String,
    },
    /// An immediate does not fit its field.
    ImmediateOverflow {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: i64,
    },
    /// An undecodable instruction word.
    BadEncoding {
        /// The 32-bit word.
        word: u32,
    },
    /// The program has no instructions.
    EmptyProgram,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            IsaError::UndefinedLabel { label, line } => {
                write!(f, "line {line}: undefined label `{label}`")
            }
            IsaError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            IsaError::ImmediateOverflow { line, value } => {
                write!(f, "line {line}: immediate {value} does not fit its field")
            }
            IsaError::BadEncoding { word } => write!(f, "undecodable instruction {word:#010x}"),
            IsaError::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for IsaError {}

/// Crate-wide result alias.
pub type Result<T, E = IsaError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::IsaError>();
    }
}
