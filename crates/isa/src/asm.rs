//! The two-pass TERSE-32 assembler and disassembler.
//!
//! Syntax:
//!
//! ```text
//! # comment (also `;` and `//`)
//! .data
//! table:  .word 1, 2, 3, 0x10, -5
//! buf:    .space 16              # 16 zero words
//! .text
//! main:   li   r1, 100000        # pseudo: lui+ori (always 2 instructions)
//!         la   r2, table         # pseudo: address of a data label
//!         mv   r3, r1            # pseudo: or r3, r1, r0
//!         j    loop              # pseudo: beq r0, r0, loop
//! loop:   ld   r4, r2, 0
//!         add  r5, r5, r4
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         call subroutine        # pseudo: jal
//!         halt
//! subroutine:
//!         ret                    # pseudo: jr r31
//! ```
//!
//! Registers are `r0`–`r31` with aliases `zero` (r0), `sp` (r30) and `ra`
//! (r31). Branch/`jal` targets are text labels (assembled as absolute
//! instruction indices). `ld`/`st` use `op rD, rBase, offset` /
//! `st rVal, rBase, offset` order.

use crate::inst::Instruction;
use crate::opcode::Opcode;
use crate::program::Program;
use crate::{IsaError, Result};
use std::collections::HashMap;

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::Syntax`], [`IsaError::UndefinedLabel`],
/// [`IsaError::DuplicateLabel`], [`IsaError::ImmediateOverflow`] or
/// [`IsaError::EmptyProgram`] as appropriate — all with line numbers.
pub fn assemble(source: &str) -> Result<Program> {
    failpoints::fail_point!("isa::assemble", |_| Err(IsaError::Syntax {
        line: 0,
        message: "injected assembly fault".into(),
    }));
    let lines = tokenize(source)?;
    // Pass 1: assign label addresses (pseudo sizes are deterministic).
    let mut text_labels: HashMap<String, u32> = HashMap::new();
    let mut data_labels: HashMap<String, u32> = HashMap::new();
    let mut pc = 0u32;
    let mut daddr = 0u32;
    for line in &lines {
        for label in &line.labels {
            let table = if line.section == Section::Text {
                &mut text_labels
            } else {
                &mut data_labels
            };
            let addr = if line.section == Section::Text {
                pc
            } else {
                daddr
            };
            if table.insert(label.clone(), addr).is_some() {
                return Err(IsaError::DuplicateLabel {
                    label: label.clone(),
                });
            }
        }
        match &line.body {
            Body::None => {}
            Body::Instruction { mnemonic, .. } => {
                pc += pseudo_size(mnemonic);
            }
            Body::Word(vals) => daddr += vals.len() as u32,
            Body::Space(n) => daddr += n,
        }
    }
    // Pass 2: emit.
    let mut instructions: Vec<Instruction> = Vec::with_capacity(pc as usize);
    let mut data: Vec<u32> = Vec::with_capacity(daddr as usize);
    for line in &lines {
        match &line.body {
            Body::None => {}
            Body::Word(vals) => {
                for v in vals {
                    data.push(*v as u32);
                }
            }
            Body::Space(n) => data.extend(std::iter::repeat_n(0u32, *n as usize)),
            Body::Instruction { mnemonic, operands } => {
                emit(
                    mnemonic,
                    operands,
                    line.number,
                    &text_labels,
                    &data_labels,
                    &mut instructions,
                )?;
            }
        }
    }
    Program::new(instructions, data, text_labels, data_labels)
}

/// Number of machine instructions a mnemonic expands to.
fn pseudo_size(mnemonic: &str) -> u32 {
    match mnemonic {
        "li" | "la" => 2,
        _ => 1,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Debug, Clone)]
enum Body {
    None,
    Instruction {
        mnemonic: String,
        operands: Vec<String>,
    },
    Word(Vec<i64>),
    Space(u32),
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    section: Section,
    labels: Vec<String>,
    body: Body,
}

fn tokenize(source: &str) -> Result<Vec<Line>> {
    let mut out = Vec::new();
    let mut section = Section::Text;
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        // Strip comments.
        let mut s = raw;
        for marker in ["#", ";", "//"] {
            if let Some(pos) = s.find(marker) {
                s = &s[..pos];
            }
        }
        let mut s = s.trim();
        let mut labels = Vec::new();
        // Leading labels (possibly several).
        while let Some(colon) = s.find(':') {
            let (head, rest) = s.split_at(colon);
            let head = head.trim();
            if head.is_empty()
                || !head
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                || head.starts_with('.')
            {
                break;
            }
            labels.push(head.to_string());
            s = rest[1..].trim();
        }
        if s.is_empty() {
            if !labels.is_empty() {
                out.push(Line {
                    number,
                    section,
                    labels,
                    body: Body::None,
                });
            }
            continue;
        }
        if let Some(rest) = s.strip_prefix(".data") {
            if rest.trim().is_empty() {
                section = Section::Data;
                push_labels(&mut out, number, section, labels);
                continue;
            }
        }
        if let Some(rest) = s.strip_prefix(".text") {
            if rest.trim().is_empty() {
                section = Section::Text;
                push_labels(&mut out, number, section, labels);
                continue;
            }
        }
        let body = if let Some(rest) = s.strip_prefix(".word") {
            let vals: Result<Vec<i64>> = rest
                .split(',')
                .map(|t| parse_int(t.trim(), number))
                .collect();
            Body::Word(vals?)
        } else if let Some(rest) = s.strip_prefix(".space") {
            let n = parse_int(rest.trim(), number)?;
            if n < 0 {
                return Err(IsaError::Syntax {
                    line: number,
                    message: "negative .space size".into(),
                });
            }
            Body::Space(n as u32)
        } else {
            // Instruction: mnemonic [operands…].
            let (mn, rest) = match s.find(char::is_whitespace) {
                Some(p) => (&s[..p], s[p..].trim()),
                None => (s, ""),
            };
            let operands: Vec<String> = if rest.is_empty() {
                vec![]
            } else {
                rest.split(',').map(|t| t.trim().to_string()).collect()
            };
            Body::Instruction {
                mnemonic: mn.to_lowercase(),
                operands,
            }
        };
        out.push(Line {
            number,
            section,
            labels,
            body,
        });
    }
    Ok(out)
}

fn push_labels(out: &mut Vec<Line>, number: usize, section: Section, labels: Vec<String>) {
    if !labels.is_empty() {
        out.push(Line {
            number,
            section,
            labels,
            body: Body::None,
        });
    }
}

fn parse_int(t: &str, line: usize) -> Result<i64> {
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| IsaError::Syntax {
        line,
        message: format!("expected integer, found `{t}`"),
    })?;
    Ok(if neg { -v } else { v })
}

fn parse_reg(t: &str, line: usize) -> Result<u8> {
    let r = match t {
        "zero" => return Ok(0),
        "sp" => return Ok(30),
        "ra" => return Ok(31),
        _ => t,
    };
    let idx = r
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| IsaError::Syntax {
            line,
            message: format!("expected register, found `{t}`"),
        })?;
    Ok(idx)
}

/// An operand that may be an immediate or a label.
fn parse_imm_or_label(
    t: &str,
    line: usize,
    text_labels: &HashMap<String, u32>,
    data_labels: &HashMap<String, u32>,
) -> Result<i64> {
    if t.chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        return parse_int(t, line);
    }
    if let Some(&a) = text_labels.get(t) {
        return Ok(a as i64);
    }
    if let Some(&a) = data_labels.get(t) {
        return Ok(a as i64);
    }
    Err(IsaError::UndefinedLabel {
        label: t.to_string(),
        line,
    })
}

fn expect_operands(ops: &[String], n: usize, line: usize, mn: &str) -> Result<()> {
    if ops.len() != n {
        return Err(IsaError::Syntax {
            line,
            message: format!("`{mn}` expects {n} operands, found {}", ops.len()),
        });
    }
    Ok(())
}

fn check_imm16(v: i64, line: usize) -> Result<i32> {
    if !(-(1 << 15)..1 << 15).contains(&v) {
        return Err(IsaError::ImmediateOverflow { line, value: v });
    }
    Ok(v as i32)
}

/// Immediate check for the zero-extending operations (`andi`/`ori`/`xori`/
/// `lui`): accepts the unsigned 16-bit range too, storing the raw field in
/// its sign-wrapped encoding form.
fn check_imm16_logical(v: i64, line: usize) -> Result<i32> {
    if !(-(1 << 15)..1 << 16).contains(&v) {
        return Err(IsaError::ImmediateOverflow { line, value: v });
    }
    Ok(((v as u16) as i16) as i32)
}

fn emit(
    mn: &str,
    ops: &[String],
    line: usize,
    text_labels: &HashMap<String, u32>,
    data_labels: &HashMap<String, u32>,
    out: &mut Vec<Instruction>,
) -> Result<()> {
    let imm = |t: &str| parse_imm_or_label(t, line, text_labels, data_labels);
    let reg = |t: &str| parse_reg(t, line);
    match mn {
        // ---- pseudo-instructions ------------------------------------
        "li" | "la" => {
            expect_operands(ops, 2, line, mn)?;
            let rd = reg(&ops[0])?;
            let v = imm(&ops[1])? as i32;
            // Always two instructions so label addresses stay stable:
            // lui rd, hi16 ; ori rd, rd, lo16. The 16-bit fields are stored
            // sign-extended (encoding form) but interpreted as raw bits by
            // the `lui`/`ori` semantics (zero-extension).
            let hi = (((v as u32) >> 16) as u16) as i16 as i32;
            let lo = ((v as u32 & 0xFFFF) as u16) as i16 as i32;
            out.push(Instruction::itype(Opcode::Lui, rd, 0, hi));
            out.push(Instruction::itype(Opcode::Ori, rd, rd, lo));
            Ok(())
        }
        "mv" => {
            expect_operands(ops, 2, line, mn)?;
            out.push(Instruction::rtype(
                Opcode::Or,
                reg(&ops[0])?,
                reg(&ops[1])?,
                0,
            ));
            Ok(())
        }
        "j" => {
            expect_operands(ops, 1, line, mn)?;
            let t = imm(&ops[0])?;
            out.push(Instruction {
                opcode: Opcode::Beq,
                rd: 0,
                rs1: 0,
                rs2: 0,
                imm: t as i32,
            });
            Ok(())
        }
        "call" => {
            expect_operands(ops, 1, line, mn)?;
            out.push(Instruction {
                opcode: Opcode::Jal,
                rd: 31,
                rs1: 0,
                rs2: 0,
                imm: imm(&ops[0])? as i32,
            });
            Ok(())
        }
        "ret" => {
            expect_operands(ops, 0, line, mn)?;
            out.push(Instruction {
                opcode: Opcode::Jr,
                rd: 0,
                rs1: 31,
                rs2: 0,
                imm: 0,
            });
            Ok(())
        }
        // ---- real instructions --------------------------------------
        _ => {
            let opcode = Opcode::from_mnemonic(mn).ok_or_else(|| IsaError::Syntax {
                line,
                message: format!("unknown mnemonic `{mn}`"),
            })?;
            let inst = match opcode {
                Opcode::Nop => {
                    expect_operands(ops, 0, line, mn)?;
                    Instruction::nop()
                }
                Opcode::Halt => {
                    expect_operands(ops, 0, line, mn)?;
                    Instruction::halt()
                }
                o if o.is_rtype() => {
                    expect_operands(ops, 3, line, mn)?;
                    Instruction::rtype(o, reg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?)
                }
                Opcode::Lui => {
                    expect_operands(ops, 2, line, mn)?;
                    Instruction::itype(
                        opcode,
                        reg(&ops[0])?,
                        0,
                        check_imm16_logical(imm(&ops[1])?, line)?,
                    )
                }
                o if o.is_itype() || o == Opcode::Ld => {
                    expect_operands(ops, 3, line, mn)?;
                    let check = if matches!(o, Opcode::Andi | Opcode::Ori | Opcode::Xori) {
                        check_imm16_logical
                    } else {
                        check_imm16
                    };
                    Instruction::itype(o, reg(&ops[0])?, reg(&ops[1])?, check(imm(&ops[2])?, line)?)
                }
                Opcode::St => {
                    expect_operands(ops, 3, line, mn)?;
                    Instruction {
                        opcode,
                        rd: 0,
                        rs1: reg(&ops[1])?,
                        rs2: reg(&ops[0])?,
                        imm: check_imm16(imm(&ops[2])?, line)?,
                    }
                }
                o if o.is_branch() => {
                    expect_operands(ops, 3, line, mn)?;
                    Instruction {
                        opcode: o,
                        rd: 0,
                        rs1: reg(&ops[0])?,
                        rs2: reg(&ops[1])?,
                        imm: imm(&ops[2])? as i32,
                    }
                }
                Opcode::Jal => {
                    expect_operands(ops, 1, line, mn)?;
                    Instruction {
                        opcode,
                        rd: 31,
                        rs1: 0,
                        rs2: 0,
                        imm: imm(&ops[0])? as i32,
                    }
                }
                Opcode::Jr => {
                    expect_operands(ops, 1, line, mn)?;
                    Instruction {
                        opcode,
                        rd: 0,
                        rs1: reg(&ops[0])?,
                        rs2: 0,
                        imm: 0,
                    }
                }
                _ => {
                    return Err(IsaError::Syntax {
                        line,
                        message: format!("unsupported mnemonic `{mn}`"),
                    })
                }
            };
            out.push(inst);
            Ok(())
        }
    }
}

/// Disassembles a program back to readable text, annotating text labels.
pub fn disassemble(program: &Program) -> String {
    let labels = program.text_labels_sorted();
    let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
    for (name, addr) in labels {
        by_addr.entry(addr).or_default().push(name);
    }
    let mut s = String::new();
    for (i, inst) in program.instructions().iter().enumerate() {
        if let Some(labels_here) = by_addr.get(&(i as u32)) {
            for n in labels_here {
                s.push_str(n);
                s.push_str(":\n");
            }
        }
        s.push_str(&format!("    {inst}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program_assembles() {
        let p = assemble(
            r"
            .text
            main:
                addi r1, r0, 5
                add  r2, r1, r1
                halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.text_label("main"), Some(0));
        assert_eq!(p.instructions()[0].imm, 5);
        assert_eq!(p.instructions()[1].opcode, Opcode::Add);
    }

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            r"
            start:
                addi r1, r0, 3
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                beq r0, r0, start
                halt
        ",
        )
        .unwrap();
        assert_eq!(p.instructions()[2].imm, 1); // loop at index 1
        assert_eq!(p.instructions()[3].imm, 0); // start at index 0
    }

    #[test]
    fn forward_references_work() {
        let p = assemble(
            r"
                j end
                nop
            end:
                halt
        ",
        )
        .unwrap();
        assert_eq!(p.instructions()[0].imm, 2);
    }

    #[test]
    fn data_section_and_la() {
        let p = assemble(
            r"
            .data
            nums: .word 10, 20, 0x1F, -1
            buf:  .space 4
            tail: .word 7
            .text
                la r1, nums
                la r2, tail
                ld r3, r1, 2
                halt
        ",
        )
        .unwrap();
        assert_eq!(p.data().len(), 4 + 4 + 1);
        assert_eq!(p.data()[2], 0x1F);
        assert_eq!(p.data()[3], u32::MAX);
        assert_eq!(p.data_label("buf"), Some(4));
        assert_eq!(p.data_label("tail"), Some(8));
        // la expands to lui+ori: tail → 8 in the low half.
        assert_eq!(p.instructions()[2].opcode, Opcode::Lui);
        assert_eq!(p.instructions()[3].imm, 8);
    }

    #[test]
    fn li_expansion_handles_large_values() {
        let p = assemble(
            r"
                li r5, 0x12345678
                halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.instructions()[0].opcode, Opcode::Lui);
        assert_eq!(p.instructions()[0].imm, 0x1234);
        assert_eq!(p.instructions()[1].opcode, Opcode::Ori);
        assert_eq!(p.instructions()[1].imm, 0x5678);
    }

    #[test]
    fn pseudo_instructions() {
        let p = assemble(
            r"
                mv r3, r7
                call fn
                halt
            fn:
                ret
        ",
        )
        .unwrap();
        assert_eq!(p.instructions()[0].opcode, Opcode::Or);
        assert_eq!(p.instructions()[1].opcode, Opcode::Jal);
        assert_eq!(p.instructions()[1].imm, 3);
        assert_eq!(p.instructions()[3].opcode, Opcode::Jr);
        assert_eq!(p.instructions()[3].rs1, 31);
    }

    #[test]
    fn register_aliases() {
        let p = assemble(
            r"
                add r1, zero, ra
                add r2, sp, r0
                halt
        ",
        )
        .unwrap();
        assert_eq!(p.instructions()[0].rs1, 0);
        assert_eq!(p.instructions()[0].rs2, 31);
        assert_eq!(p.instructions()[1].rs1, 30);
    }

    #[test]
    fn store_operand_order() {
        // st rVal, rBase, offset
        let p = assemble("st r7, r3, 5\nhalt\n").unwrap();
        let st = p.instructions()[0];
        assert_eq!(st.rs2, 7);
        assert_eq!(st.rs1, 3);
        assert_eq!(st.imm, 5);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            r"
            # full comment
            main:  nop  // trailing
                   nop  ; also trailing
                   halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            assemble("bogus r1, r2\nhalt\n"),
            Err(IsaError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            assemble("bne r1, r0, nowhere\nhalt\n"),
            Err(IsaError::UndefinedLabel { .. })
        ));
        assert!(matches!(
            assemble("a:\na:\nhalt\n"),
            Err(IsaError::DuplicateLabel { .. })
        ));
        assert!(matches!(
            assemble("addi r1, r0, 100000\nhalt\n"),
            Err(IsaError::ImmediateOverflow { .. })
        ));
        assert!(matches!(
            assemble("add r1, r2\nhalt\n"),
            Err(IsaError::Syntax { .. })
        ));
        assert!(matches!(
            assemble("add r1, r2, r99\nhalt\n"),
            Err(IsaError::Syntax { .. })
        ));
        assert!(matches!(assemble(""), Err(IsaError::EmptyProgram)));
    }

    #[test]
    fn disassembly_roundtrips_through_assembler() {
        let src = r"
            main:
                addi r1, r0, 5
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                st r1, r0, 0
                halt
        ";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.instructions(), p2.instructions());
    }
}
