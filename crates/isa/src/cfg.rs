//! Control-flow graph construction — the `B_1 … B_m` decomposition of the
//! paper's Section 4.
//!
//! Basic blocks are maximal straight-line instruction runs; leaders are the
//! entry instruction, every branch/jump target, and every instruction
//! following a control-flow instruction. Static edges cover branches
//! (taken + fall-through), unconditional jumps, and calls; indirect jumps
//! (`jr`, used for returns) contribute *dynamic* edges that the profiling
//! simulator reports — matching the paper, which measures edge activation
//! probabilities from program runs anyway.

use crate::inst::Instruction;
use crate::opcode::Opcode;
use crate::program::Program;

/// Decoded control-transfer behaviour of one instruction — the single
/// source of truth for leader derivation and static edge construction,
/// shared between [`Cfg::from_program`] and the static analyzer's
/// structural re-derivation so the two can never drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlKind {
    /// Not a control-flow instruction: execution falls through.
    FallThrough,
    /// Conditional branch to `target`. `falls_through` is `false` for the
    /// `beq r0, r0` pseudo-jump, which is always taken.
    Branch {
        /// Instruction index of the branch target.
        target: u32,
        /// Whether the fall-through edge is real.
        falls_through: bool,
    },
    /// Unconditional direct jump or call to `target`.
    Jump {
        /// Instruction index of the jump target.
        target: u32,
    },
    /// Indirect jump — successors are discovered dynamically at profile
    /// time.
    Indirect,
    /// Program termination.
    Halt,
}

impl ControlKind {
    /// Classifies an instruction's control-transfer behaviour.
    pub fn of(inst: &Instruction) -> ControlKind {
        match inst.opcode {
            op if op.is_branch() => ControlKind::Branch {
                target: inst.imm as u32,
                // `beq r0, r0` compares the hardwired zero register with
                // itself: always taken, so the fall-through edge is dead.
                falls_through: !(inst.opcode == Opcode::Beq && inst.rs1 == 0 && inst.rs2 == 0),
            },
            Opcode::Jal => ControlKind::Jump {
                target: inst.imm as u32,
            },
            Opcode::Jr => ControlKind::Indirect,
            Opcode::Halt => ControlKind::Halt,
            _ => ControlKind::FallThrough,
        }
    }

    /// Whether the instruction transfers control (ends a basic block).
    pub fn is_control(&self) -> bool {
        !matches!(self, ControlKind::FallThrough)
    }

    /// The static branch/jump target, if any.
    pub fn static_target(&self) -> Option<u32> {
        match *self {
            ControlKind::Branch { target, .. } | ControlKind::Jump { target } => Some(target),
            _ => None,
        }
    }
}

/// Identifier of a basic block (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A basic block: instructions `start..end` of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// First instruction index (inclusive).
    pub start: u32,
    /// Past-the-end instruction index.
    pub end: u32,
}

impl BasicBlock {
    /// Number of instructions in the block (`n_i` in the paper).
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never true for constructed CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The instruction indices of the block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// The control-flow graph of a program.
///
/// # Example
/// ```
/// use terse_isa::{assemble, Cfg};
/// # fn main() -> Result<(), terse_isa::IsaError> {
/// let p = assemble("addi r1, r0, 3\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n")?;
/// let cfg = Cfg::from_program(&p);
/// assert_eq!(cfg.blocks().len(), 3);
/// // The loop block has two successors: itself and the halt block.
/// let loop_block = cfg.block_containing(1);
/// assert_eq!(cfg.successors(loop_block).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    block_of: Vec<BlockId>,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    /// Blocks ending in an indirect jump (their successor sets are
    /// completed dynamically at profile time).
    indirect: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of a program.
    pub fn from_program(program: &Program) -> Self {
        let insts = program.instructions();
        let n = insts.len();
        // Leaders.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, inst) in insts.iter().enumerate() {
            let kind = ControlKind::of(inst);
            if let Some(t) = kind.static_target() {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
            if kind.is_control() && i + 1 < n {
                leader[i + 1] = true;
            }
        }
        // Blocks.
        let mut blocks = Vec::new();
        let mut block_of = Vec::with_capacity(n);
        let mut start = 0usize;
        for i in 0..n {
            if i > 0 && leader[i] {
                let id = BlockId(blocks.len() as u32);
                blocks.push(BasicBlock {
                    id,
                    start: start as u32,
                    end: i as u32,
                });
                start = i;
            }
        }
        if n > 0 {
            let id = BlockId(blocks.len() as u32);
            blocks.push(BasicBlock {
                id,
                start: start as u32,
                end: n as u32,
            });
        }
        for b in &blocks {
            for _ in b.range() {
                block_of.push(b.id);
            }
        }
        // Static edges.
        let m = blocks.len();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); m];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); m];
        let mut indirect = Vec::new();
        let block_at = |idx: usize| -> Option<BlockId> { block_of.get(idx).copied() };
        for b in &blocks {
            let last = &insts[(b.end - 1) as usize];
            let add = |succ: Option<BlockId>, succs: &mut Vec<Vec<BlockId>>| {
                if let Some(s) = succ {
                    if !succs[b.id.index()].contains(&s) {
                        succs[b.id.index()].push(s);
                    }
                }
            };
            match ControlKind::of(last) {
                ControlKind::Branch {
                    target,
                    falls_through,
                } => {
                    add(block_at(target as usize), &mut succs);
                    if falls_through {
                        add(block_at(b.end as usize), &mut succs);
                    }
                }
                ControlKind::Jump { target } => add(block_at(target as usize), &mut succs),
                ControlKind::Indirect => indirect.push(b.id),
                ControlKind::Halt => {}
                ControlKind::FallThrough => add(block_at(b.end as usize), &mut succs),
            }
        }
        for (i, ss) in succs.iter().enumerate() {
            for s in ss {
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        Cfg {
            blocks,
            block_of,
            succs,
            preds,
            indirect,
        }
    }

    /// Assembles a CFG directly from parts, with **no** consistency
    /// checking against any program.
    ///
    /// This is a fixture-injection API for the static analyzer's test
    /// corpus: it can express deliberately broken graphs (dangling edges,
    /// merged leaders, missing fall-throughs) that `from_program` can
    /// never produce. `block_of` is derived from the block ranges
    /// (in-range instructions only); `preds` is the transpose of `succs`
    /// restricted to in-range targets, so a dangling successor edge has
    /// no predecessor image — exactly the asymmetry the CF002 pass
    /// reports.
    pub fn from_raw_parts(
        blocks: Vec<BasicBlock>,
        mut succs: Vec<Vec<BlockId>>,
        indirect: Vec<BlockId>,
        program_len: usize,
    ) -> Self {
        let m = blocks.len();
        succs.resize(m, Vec::new());
        let mut block_of = vec![BlockId(0); program_len];
        for b in &blocks {
            for i in b.range() {
                if let Some(slot) = block_of.get_mut(i) {
                    *slot = b.id;
                }
            }
        }
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); m];
        for (i, ss) in succs.iter().enumerate() {
            for s in ss {
                if s.index() < m {
                    preds[s.index()].push(BlockId(i as u32));
                }
            }
        }
        Cfg {
            blocks,
            block_of,
            succs,
            preds,
            indirect,
        }
    }

    /// The basic blocks in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn block_containing(&self, idx: usize) -> BlockId {
        self.block_of[idx]
    }

    /// Static successor blocks.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Static predecessor blocks.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks terminated by an indirect jump (dynamic successor discovery).
    pub fn indirect_blocks(&self) -> &[BlockId] {
        &self.indirect
    }

    /// The instructions of a block, borrowed from the program.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range for `program`.
    pub fn block_instructions<'p>(&self, program: &'p Program, b: BlockId) -> &'p [Instruction] {
        let blk = &self.blocks[b.index()];
        &program.instructions()[blk.range()]
    }

    /// Number of blocks (`m` in the paper).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (empty programs cannot be assembled).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn straight_line_is_one_block() {
        let p = assemble("addi r1, r0, 1\nadd r2, r1, r1\nhalt\n").unwrap();
        let cfg = Cfg::from_program(&p);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks()[0].len(), 3);
        assert!(cfg.successors(BlockId(0)).is_empty());
    }

    #[test]
    fn loop_structure() {
        let p = assemble(
            r"
                addi r1, r0, 3
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                halt
        ",
        )
        .unwrap();
        let cfg = Cfg::from_program(&p);
        assert_eq!(cfg.len(), 3);
        let loop_b = cfg.block_containing(1);
        assert_eq!(cfg.successors(loop_b), &[loop_b, cfg.block_containing(3)]);
        // Predecessors of the loop block: entry and itself.
        let preds = cfg.predecessors(loop_b);
        assert_eq!(preds.len(), 2);
        assert!(preds.contains(&cfg.block_containing(0)));
        assert!(preds.contains(&loop_b));
    }

    #[test]
    fn block_partition_covers_program_exactly() {
        let p = assemble(
            r"
                addi r1, r0, 10
            a:
                addi r1, r1, -1
                beq r1, r0, b
                bne r1, r0, a
            b:
                st r1, r0, 0
                halt
        ",
        )
        .unwrap();
        let cfg = Cfg::from_program(&p);
        let total: usize = cfg.blocks().iter().map(BasicBlock::len).sum();
        assert_eq!(total, p.len());
        // Blocks are contiguous and ordered.
        let mut next = 0;
        for b in cfg.blocks() {
            assert_eq!(b.start, next);
            next = b.end;
        }
        assert_eq!(next as usize, p.len());
        // Every instruction maps to the block containing it.
        for (i, _) in p.instructions().iter().enumerate() {
            let b = cfg.block_containing(i);
            let blk = cfg.blocks()[b.index()];
            assert!(blk.range().contains(&i));
        }
    }

    #[test]
    fn call_and_return_blocks() {
        let p = assemble(
            r"
            main:
                call fn
                halt
            fn:
                addi r1, r1, 1
                ret
        ",
        )
        .unwrap();
        let cfg = Cfg::from_program(&p);
        // Blocks: [call], [halt], [fn body incl ret].
        assert_eq!(cfg.len(), 3);
        let call_b = cfg.block_containing(0);
        let fn_b = cfg.block_containing(p.text_label("fn").unwrap() as usize);
        assert_eq!(cfg.successors(call_b), &[fn_b]);
        // The return block is indirect: no static successors, flagged.
        assert!(cfg.successors(fn_b).is_empty());
        assert_eq!(cfg.indirect_blocks(), &[fn_b]);
    }

    #[test]
    fn unconditional_pseudo_jump_has_single_successor() {
        let p = assemble(
            r"
                j end
                nop
            end:
                halt
        ",
        )
        .unwrap();
        let cfg = Cfg::from_program(&p);
        let first = cfg.block_containing(0);
        assert_eq!(cfg.successors(first).len(), 1);
        assert_eq!(cfg.successors(first)[0], cfg.block_containing(2));
    }

    #[test]
    fn block_instructions_accessor() {
        let p = assemble("addi r1, r0, 1\nhalt\n").unwrap();
        let cfg = Cfg::from_program(&p);
        let insts = cfg.block_instructions(&p, BlockId(0));
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[1].opcode, Opcode::Halt);
    }
}
