//! The TERSE-32 instruction repertoire.

/// Operation codes. The 6-bit encoding value of each opcode is its
/// discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// `rd ← rs1 + rs2`
    Add = 1,
    /// `rd ← rs1 − rs2`
    Sub = 2,
    /// `rd ← rs1 & rs2`
    And = 3,
    /// `rd ← rs1 | rs2`
    Or = 4,
    /// `rd ← rs1 ^ rs2`
    Xor = 5,
    /// `rd ← rs1 << rs2[4:0]`
    Sll = 6,
    /// `rd ← rs1 >> rs2[4:0]` (logical)
    Srl = 7,
    /// `rd ← rs1 >> rs2[4:0]` (arithmetic)
    Sra = 8,
    /// `rd ← low32(rs1 × rs2)`
    Mul = 9,
    /// `rd ← (rs1 <ₛ rs2) ? 1 : 0`
    Slt = 10,
    /// `rd ← (rs1 <ᵤ rs2) ? 1 : 0`
    Sltu = 11,
    /// `rd ← rs1 + imm`
    Addi = 16,
    /// `rd ← rs1 & zext(imm)`
    Andi = 17,
    /// `rd ← rs1 | zext(imm)`
    Ori = 18,
    /// `rd ← rs1 ^ zext(imm)`
    Xori = 19,
    /// `rd ← rs1 << imm[4:0]`
    Slli = 20,
    /// `rd ← rs1 >> imm[4:0]` (logical)
    Srli = 21,
    /// `rd ← rs1 >> imm[4:0]` (arithmetic)
    Srai = 22,
    /// `rd ← (rs1 <ₛ imm) ? 1 : 0`
    Slti = 23,
    /// `rd ← imm << 16`
    Lui = 24,
    /// `rd ← dmem[rs1 + imm]`
    Ld = 32,
    /// `dmem[rs1 + imm] ← rs2`
    St = 33,
    /// Branch to absolute target `imm` if `rs1 == rs2`.
    Beq = 40,
    /// Branch if `rs1 != rs2`.
    Bne = 41,
    /// Branch if `rs1 <ₛ rs2`.
    Blt = 42,
    /// Branch if `rs1 ≥ₛ rs2`.
    Bge = 43,
    /// Jump-and-link to absolute target `imm`; `rd ← return address`.
    Jal = 48,
    /// Indirect jump to the address in `rs1` (used for returns).
    Jr = 49,
    /// Stop execution.
    Halt = 63,
}

impl Opcode {
    /// All opcodes, in encoding order.
    pub const ALL: [Opcode; 29] = [
        Opcode::Nop,
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Mul,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Slti,
        Opcode::Lui,
        Opcode::Ld,
        Opcode::St,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Jal,
        Opcode::Jr,
    ];

    /// Decodes a 6-bit opcode field.
    pub fn from_code(code: u8) -> Option<Opcode> {
        if code == 63 {
            return Some(Opcode::Halt);
        }
        Opcode::ALL.iter().copied().find(|o| *o as u8 == code)
    }

    /// The 6-bit encoding value.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Sll => "sll",
            Opcode::Srl => "srl",
            Opcode::Sra => "sra",
            Opcode::Mul => "mul",
            Opcode::Slt => "slt",
            Opcode::Sltu => "sltu",
            Opcode::Addi => "addi",
            Opcode::Andi => "andi",
            Opcode::Ori => "ori",
            Opcode::Xori => "xori",
            Opcode::Slli => "slli",
            Opcode::Srli => "srli",
            Opcode::Srai => "srai",
            Opcode::Slti => "slti",
            Opcode::Lui => "lui",
            Opcode::Ld => "ld",
            Opcode::St => "st",
            Opcode::Beq => "beq",
            Opcode::Bne => "bne",
            Opcode::Blt => "blt",
            Opcode::Bge => "bge",
            Opcode::Jal => "jal",
            Opcode::Jr => "jr",
            Opcode::Halt => "halt",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .chain(std::iter::once(Opcode::Halt))
            .find(|o| o.mnemonic() == s)
    }

    /// Register-register ALU operations.
    pub fn is_rtype(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Sll
                | Opcode::Srl
                | Opcode::Sra
                | Opcode::Mul
                | Opcode::Slt
                | Opcode::Sltu
        )
    }

    /// Register-immediate ALU operations.
    pub fn is_itype(self) -> bool {
        matches!(
            self,
            Opcode::Addi
                | Opcode::Andi
                | Opcode::Ori
                | Opcode::Xori
                | Opcode::Slli
                | Opcode::Srli
                | Opcode::Srai
                | Opcode::Slti
                | Opcode::Lui
        )
    }

    /// Conditional branches.
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// Instructions that may redirect the PC (branches, jumps, halt).
    pub fn is_control_flow(self) -> bool {
        self.is_branch() || matches!(self, Opcode::Jal | Opcode::Jr | Opcode::Halt)
    }

    /// Memory accesses.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::St)
    }

    /// Whether the instruction writes a destination register.
    pub fn writes_rd(self) -> bool {
        self.is_rtype() || self.is_itype() || matches!(self, Opcode::Ld | Opcode::Jal)
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for op in Opcode::ALL.iter().copied().chain([Opcode::Halt]) {
            assert_eq!(Opcode::from_code(op.code()), Some(op), "{op}");
        }
        assert_eq!(Opcode::from_code(62), None);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in Opcode::ALL.iter().copied().chain([Opcode::Halt]) {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn classification_is_consistent() {
        for op in Opcode::ALL.iter().copied().chain([Opcode::Halt]) {
            // R-type and I-type are disjoint.
            assert!(!(op.is_rtype() && op.is_itype()), "{op}");
            // Branches are control flow.
            if op.is_branch() {
                assert!(op.is_control_flow());
            }
            // Memory ops are not control flow.
            if op.is_memory() {
                assert!(!op.is_control_flow());
            }
        }
        assert!(Opcode::Ld.writes_rd());
        assert!(!Opcode::St.writes_rd());
        assert!(Opcode::Jal.writes_rd());
        assert!(!Opcode::Beq.writes_rd());
    }

    #[test]
    fn codes_fit_six_bits() {
        for op in Opcode::ALL.iter().copied().chain([Opcode::Halt]) {
            assert!(op.code() < 64);
        }
    }
}
