//! Artifact integrity: CRC32 checksums and the versioned `TERSEFR1`
//! envelope that wraps every durable binary artifact of the job server.
//!
//! The serving layer (DESIGN.md §17) persists three kinds of binary or
//! semi-binary artifacts: `TERSECP1` estimate checkpoints, `TERSEMC1`
//! Monte Carlo checkpoints, and `report.json` (digest-stamped via a
//! `report.json.crc32` sidecar). Torn writes are already excluded by the
//! store's tmp+rename protocol *for crashes of our own process* — but not
//! for bit rot, truncation by a full disk, or corruption introduced by
//! anything else that touches the store. The envelope makes every such
//! case **detectable on load**:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TERSEFR1"
//! 8       4     version (u32 LE, currently 1)
//! 12      8     payload length (u64 LE)
//! 20      4     CRC32 (IEEE) of the payload (u32 LE)
//! 24      n     payload (e.g. a complete TERSECP1 image)
//! ```
//!
//! [`unframe`] distinguishes the three outcomes callers dispatch on:
//! a valid frame (payload returned), a file that predates framing
//! ([`FrameError::NotFramed`] — legacy artifacts stay loadable), and a
//! damaged frame ([`FrameError::Torn`] / [`FrameError::Corrupt`] — the
//! payload is **never** returned, so a corrupt checkpoint can never be
//! loaded). Checkpoint codecs react to damage by falling back to the
//! previous good image (`.bak`) or a fresh start, which is always
//! bit-exact because checkpoints are pure recomputation caches.
//!
//! This module lives in `terse-analyze` — the lowest common dependency of
//! `terse` (core), `terse-sim`, and `terse-serve` — for the same reason
//! [`valid_transition`](crate::valid_transition) does: one implementation,
//! shared by the writers, the loaders, and the store scrubber.

use std::fmt;

/// Magic prefix of a framed artifact.
pub const FRAME_MAGIC: [u8; 8] = *b"TERSEFR1";
/// Current frame format version.
pub const FRAME_VERSION: u32 = 1;
/// Size of the fixed frame header preceding the payload.
pub const FRAME_HEADER_LEN: usize = 24;

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data` — the same polynomial as zip/png/ethernet, so
/// externally produced checksums of store artifacts can be compared
/// directly.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// CRC32 of `data` as fixed-width lowercase hex — the digest form stamped
/// into `report.json.crc32` sidecars.
pub fn crc32_hex(data: &[u8]) -> String {
    format!("{:08x}", crc32(data))
}

/// Why a byte image failed to unframe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The image does not start with [`FRAME_MAGIC`] — either a legacy
    /// (pre-framing) artifact or something else entirely. The caller
    /// decides whether bare payloads are acceptable.
    NotFramed,
    /// The header declares a different length than the image carries —
    /// a truncated (torn) or padded file.
    Torn {
        /// Payload bytes the header promised.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The frame version is newer than this build understands.
    UnknownVersion(u32),
    /// The payload does not match its stored checksum: bit rot, a torn
    /// overwrite, or deliberate corruption.
    Corrupt {
        /// Checksum recorded in the header.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NotFramed => write!(f, "image is not TERSEFR1-framed"),
            FrameError::Torn { declared, actual } => write!(
                f,
                "torn frame: header declares {declared} payload byte(s), image carries {actual}"
            ),
            FrameError::UnknownVersion(v) => {
                write!(
                    f,
                    "unknown frame version {v} (this build reads version {FRAME_VERSION})"
                )
            }
            FrameError::Corrupt { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
        }
    }
}

/// Wraps `payload` in a `TERSEFR1` frame.
///
/// Fail point `integrity::frame_corrupt` (chaos suite): when triggered,
/// one payload byte is flipped *after* the checksum is computed, so the
/// artifact written to disk is corrupt in exactly the way a bit flip
/// would make it — and must be caught by [`unframe`] on the next load.
/// An optional numeric payload selects the byte index to flip.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    if failpoints::ENABLED {
        if let Some(arg) = failpoints::eval("integrity::frame_corrupt") {
            if payload.is_empty() {
                // Nothing to flip in the payload: damage the checksum field.
                out[FRAME_HEADER_LEN - 1] ^= 0x01;
            } else {
                let idx = arg.parse::<usize>().unwrap_or(0).min(payload.len() - 1);
                out[FRAME_HEADER_LEN + idx] ^= 0x01;
            }
        }
    }
    out
}

/// Validates a `TERSEFR1` frame and returns the payload slice.
///
/// # Errors
///
/// [`FrameError::NotFramed`] for images without the magic (legacy bare
/// payloads — the caller chooses whether to accept them),
/// [`FrameError::Torn`] / [`FrameError::UnknownVersion`] /
/// [`FrameError::Corrupt`] for damaged frames. A payload is returned
/// **only** when its checksum verifies.
pub fn unframe(image: &[u8]) -> Result<&[u8], FrameError> {
    if image.len() < FRAME_MAGIC.len() || image[..FRAME_MAGIC.len()] != FRAME_MAGIC {
        return Err(FrameError::NotFramed);
    }
    if image.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Torn {
            declared: 0,
            actual: image.len().saturating_sub(FRAME_MAGIC.len()),
        });
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    u32buf.copy_from_slice(&image[8..12]);
    let version = u32::from_le_bytes(u32buf);
    if version != FRAME_VERSION {
        return Err(FrameError::UnknownVersion(version));
    }
    u64buf.copy_from_slice(&image[12..20]);
    let declared = u64::from_le_bytes(u64buf) as usize;
    u32buf.copy_from_slice(&image[20..24]);
    let stored = u32::from_le_bytes(u32buf);
    let payload = &image[FRAME_HEADER_LEN..];
    if payload.len() != declared {
        return Err(FrameError::Torn {
            declared,
            actual: payload.len(),
        });
    }
    let computed = crc32(payload);
    if computed != stored {
        return Err(FrameError::Corrupt { stored, computed });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        // The canonical CRC32 check value: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_hex(b"123456789"), "cbf43926");
    }

    #[test]
    fn frame_roundtrips_all_payload_shapes() {
        for payload in [&b""[..], &b"x"[..], &[0u8; 1024][..], b"TERSECP1 inner"] {
            let image = frame(payload);
            assert_eq!(image.len(), FRAME_HEADER_LEN + payload.len());
            assert_eq!(unframe(&image), Ok(payload));
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let image = frame(b"some checkpoint payload");
        for byte in 0..image.len() {
            for bit in 0..8u8 {
                let mut damaged = image.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    unframe(&damaged).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_and_extension_are_torn() {
        let image = frame(b"payload bytes");
        for cut in FRAME_HEADER_LEN..image.len() {
            match unframe(&image[..cut]) {
                Err(FrameError::Torn { .. }) => {}
                other => panic!("truncation to {cut} gave {other:?}"),
            }
        }
        let mut extended = image.clone();
        extended.push(0);
        assert!(matches!(unframe(&extended), Err(FrameError::Torn { .. })));
        // Cutting into the header is also torn (magic still present).
        assert!(matches!(
            unframe(&image[..10]),
            Err(FrameError::Torn { .. })
        ));
    }

    #[test]
    fn bare_payloads_and_foreign_files_are_not_framed() {
        assert_eq!(
            unframe(b"TERSECP1 legacy image"),
            Err(FrameError::NotFramed)
        );
        assert_eq!(unframe(b""), Err(FrameError::NotFramed));
        assert_eq!(unframe(b"short"), Err(FrameError::NotFramed));
    }

    #[test]
    fn future_versions_are_rejected_not_misread() {
        let mut image = frame(b"payload");
        image[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(unframe(&image), Err(FrameError::UnknownVersion(2)));
    }

    #[test]
    fn display_forms_are_informative() {
        let s = FrameError::Corrupt {
            stored: 0xDEAD_BEEF,
            computed: 1,
        }
        .to_string();
        assert!(s.contains("deadbeef"), "{s}");
        assert!(FrameError::NotFramed.to_string().contains("TERSEFR1"));
    }
}
