//! Structural verification of the netlist IR.
//!
//! Algorithm 1 (and everything downstream of it — STA, SSTA, DTA, the
//! activation simulator) assumes a *well-formed* netlist: an acyclic
//! combinational graph, fully driven nets, one driver per flip-flop D pin,
//! and stage-consistent cones (the logic of stage `s` reads only stage-`s`
//! combinational values plus sequential launch points). The builder's
//! `finish()` enforces most of this at construction time; this pass
//! re-derives all of it on the *finished* object so that artifacts built
//! through the unchecked fixture path (or deserialized / future importers)
//! are diagnosed instead of silently mis-analyzed.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | NL001 | error    | combinational cycle (Tarjan SCC over the comb subgraph) |
//! | NL002 | error    | undriven net: FF without a D driver, or comb gate with missing/wrong-arity fanin |
//! | NL003 | error    | multi-driver conflict on a flip-flop D pin |
//! | NL004 | warning  | floating net: a non-FF gate whose output drives nothing |
//! | NL005 | error    | stage-cone mismatch: stage-`s` logic reading another stage's combinational value |
//! | NL006 | warning  | unreachable endpoint: a D cone with no sequential/port source (constant-only) |

use crate::{AnalysisReport, Severity};
use terse_netlist::gate::{GateId, GateKind};
use terse_netlist::Netlist;

/// Runs every netlist structural pass, appending findings to `report`.
///
/// Emission order is deterministic: passes run in code order and iterate
/// gates in dense id order.
pub fn analyze_netlist(n: &Netlist, report: &mut AnalysisReport) {
    cycles(n, report);
    drivers(n, report);
    floating(n, report);
    stages(n, report);
    endpoint_sources(n, report);
}

fn entity(n: &Netlist, g: GateId) -> String {
    format!("{g} ({}, stage {})", n.kind(g).cell_name(), n.stage(g))
}

fn is_comb(n: &Netlist, g: GateId) -> bool {
    !n.kind(g).is_endpoint()
}

/// NL001 — combinational-loop detection via iterative Tarjan SCC over the
/// combinational subgraph (sequential elements and ports break paths, as
/// they do in timing analysis). One diagnostic per non-trivial SCC.
fn cycles(n: &Netlist, report: &mut AnalysisReport) {
    let count = n.gate_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; count];
    let mut low = vec![0u32; count];
    let mut on_stack = vec![false; count];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0u32;
    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..count {
        if index[root] != UNVISITED || !is_comb(n, GateId::from_index(root)) {
            continue;
        }
        frames.push((root, 0));
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            // Advance this frame to its next unvisited combinational
            // successor, folding back-edge lowlinks along the way.
            let mut child: Option<usize> = None;
            let fanout = n.fanout(GateId::from_index(v));
            while *pos < fanout.len() {
                let w = fanout[*pos].index();
                *pos += 1;
                if !is_comb(n, GateId::from_index(w)) {
                    continue;
                }
                if index[w] == UNVISITED {
                    child = Some(w);
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if let Some(w) = child {
                index[w] = next;
                low[w] = next;
                next += 1;
                stack.push(w);
                on_stack[w] = true;
                frames.push((w, 0));
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut scc = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                let self_loop = scc.len() == 1
                    && n.fanin(GateId::from_index(scc[0]))
                        .contains(&GateId::from_index(scc[0]));
                if scc.len() > 1 || self_loop {
                    scc.sort_unstable();
                    let mut names: Vec<String> = scc
                        .iter()
                        .take(8)
                        .map(|&g| GateId::from_index(g).to_string())
                        .collect();
                    if scc.len() > 8 {
                        names.push(format!("… {} more", scc.len() - 8));
                    }
                    report.push(
                        "NL001",
                        Severity::Error,
                        entity(n, GateId::from_index(scc[0])),
                        format!(
                            "combinational cycle of {} gate(s): {}",
                            scc.len(),
                            names.join(", ")
                        ),
                        "break the loop with a flip-flop or remove the feedback edge",
                    );
                }
            }
        }
    }
}

/// NL002 / NL003 — every net must have exactly one driver: flip-flops need
/// a connected D input (and only one), combinational gates need their
/// kind's full arity.
fn drivers(n: &Netlist, report: &mut AnalysisReport) {
    for g in n.gate_ids() {
        let kind = n.kind(g);
        match kind {
            GateKind::FlipFlop => {
                let fanin = n.fanin(g).len();
                if n.ff_input(g).is_err() && fanin == 0 {
                    report.push(
                        "NL002",
                        Severity::Error,
                        entity(n, g),
                        "flip-flop D input is undriven",
                        "connect a driver with connect_ff_input",
                    );
                } else if fanin > 1 {
                    report.push(
                        "NL003",
                        Severity::Error,
                        entity(n, g),
                        format!("flip-flop D input has {fanin} drivers"),
                        "every net needs exactly one driver; remove the extras",
                    );
                }
            }
            GateKind::Input | GateKind::Tie(_) => {}
            _ => {
                let want = kind.fanin_count().unwrap_or(0);
                let got = n.fanin(g).len();
                if got != want {
                    report.push(
                        "NL002",
                        Severity::Error,
                        entity(n, g),
                        format!(
                            "gate has {got} fanin net(s); {} requires {want}",
                            kind.cell_name()
                        ),
                        "reconnect the gate with its full input arity",
                    );
                }
            }
        }
    }
}

/// NL004 — floating nets: a non-FF gate whose output is consumed by
/// nothing is dead logic. A warning, not an error: it cannot corrupt the
/// analysis (no path runs through it), but it is almost always a
/// generator bug and it wastes simulation work. Capture flip-flops
/// legitimately drive nothing (their Q may leave the analyzed region).
fn floating(n: &Netlist, report: &mut AnalysisReport) {
    for g in n.gate_ids() {
        if n.kind(g) != GateKind::FlipFlop && n.fanout(g).is_empty() {
            report.push(
                "NL004",
                Severity::Warning,
                entity(n, g),
                "gate output drives nothing (floating net)",
                "remove the dead gate or connect its output",
            );
        }
    }
}

/// NL005 — stage-cone consistency, the invariant `pipeline.rs` maintains
/// and the stage-DTS memoization (PR 4) depends on: a combinational gate
/// of stage `s` reads only stage-`s` combinational values (sequential
/// launch points — FFs, inputs, ties — may come from any stage), and a
/// flip-flop capturing stage `s` is driven by stage-`s` logic.
fn stages(n: &Netlist, report: &mut AnalysisReport) {
    for g in n.gate_ids() {
        let kind = n.kind(g);
        if kind == GateKind::FlipFlop {
            if let Ok(d) = n.ff_input(g) {
                if is_comb(n, d) && n.stage(d) != n.stage(g) {
                    report.push(
                        "NL005",
                        Severity::Error,
                        entity(n, g),
                        format!(
                            "endpoint captures stage {} but its driver {} is stage {}",
                            n.stage(g),
                            d,
                            n.stage(d)
                        ),
                        "retag the endpoint's capture stage or the driver's stage",
                    );
                }
            }
        } else if !kind.is_endpoint() {
            for &f in n.fanin(g) {
                if is_comb(n, f) && n.stage(f) != n.stage(g) {
                    report.push(
                        "NL005",
                        Severity::Error,
                        entity(n, g),
                        format!(
                            "stage-{} gate reads combinational value of {} (stage {})",
                            n.stage(g),
                            f,
                            n.stage(f)
                        ),
                        "cross-stage values must pass through a pipeline flip-flop",
                    );
                }
            }
        }
    }
}

/// NL006 — unreachable endpoints: a flip-flop whose D cone contains no
/// sequential element or primary input is driven purely by constants; it
/// has no launch-to-capture paths and contributes nothing to any stage
/// DTS. Dead state is a warning (the estimator simply never sees it).
fn endpoint_sources(n: &Netlist, report: &mut AnalysisReport) {
    for e in n.all_endpoints() {
        let Ok(d) = n.ff_input(e) else { continue };
        // DFS through the combinational cone; visited set makes this safe
        // on cyclic (ill-formed) netlists too.
        let mut visited = vec![false; n.gate_count()];
        let mut stack = vec![d];
        let mut has_source = false;
        while let Some(g) = stack.pop() {
            if visited[g.index()] {
                continue;
            }
            visited[g.index()] = true;
            match n.kind(g) {
                GateKind::FlipFlop | GateKind::Input => {
                    has_source = true;
                    break;
                }
                GateKind::Tie(_) => {}
                _ => stack.extend_from_slice(n.fanin(g)),
            }
        }
        if !has_source {
            report.push(
                "NL006",
                Severity::Warning,
                entity(n, e),
                "endpoint cone contains no flip-flop or input (constant-driven)",
                "remove the dead state element or wire real logic into it",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terse_netlist::builder::NetlistBuilder;
    use terse_netlist::netlist::EndpointClass;
    use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};

    fn check(n: &Netlist) -> AnalysisReport {
        let mut r = AnalysisReport::new();
        analyze_netlist(n, &mut r);
        r
    }

    /// in -> and(in, ff) -> ff : fully clean.
    fn clean_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(1);
        let input = b.input("in", 0).unwrap();
        let ff = b.flip_flop("state", EndpointClass::Control, 0).unwrap();
        let and = b.gate(GateKind::And, &[input, ff], 0).unwrap();
        b.connect_ff_input(ff, and).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn clean_netlist_is_clean() {
        let r = check(&clean_netlist());
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.diagnostics().is_empty());
    }

    #[test]
    fn detects_combinational_cycle() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let g1 = b.gate(GateKind::And, &[a, a], 0).unwrap();
        let g2 = b.gate(GateKind::Or, &[g1, g1], 0).unwrap();
        b.rewire_fanin(g1, &[a, g2]).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, g2).unwrap();
        let r = check(&b.finish_unchecked());
        assert!(r.has_code("NL001"), "{}", r.render_text());
        assert!(r.has_errors());
    }

    #[test]
    fn detects_self_loop() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let g = b.gate(GateKind::And, &[a, a], 0).unwrap();
        b.rewire_fanin(g, &[a, g]).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, g).unwrap();
        let r = check(&b.finish_unchecked());
        assert!(r.has_code("NL001"), "{}", r.render_text());
    }

    #[test]
    fn detects_undriven_ff() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        let inv = b.gate(GateKind::Not, &[a], 0).unwrap();
        let cap = b.flip_flop("cap", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(cap, inv).unwrap();
        let _ = ff; // left undriven on purpose
        let r = check(&b.finish_unchecked());
        assert!(r.has_code("NL002"), "{}", r.render_text());
    }

    #[test]
    fn detects_multidriver() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let inv = b.gate(GateKind::Not, &[a], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, inv).unwrap();
        b.add_ff_driver(ff, a).unwrap();
        let r = check(&b.finish_unchecked());
        assert!(r.has_code("NL003"), "{}", r.render_text());
    }

    #[test]
    fn detects_floating_net() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let used = b.gate(GateKind::Not, &[a], 0).unwrap();
        let _dead = b.gate(GateKind::Buf, &[a], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, used).unwrap();
        let r = check(&b.finish().unwrap());
        assert!(r.has_code("NL004"), "{}", r.render_text());
        assert!(!r.has_errors(), "floating nets are warnings");
    }

    #[test]
    fn detects_stage_mismatch() {
        let mut b = NetlistBuilder::new(2);
        let a = b.input("a", 0).unwrap();
        let g0 = b.gate(GateKind::Not, &[a], 0).unwrap();
        // Stage-1 logic illegally reading stage-0 combinational output.
        let g1 = b.gate(GateKind::Buf, &[g0], 1).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 1).unwrap();
        b.connect_ff_input(ff, g1).unwrap();
        let r = check(&b.finish().unwrap());
        assert!(r.has_code("NL005"), "{}", r.render_text());
    }

    #[test]
    fn detects_constant_driven_endpoint() {
        let mut b = NetlistBuilder::new(1);
        let t = b.tie(true, 0).unwrap();
        let g = b.gate(GateKind::Buf, &[t], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, g).unwrap();
        let r = check(&b.finish().unwrap());
        assert!(r.has_code("NL006"), "{}", r.render_text());
    }

    #[test]
    fn reference_pipeline_has_no_errors() {
        // The 6-stage pipeline must pass with zero *errors*. It carries
        // exactly one known floating net (the unused carry-out of the PC+4
        // incrementer), which the pass reports as a warning.
        let p = PipelineNetlist::build(PipelineConfig::default()).unwrap();
        let r = check(p.netlist());
        assert!(!r.has_errors(), "{}", r.render_text());
        for d in r.problems() {
            assert_eq!(d.code, "NL004", "unexpected problem: {d}");
        }
    }
}
