//! # terse-analyze
//!
//! Static analysis for the TERSE workspace, in two layers:
//!
//! * **Domain-IR passes** — structural verification of the three
//!   intermediate representations the estimator consumes before a long
//!   Monte Carlo / estimation run is allowed to start:
//!   [`netlist_pass`] (combinational loops, undriven/floating nets,
//!   multi-driver conflicts, stage-cone consistency, unreachable
//!   endpoints), [`cfg_pass`] (unreachable blocks, edge/leader mismatches,
//!   fall-through consistency, missing terminators), [`slack_pass`]
//!   (interval + NaN/∞ abstract interpretation over `sta::canonical`
//!   slack RVs, bounding stage DTS and flagging degenerate forms), and
//!   [`tape_pass`] (compiled-op-tape write-before-read order, destination
//!   slot aliasing, slab-range and external-slot ownership checks for the
//!   bit-parallel kernels).
//! * **Program dataflow** — [`dataflow`], a monotone-framework fixpoint
//!   engine over the ISA CFG (reaching definitions, liveness, constant
//!   propagation, register value intervals) emitting the `DF0xx` family
//!   and exporting the per-instruction operand bounds the DTA
//!   error-immunity pre-screen consumes.
//! * **Codebase lints** — [`lint`], an offline scanner over the
//!   workspace's own Rust sources (no registry dependencies, consistent
//!   with the vendored-shim policy): panicking APIs in library crates,
//!   nondeterministic `HashMap`/`HashSet` iteration on paths feeding the
//!   index-ordered parallel merges, and wall-clock / entropy-seeded RNG in
//!   library code.
//!
//! Every pass appends structured [`Diagnostic`]s (severity, stable code,
//! entity, message, fix hint) to an [`AnalysisReport`], renderable as human
//! text or JSON. The analyzer's contract, relied on by `Framework::
//! preflight` and the differential fixtures: a **valid** artifact produces
//! *no diagnostics of severity `Warning` or above*; `Info` entries carry
//! derived facts (e.g. static stage-DTS interval bounds) and never gate.
//!
//! Diagnostic codes are stable identifiers (`NL0xx` netlist, `CF0xx` CFG,
//! `SL0xx` slack RVs, `TP0xx` compiled op tapes, `DF0xx` program
//! dataflow, `AZ0xx` codebase lints, `JS0xx` job specs and job-store
//! layouts); see DESIGN.md §14 and §19 for the full table.

// Numeric-kernel idioms used intentionally throughout this crate:
// `!(x >= 0.0)` rejects NaN along with negatives, and index loops run over
// several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod cfg_pass;
pub mod dataflow;
pub mod integrity;
pub mod job_pass;
pub mod lint;
pub mod netlist_pass;
pub mod slack_pass;
pub mod tape_pass;

pub use cfg_pass::analyze_cfg;
pub use dataflow::{
    analyze_dataflow, augmented_edges, call_return_discipline, operand_bounds, reachable_blocks,
    Interval, OperandBounds,
};
pub use integrity::{crc32, crc32_hex, frame, unframe, FrameError};
pub use job_pass::{
    analyze_job_spec, analyze_job_store, is_terminal_state, scrub_job_store, valid_transition,
    JobSpecView, JOB_STATES,
};
pub use lint::{fail_point_inventory, lint_fail_point_coverage, lint_workspace};
pub use netlist_pass::analyze_netlist;
pub use slack_pass::{analyze_slacks, SlackPassConfig};
pub use tape_pass::analyze_tape;

use std::fmt;

/// Severity of a diagnostic.
///
/// Ordering is semantic: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A derived fact worth reporting (e.g. a static DTS bound). Never
    /// gates a run and never fails the CLI.
    Info,
    /// A suspicious construct that does not invalidate the analysis
    /// (e.g. a floating net — dead logic). Fails the CLI under `--deny`.
    Warning,
    /// A structural defect that invalidates downstream analyses (e.g. a
    /// combinational cycle). Always fails the CLI; `Framework::preflight`
    /// refuses to run under `DegradationPolicy::Strict`.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured finding from a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`NL001`, `CF002`, `SL001`, `AZ003`, …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// The entity the finding is anchored to — a gate (`g12 (AN2, stage
    /// 3)`), a basic block (`B4`), a stage (`stage 2`), or a source
    /// location (`crates/core/src/framework.rs:775`).
    pub entity: String,
    /// Human-readable statement of the defect.
    pub message: String,
    /// Actionable fix hint.
    pub hint: String,
    /// Machine-readable key/value facts backing the finding (e.g. which
    /// of two cross-checked bounds was binding). Rendered as a `data`
    /// object in JSON; empty for most diagnostics.
    pub data: Vec<(String, String)>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {} (hint: {})",
            self.severity, self.code, self.entity, self.message, self.hint
        )
    }
}

/// An append-only collection of diagnostics produced by one or more passes.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report.
    pub fn new() -> Self {
        AnalysisReport::default()
    }

    /// Appends a diagnostic.
    pub fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        entity: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            entity: entity.into(),
            message: message.into(),
            hint: hint.into(),
            data: Vec::new(),
        });
    }

    /// Appends a diagnostic carrying machine-readable key/value facts
    /// (surfaced as a `data` object in the JSON rendering).
    pub fn push_with_data(
        &mut self,
        code: &'static str,
        severity: Severity,
        entity: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
        data: Vec<(String, String)>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            entity: entity.into(),
            message: message.into(),
            hint: hint.into(),
            data,
        });
    }

    /// All diagnostics, in emission order (passes emit deterministically,
    /// in entity index order).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Diagnostics of severity `Warning` or above — the findings that can
    /// gate a run. `Info` entries are derived facts, not problems.
    pub fn problems(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
    }

    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the report contains any `Error`-severity diagnostic.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is free of `Warning`-and-above diagnostics —
    /// the validity contract for oracle-generated artifacts.
    pub fn is_clean(&self) -> bool {
        self.problems().next().is_none()
    }

    /// Whether a diagnostic with the given code is present.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Merges another report's diagnostics into this one.
    pub fn absorb(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Human-readable rendering, one line per diagnostic plus a summary
    /// tail line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} diagnostic(s) total\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// JSON rendering (hand-rolled — the workspace is offline and carries
    /// no serde): an object with a `diagnostics` array and summary counts.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"entity\":{},\"message\":{},\"hint\":{}",
                json_str(d.code),
                json_str(d.severity.label()),
                json_str(&d.entity),
                json_str(&d.message),
                json_str(&d.hint)
            ));
            if !d.data.is_empty() {
                out.push_str(",\"data\":{");
                for (j, (k, v)) in d.data.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"total\":{}}}",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_counts_and_predicates() {
        let mut r = AnalysisReport::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push("SL004", Severity::Info, "stage 0", "bound", "none");
        assert!(r.is_clean(), "info entries never dirty a report");
        r.push("NL004", Severity::Warning, "g3", "floating", "remove it");
        assert!(!r.is_clean() && !r.has_errors());
        r.push("NL001", Severity::Error, "g1", "cycle", "break it");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.problems().count(), 2);
        assert!(r.has_code("NL001") && !r.has_code("NL002"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let mut r = AnalysisReport::new();
        r.push("NL001", Severity::Error, "g1", "combinational cycle", "fix");
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"NL001\""));
        assert!(j.contains("\"errors\":1"));
        let text = r.render_text();
        assert!(text.contains("error [NL001] g1"));
    }
}
