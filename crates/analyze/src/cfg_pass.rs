//! Structural verification of the CFG IR against its program.
//!
//! The error model (Algorithm 2) walks basic blocks and edge activation
//! probabilities; the marginal solver builds per-SCC linear systems over
//! the same edges. Both silently assume the `B_1 … B_m` decomposition is
//! faithful to the instruction stream: blocks tile the program, every
//! branch target is a leader, and the static edge set is exactly what each
//! block's terminator justifies. This pass re-derives those facts from the
//! program text and diffs them against the `Cfg` object, so a corrupted or
//! hand-built CFG is diagnosed before estimation starts.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | CF001 | warning  | statically unreachable block (dead code) |
//! | CF002 | error    | edge set mismatch: an edge the terminator does not justify, a missing branch/jump edge, an out-of-range target, or an inconsistent predecessor list |
//! | CF003 | error    | fall-through inconsistency: a block without a terminator missing its fall-through edge, or falling off the end of the program |
//! | CF004 | error    | partition mismatch: blocks do not tile the program contiguously |
//! | CF005 | error    | leader mismatch: a branch/jump target or post-control instruction that is not a block start |

use crate::{AnalysisReport, Severity};
use terse_isa::{BlockId, Cfg, ControlKind, Opcode, Program};

/// Runs every CFG pass, appending findings to `report`.
///
/// Emission order is deterministic: passes run in code order and iterate
/// blocks in dense id order.
pub fn analyze_cfg(program: &Program, cfg: &Cfg, report: &mut AnalysisReport) {
    partition(program, cfg, report);
    leaders(program, cfg, report);
    edges(program, cfg, report);
    reachability(program, cfg, report);
}

/// CF004 — blocks must tile the program contiguously and non-emptily.
fn partition(program: &Program, cfg: &Cfg, report: &mut AnalysisReport) {
    let n = program.len();
    let mut next = 0u32;
    for b in cfg.blocks() {
        if b.start != next || b.is_empty() {
            report.push(
                "CF004",
                Severity::Error,
                b.id.to_string(),
                format!(
                    "block covers [{}, {}) but the previous block ended at {next}",
                    b.start, b.end
                ),
                "blocks must partition the program contiguously in order",
            );
        }
        next = next.max(b.end);
    }
    if next as usize != n {
        report.push(
            "CF004",
            Severity::Error,
            "cfg".to_string(),
            format!("blocks cover {next} instruction(s) of {n}"),
            "blocks must partition the program contiguously in order",
        );
    }
}

/// CF005 — every leader the program text implies must be a block start:
/// the entry, every branch/`jal` target, and every instruction following a
/// control-flow instruction.
fn leaders(program: &Program, cfg: &Cfg, report: &mut AnalysisReport) {
    let insts = program.instructions();
    let n = insts.len();
    let starts: std::collections::BTreeSet<u32> = cfg.blocks().iter().map(|b| b.start).collect();
    let mut require = |idx: usize, why: String| {
        if idx < n && !starts.contains(&(idx as u32)) {
            report.push(
                "CF005",
                Severity::Error,
                format!("inst {idx}"),
                format!("{why}, but instruction {idx} is not a block start"),
                "re-derive the block partition from the program's leaders",
            );
        }
    };
    require(0, "the entry instruction is a leader".to_string());
    for (i, inst) in insts.iter().enumerate() {
        let kind = ControlKind::of(inst);
        if let Some(t) = kind.static_target() {
            require(t as usize, format!("instruction {i} targets a leader"));
        }
        if kind.is_control() {
            require(
                i + 1,
                format!("instruction {i} is control flow, so its successor is a leader"),
            );
        }
    }
}

/// The static successor set the terminator of `b` justifies. Both this
/// pass and `Cfg::from_program` decode the terminator through the shared
/// [`ControlKind`] classifier (including the `beq r0, r0` pseudo-jump
/// whose fall-through edge is suppressed), so the expectation cannot
/// drift from the real construction. `None` marks a block whose
/// successors are discovered dynamically (indirect jump).
fn expected_succs(program: &Program, cfg: &Cfg, b: terse_isa::BasicBlock) -> Option<Vec<BlockId>> {
    let insts = program.instructions();
    let n = insts.len();
    let last = &insts[(b.end - 1) as usize];
    let block_at = |idx: usize| -> Option<BlockId> {
        (idx < n).then(|| {
            cfg.blocks()
                .iter()
                .find(|blk| blk.range().contains(&idx))
                .map(|blk| blk.id)
        })?
    };
    let mut out: Vec<BlockId> = Vec::new();
    let mut add = |s: Option<BlockId>| {
        if let Some(s) = s {
            if !out.contains(&s) {
                out.push(s);
            }
        }
    };
    match ControlKind::of(last) {
        ControlKind::Branch {
            target,
            falls_through,
        } => {
            add(block_at(target as usize));
            if falls_through {
                add(block_at(b.end as usize));
            }
        }
        ControlKind::Jump { target } => add(block_at(target as usize)),
        ControlKind::Indirect => return None,
        ControlKind::Halt => {}
        ControlKind::FallThrough => add(block_at(b.end as usize)),
    }
    Some(out)
}

/// CF002 / CF003 — the CFG's stored edges must be exactly the ones each
/// block's terminator justifies, and the predecessor lists must be the
/// transpose of the successor lists.
fn edges(program: &Program, cfg: &Cfg, report: &mut AnalysisReport) {
    let insts = program.instructions();
    let m = cfg.len();
    for b in cfg.blocks() {
        if b.is_empty() || b.end as usize > insts.len() {
            continue; // already reported by CF004
        }
        let actual = cfg.successors(b.id);
        for &s in actual {
            if s.index() >= m {
                report.push(
                    "CF002",
                    Severity::Error,
                    b.id.to_string(),
                    format!("edge {} -> {s} targets a nonexistent block", b.id),
                    "edges must reference blocks of this CFG",
                );
            }
        }
        let last = &insts[(b.end - 1) as usize];
        let is_terminator = ControlKind::of(last).is_control();
        let Some(expected) = expected_succs(program, cfg, *b) else {
            // Indirect terminator: static successors are discovered at
            // profile time; the block must be flagged as indirect and
            // carry no static edges.
            if !cfg.indirect_blocks().contains(&b.id) {
                report.push(
                    "CF002",
                    Severity::Error,
                    b.id.to_string(),
                    "block ends in an indirect jump but is not flagged indirect".to_string(),
                    "indirect blocks get their successors from profiling; flag them",
                );
            }
            for &s in actual {
                report.push(
                    "CF002",
                    Severity::Error,
                    b.id.to_string(),
                    format!(
                        "static edge {} -> {s} from an indirect-jump terminator",
                        b.id
                    ),
                    "indirect successors are dynamic; remove the static edge",
                );
            }
            continue;
        };
        for &s in actual {
            if s.index() < m && !expected.contains(&s) {
                report.push(
                    "CF002",
                    Severity::Error,
                    b.id.to_string(),
                    format!(
                        "edge {} -> {s} is not justified by the terminator ({:?})",
                        b.id, last.opcode
                    ),
                    "remove the dangling edge or fix the terminator",
                );
            }
        }
        for &s in &expected {
            if !actual.contains(&s) {
                if is_terminator {
                    report.push(
                        "CF002",
                        Severity::Error,
                        b.id.to_string(),
                        format!(
                            "missing edge {} -> {s} required by the terminator ({:?})",
                            b.id, last.opcode
                        ),
                        "add the edge implied by the branch/jump target",
                    );
                } else {
                    report.push(
                        "CF003",
                        Severity::Error,
                        b.id.to_string(),
                        format!(
                            "block has no terminator but its fall-through edge {} -> {s} is missing",
                            b.id
                        ),
                        "a non-terminated block must fall through to the next block",
                    );
                }
            }
        }
        // A non-terminated final block runs off the end of the program.
        if !is_terminator && b.end as usize == insts.len() {
            report.push(
                "CF003",
                Severity::Error,
                b.id.to_string(),
                "final block lacks a terminator and falls off the end of the program".to_string(),
                "end the program with halt (or an unconditional jump)",
            );
        }
    }
    // Predecessor lists must be the transpose of the successor lists.
    for b in cfg.blocks() {
        for &s in cfg.successors(b.id) {
            if s.index() < m && !cfg.predecessors(s).contains(&b.id) {
                report.push(
                    "CF002",
                    Severity::Error,
                    s.to_string(),
                    format!("predecessor list of {s} is missing {}", b.id),
                    "predecessors must be the exact transpose of successors",
                );
            }
        }
        for &p in cfg.predecessors(b.id) {
            if p.index() < m && !cfg.successors(p).contains(&b.id) {
                report.push(
                    "CF002",
                    Severity::Error,
                    b.id.to_string(),
                    format!("predecessor {p} of {} has no matching successor edge", b.id),
                    "predecessors must be the exact transpose of successors",
                );
            }
        }
    }
}

/// CF001 — static reachability from the entry block. When the program
/// contains indirect jumps (function returns), every `jal` return site is
/// treated as reachable (a called function returns through the indirect
/// block), so well-formed call/return programs do not trip this pass.
fn reachability(program: &Program, cfg: &Cfg, report: &mut AnalysisReport) {
    let m = cfg.len();
    if m == 0 {
        return;
    }
    let insts = program.instructions();
    let has_indirect = !cfg.indirect_blocks().is_empty();
    let mut reachable = vec![false; m];
    let mut stack = vec![BlockId(0)];
    while let Some(b) = stack.pop() {
        if b.index() >= m || reachable[b.index()] {
            continue;
        }
        reachable[b.index()] = true;
        for &s in cfg.successors(b) {
            stack.push(s);
        }
        // Call return site: the block after a `jal` resumes when the
        // callee returns through `jr`.
        let blk = &cfg.blocks()[b.index()];
        if has_indirect
            && blk.end as usize <= insts.len()
            && !blk.is_empty()
            && insts[(blk.end - 1) as usize].opcode == Opcode::Jal
            && (blk.end as usize) < insts.len()
        {
            if let Some(next) = cfg.blocks().iter().find(|x| x.start == blk.end) {
                stack.push(next.id);
            }
        }
    }
    for b in cfg.blocks() {
        if !reachable[b.id.index()] {
            report.push(
                "CF001",
                Severity::Warning,
                b.id.to_string(),
                format!(
                    "block (instructions {}..{}) is statically unreachable",
                    b.start, b.end
                ),
                "dead code: remove it, or wire an edge if it should execute",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terse_isa::assemble;

    fn check(src: &str) -> AnalysisReport {
        let p = assemble(src).expect("test program assembles");
        let cfg = Cfg::from_program(&p);
        let mut r = AnalysisReport::new();
        analyze_cfg(&p, &cfg, &mut r);
        r
    }

    #[test]
    fn straight_line_is_clean() {
        let r = check("addi r1, r0, 1\nadd r2, r1, r1\nhalt\n");
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.diagnostics().is_empty());
    }

    #[test]
    fn loops_and_diamonds_are_clean() {
        let r = check(
            r"
                addi r1, r0, 10
            a:
                addi r1, r1, -1
                beq r1, r0, b
                bne r1, r0, a
            b:
                st r1, r0, 0
                halt
        ",
        );
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn call_return_is_clean() {
        // The return site (halt block) is only dynamically reachable
        // through the callee's `ret`; the pass must not flag it.
        let r = check(
            r"
            main:
                call fn
                halt
            fn:
                addi r1, r1, 1
                ret
        ",
        );
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn pseudo_jump_dead_code_is_flagged() {
        // `j end` is `beq r0, r0` — no fall-through, so the nop block is
        // genuinely dead code.
        let r = check(
            r"
                j end
                nop
            end:
                halt
        ",
        );
        assert!(r.has_code("CF001"), "{}", r.render_text());
        assert!(!r.has_errors(), "dead code is a warning");
    }
}
