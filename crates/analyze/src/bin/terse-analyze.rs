//! Command-line driver for the static analyzer.
//!
//! ```text
//! terse-analyze lint       [--deny] [--json] [ROOT]
//! terse-analyze pipeline   [--deny] [--json]
//! terse-analyze jobs       [--deny] [--json] [STORE]
//! terse-analyze scrub      [--deny] [--json] [STORE]
//! terse-analyze failpoints [ROOT]
//! ```
//!
//! * `lint` runs the codebase lints (AZ001–AZ005) over every workspace
//!   crate's `src/` tree under `ROOT` (default: current directory).
//! * `pipeline` builds the reference pipeline netlist and runs the
//!   netlist structural passes, the slack abstract-interpretation pass
//!   over each stage's endpoint slacks at the deterministic minimum
//!   period (cross-checked against the arrival-certificate interval),
//!   and the CFG + dataflow passes (DF001–DF005) over an embedded
//!   reference program.
//! * `jobs` runs the job-store layout passes (JS005–JS008) over a
//!   `terse-serve` store root (default: current directory).
//! * `scrub` runs the layout passes plus the artifact integrity passes
//!   (JS009–JS012): every checkpoint frame is CRC-verified, every report
//!   digest re-checked, quarantine bundles audited for completeness.
//! * `failpoints` lists every fail point registered in the workspace
//!   sources with its fault-injection-test reference count (the data
//!   behind the AZ004 coverage lint).
//!
//! Exit status: `0` clean, `1` findings at the gating severity
//! (errors by default; warnings too with `--deny`), `2` usage or
//! environment error. `--json` prints the structured report instead of
//! text.

use std::path::PathBuf;
use std::process::ExitCode;

use terse_analyze::{
    analyze_cfg, analyze_dataflow, analyze_netlist, analyze_slacks, analyze_tape, AnalysisReport,
    SlackPassConfig,
};
use terse_isa::{assemble, Cfg};
use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};
use terse_netlist::tape::CompiledTape;
use terse_sta::analysis::{Sta, StatisticalSta};
use terse_sta::{DelayLibrary, VariationConfig, VariationModel};

const USAGE: &str = "\
usage: terse-analyze <command> [options]

commands:
  lint [--deny] [--json] [ROOT]    lint workspace Rust sources (AZ001-AZ005)
  pipeline [--deny] [--json]       analyze the reference pipeline IRs
  jobs [--deny] [--json] [STORE]   analyze a terse-serve job store (JS005-JS008)
  scrub [--deny] [--json] [STORE]  jobs passes + artifact integrity (JS009-JS012)
  failpoints [ROOT]                list registered fail points + test coverage

options:
  --deny   also fail on warnings (deny-by-default CI gate)
  --json   print the report as JSON
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let deny = args.iter().any(|a| a == "--deny");
    let json = args.iter().any(|a| a == "--json");
    let positional: Vec<&String> = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();

    let mut report = AnalysisReport::new();
    let outcome = match command.as_str() {
        "lint" => run_lint(&positional, &mut report),
        "pipeline" => run_pipeline(&mut report),
        "jobs" => run_jobs(&positional, &mut report),
        "scrub" => run_scrub(&positional, &mut report),
        "failpoints" => return run_failpoints(&positional),
        _ => {
            eprint!("unknown command `{command}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Err(msg) = outcome {
        eprintln!("terse-analyze: {msg}");
        return ExitCode::from(2);
    }

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    let gate = report.error_count() > 0 || (deny && report.warning_count() > 0);
    if gate {
        eprintln!(
            "terse-analyze: {} error(s), {} warning(s)",
            report.error_count(),
            report.warning_count()
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_lint(positional: &[&String], report: &mut AnalysisReport) -> Result<(), String> {
    let root: PathBuf = positional
        .first()
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    if !root.join("crates").is_dir() {
        return Err(format!(
            "`{}` does not contain a crates/ directory (pass the workspace root)",
            root.display()
        ));
    }
    let scanned = terse_analyze::lint::lint_workspace(&root, report)
        .map_err(|e| format!("workspace scan failed: {e}"))?;
    eprintln!("terse-analyze: linted {scanned} file(s)");
    Ok(())
}

fn run_jobs(positional: &[&String], report: &mut AnalysisReport) -> Result<(), String> {
    let root: PathBuf = positional
        .first()
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let n = terse_analyze::analyze_job_store(&root, report)
        .map_err(|e| format!("store scan failed: {e}"))?;
    eprintln!("terse-analyze: inspected {n} job(s)");
    Ok(())
}

fn run_scrub(positional: &[&String], report: &mut AnalysisReport) -> Result<(), String> {
    let root: PathBuf = positional
        .first()
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let n = terse_analyze::scrub_job_store(&root, report)
        .map_err(|e| format!("store scrub failed: {e}"))?;
    eprintln!("terse-analyze: scrubbed {n} job(s)");
    Ok(())
}

/// Prints the fail-point inventory as a table and exits directly: unlike
/// the pass commands this is a listing, not a gate, so an uncovered
/// point is reported by `lint` (AZ004), not here.
fn run_failpoints(positional: &[&String]) -> ExitCode {
    let root: PathBuf = positional
        .first()
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    if !root.join("crates").is_dir() {
        eprintln!(
            "terse-analyze: `{}` does not contain a crates/ directory (pass the workspace root)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match terse_analyze::fail_point_inventory(&root) {
        Ok(inventory) => {
            for (name, refs) in &inventory {
                println!("{name}\t{refs} test file(s)");
            }
            eprintln!("terse-analyze: {} fail point(s)", inventory.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("terse-analyze: fail-point scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_pipeline(report: &mut AnalysisReport) -> Result<(), String> {
    let p = PipelineNetlist::build(PipelineConfig::default())
        .map_err(|e| format!("pipeline build failed: {e}"))?;
    let netlist = p.netlist();
    analyze_netlist(netlist, report);
    analyze_tape(&CompiledTape::compile(netlist), report);

    let lib = DelayLibrary::normalized_45nm();
    let var_cfg = VariationConfig::default();
    let expect_variance = var_cfg.sigma_rel > 0.0;
    let model = VariationModel::new(netlist, &lib, var_cfg)
        .map_err(|e| format!("variation model failed: {e}"))?;
    let ssta = StatisticalSta::new(netlist, &lib, &model);
    let t_clk = Sta::new(netlist, &lib).min_period();
    let slack_cfg = SlackPassConfig {
        expected_var_count: Some(model.var_count()),
        expect_variance,
        ..Default::default()
    };
    let sta = Sta::new(netlist, &lib);
    for s in 0..netlist.stage_count() {
        let endpoints = netlist
            .endpoints(s)
            .map_err(|e| format!("stage {s} endpoints failed: {e}"))?;
        let mut rvs = Vec::with_capacity(endpoints.len());
        // Independent SL004 cross-check input: deterministic arrivals
        // plus the `sd ≤ σ_rel · arrival` certificate inequality.
        let (mut ilo, mut ihi) = (f64::INFINITY, f64::INFINITY);
        for &e in endpoints {
            let rv = ssta
                .endpoint_slack(e, t_clk)
                .map_err(|err| format!("slack of {e} failed: {err}"))?;
            rvs.push(rv);
            let slack = sta
                .endpoint_slack(e, t_clk)
                .map_err(|err| format!("det slack of {e} failed: {err}"))?;
            let arr = sta
                .endpoint_arrival(e)
                .map_err(|err| format!("arrival of {e} failed: {err}"))?;
            let w = slack_cfg.sigma_bound * VariationConfig::default().sigma_rel * arr.max(0.0);
            ilo = ilo.min(slack - w);
            ihi = ihi.min(slack + w);
        }
        let stage_cfg = SlackPassConfig {
            interval_bound: ilo.is_finite().then_some((ilo, ihi)),
            ..slack_cfg.clone()
        };
        analyze_slacks(&rvs, &stage_cfg, &format!("stage {s}"), report);
    }

    // Dataflow passes over an embedded reference program exercising every
    // interesting CFG shape: a loop, a taken/fall-through branch, and a
    // call/return pair.
    let prog = assemble(REFERENCE_PROGRAM).map_err(|e| format!("reference program: {e}"))?;
    let cfg = Cfg::from_program(&prog);
    analyze_cfg(&prog, &cfg, report);
    analyze_dataflow(&prog, &cfg, report);
    Ok(())
}

/// The reference program the `pipeline` command's dataflow passes run
/// over: all writes are read, all reads are initialized, branch operands
/// are data-dependent — clean under DF001–DF005 by construction.
const REFERENCE_PROGRAM: &str = "\
        addi r1, r0, 8
        addi r2, r0, 0
        jal  sum
        addi r4, r2, 1
        st   r4, r0, 0
        halt
sum:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, sum
        jr   r31
";
