//! Custom codebase lints over the workspace's own Rust sources.
//!
//! The build environment is fully offline (no registry, hence no `syn`),
//! so the driver is a hand-rolled scanner: a whole-file masking pass
//! blanks string literals and comments while preserving line structure,
//! and line-level pattern rules run over the masked text with brace-depth
//! tracking for `#[cfg(test)]` regions and `#[allow(...)]` scopes. That
//! is deliberately cruder than a type-aware lint — the rules are written
//! so that false *negatives* are possible but false positives are cheap
//! to silence with an audited marker comment:
//!
//! ```text
//! // terse-analyze: allow(AZ002): iteration order is erased by the sort below.
//! ```
//!
//! A marker on a line (or the line above) suppresses that code there.
//! Clippy's `#[allow(clippy::unwrap_used)]` / `expect_used` attributes are
//! honoured for the panic rule, so the PR 3 audit trail keeps working.
//!
//! Rules (all `Error` severity — the CI job is a deny gate):
//!
//! | code  | meaning | scope |
//! |-------|---------|-------|
//! | AZ001 | panicking API (`.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unreachable!`, `unimplemented!`) | library crates (not `oracle`/`bench`) |
//! | AZ002 | iteration over a `HashMap`/`HashSet` (nondeterministic order on paths feeding the index-ordered parallel merges) | all crates |
//! | AZ003 | wall-clock or entropy-seeded randomness (`Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`, …) | library crates (not `bench`) |
//! | AZ004 | registered fail point with no fault-injection test referencing it (see [`lint_fail_point_coverage`]) | all crates |
//! | AZ005 | lossy `as` cast to a ≤32-bit integer type with no bounding evidence on the line (mask, `min`/`clamp`, bit-count, `wrapping_*`, index-newtype round-trip) | hot value-path crates (`netlist`/`dta`/`sim`) |

use crate::{AnalysisReport, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// AZ001 — forbid panicking APIs.
    pub panic: bool,
    /// AZ002 — forbid hash-order iteration.
    pub hash_iter: bool,
    /// AZ003 — forbid wall-clock / entropy randomness.
    pub entropy: bool,
    /// AZ005 — forbid unproven lossy `as` integer casts.
    pub cast: bool,
}

impl RuleSet {
    /// Every rule on.
    pub fn all() -> Self {
        RuleSet {
            panic: true,
            hash_iter: true,
            entropy: true,
            cast: true,
        }
    }

    /// The rule set for a workspace crate, by crate directory name.
    /// `oracle` (test-fixture generators, allowed to assert) and `bench`
    /// (measures wall-clock by design) get reduced sets, mirroring the
    /// clippy no-panic gate's crate list. The cast rule covers only the
    /// hot value-path crates, where a silently truncated index or
    /// reinterpreted immediate corrupts λ rather than a report.
    pub fn for_crate(crate_dir: &str) -> Self {
        RuleSet {
            panic: !matches!(crate_dir, "oracle" | "bench"),
            hash_iter: true,
            entropy: crate_dir != "bench",
            cast: matches!(crate_dir, "netlist" | "dta" | "sim"),
        }
    }
}

/// Masks string literals, char literals and comments out of Rust source,
/// preserving byte positions of everything structural (newlines, braces,
/// punctuation). The masked text is what the pattern rules scan, so a
/// `.unwrap()` inside a doc comment or a format string never matches.
pub fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0usize;
    let n = b.len();
    let blank = |out: &mut Vec<u8>, from: usize, to: usize, b: &[u8]| {
        for &c in &b[from..to] {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < n {
        let c = b[i];
        match c {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                // Line comment (incl. doc comments): blank to end of line.
                let end = memchr_newline(b, i);
                blank(&mut out, i, end, b);
                i = end;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j, b);
                i = j;
            }
            b'"' => {
                // Ordinary string literal with escapes.
                out.push(b'"');
                let mut j = i + 1;
                while j < n {
                    if b[j] == b'\\' && j + 1 < n {
                        // A `\<newline>` continuation must keep its
                        // newline or every later line number shifts.
                        out.push(b' ');
                        out.push(if b[j + 1] == b'\n' { b'\n' } else { b' ' });
                        j += 2;
                    } else if b[j] == b'"' {
                        break;
                    } else {
                        out.push(if b[j] == b'\n' { b'\n' } else { b' ' });
                        j += 1;
                    }
                }
                if j < n {
                    out.push(b'"');
                    j += 1;
                }
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // Raw (byte) string: r"…", r#"…"#, br##"…"##.
                let mut j = i + 1;
                if b[j] == b'r' {
                    j += 1; // the `br` case
                }
                let mut hashes = 0usize;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // b[j] is the opening quote.
                let mut k = j + 1;
                while k < n {
                    if b[k] == b'"'
                        && b[k + 1..].len() >= hashes
                        && b[k + 1..k + 1 + hashes].iter().all(|&h| h == b'#')
                    {
                        k += 1 + hashes;
                        break;
                    }
                    k += 1;
                }
                blank(&mut out, i, k.min(n), b);
                i = k.min(n);
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal closes within a
                // few bytes; a lifetime has no closing quote.
                if let Some(end) = char_literal_end(b, i) {
                    blank(&mut out, i, end, b);
                    i = end;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn memchr_newline(b: &[u8], from: usize) -> usize {
    b[from..]
        .iter()
        .position(|&c| c == b'\n')
        .map_or(b.len(), |p| from + p)
}

/// Whether position `i` starts a raw string literal (`r"`, `r#`, `br"`,
/// `br#`) rather than an identifier like `radius` or a plain `b"…"`
/// (handled by the `"` arm via its prefix byte being pushed as code).
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // Must not be preceded by an identifier character (`for r in …`,
    // `attr` etc. are identifiers containing r).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
    }
    if b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// If `i` (at a `'`) opens a char literal, its past-the-end offset.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 2 < n && b[i + 1] == b'\\' {
        // Escaped char: find the closing quote within a small window
        // (\n, \', \u{1F600}).
        let mut j = i + 2;
        let limit = (i + 12).min(n);
        while j < limit {
            if b[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    // Unescaped char literal: `'x'` (possibly multi-byte UTF-8).
    let mut j = i + 1;
    let mut seen = 0usize;
    while j < n && seen < 5 {
        if b[j] == b'\'' {
            return (seen > 0).then_some(j + 1);
        }
        // Count a UTF-8 scalar as one.
        if b[j] & 0xC0 != 0x80 {
            seen += 1;
        }
        j += 1;
    }
    None
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type in one
/// masked source file (fields, lets, params). The union across the
/// workspace forms the AZ002 identifier table.
pub fn collect_hash_names(masked: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in masked.lines() {
        // `name: HashMap<…>` / `name: &HashSet<…>` (field, param, let).
        for ty in ["HashMap<", "HashSet<"] {
            let mut from = 0usize;
            while let Some(p) = line[from..].find(ty) {
                let abs = from + p;
                if let Some(name) = ident_before_decl(line, abs) {
                    names.insert(name);
                }
                from = abs + ty.len();
            }
        }
        // `let [mut] name = HashMap::new()` / `with_capacity` /
        // `…collect::<HashMap…>()`.
        let ctor = [
            "HashMap::",
            "HashSet::",
            "collect::<HashMap",
            "collect::<HashSet",
        ]
        .iter()
        .any(|p| line.contains(p));
        if ctor {
            if let Some(name) = let_binding_name(line) {
                names.insert(name);
            }
        }
    }
    names
}

/// The identifier bound by `let [mut] NAME = …` on this line, if any.
fn let_binding_name(line: &str) -> Option<String> {
    let mut from = 0usize;
    let let_pos = loop {
        let p = line[from..].find("let ")?;
        let abs = from + p;
        let bounded = abs == 0 || {
            let prev = line.as_bytes()[abs - 1];
            !prev.is_ascii_alphanumeric() && prev != b'_'
        };
        if bounded {
            break abs;
        }
        from = abs + 4;
    };
    let rest = line[let_pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").map_or(rest, str::trim_start);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then_some(name)
}

/// For a `…NAME: HashMap<` declaration, the identifier before the colon.
fn ident_before_decl(line: &str, type_pos: usize) -> Option<String> {
    let head = &line[..type_pos];
    let head = head.trim_end();
    // Strip reference/mut sigils between the colon and the type.
    let head = head
        .trim_end_matches("&mut")
        .trim_end_matches('&')
        .trim_end();
    let head = head.strip_suffix(':')?;
    let head = head.trim_end();
    let name: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit())).then_some(name)
}

/// The identifier that is the receiver of a method call ending at byte
/// `dot` (the position of the `.`): the last path segment, e.g.
/// `prof.edge_counts` → `edge_counts`.
fn receiver_ident(line: &str, dot: usize) -> Option<String> {
    let head = &line[..dot];
    let name: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty()).then_some(name)
}

const PANIC_MACROS: [&str; 4] = ["panic!(", "unreachable!(", "todo!(", "unimplemented!("];
const HASH_ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];
const ENTROPY_PATTERNS: [&str; 6] = [
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "getrandom",
];
/// Cast targets AZ005 treats as narrowing: an `as` cast into one of
/// these from `usize`/`u64` drops bits, and from the opposite-signedness
/// type silently reinterprets the sign bit.
const NARROW_CAST_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
/// Line-local evidence that a cast operand is already bounded (or that
/// the cast is a lossless round-trip), suppressing AZ005: explicit
/// masking, clamping, bit-counting (results ≤ 64), `wrapping_*` modular
/// intent, and the u32-backed index newtypes' `.index()` accessor.
const BOUNDED_CAST_EVIDENCE: [&str; 9] = [
    ".min(",
    ".clamp(",
    "wrapping_",
    "count_ones()",
    "leading_zeros()",
    "trailing_zeros()",
    "& 0x",
    "& 31",
    ".index() as",
];

/// Lints one file's source, appending findings to `report`. `label` is
/// the path shown in diagnostics; `hash_names` is the workspace-wide
/// AZ002 identifier table (from [`collect_hash_names`]).
pub fn lint_file(
    label: &str,
    source: &str,
    rules: RuleSet,
    hash_names: &BTreeSet<String>,
    report: &mut AnalysisReport,
) {
    let masked = mask_source(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();

    // Marker table: `// terse-analyze: allow(AZxxx)` on line i covers
    // lines i and i+1.
    let marker_on = |lineno: usize, code: &str| -> bool {
        let covers = |l: usize| {
            raw_lines
                .get(l)
                .is_some_and(|raw| raw.contains("terse-analyze: allow(") && raw.contains(code))
        };
        covers(lineno) || (lineno > 0 && covers(lineno - 1))
    };

    let mut depth: i64 = 0;
    // `#[cfg(test)]` item skipping.
    let mut cfg_test_pending = false;
    let mut test_skip_floor: Option<i64> = None;
    // `#[allow(clippy::unwrap_used/expect_used)]` scopes for AZ001.
    let mut allow_panic_floor: Option<i64> = None;
    let mut allow_panic_entered = false;
    let mut file_wide_allow_panic = false;

    for (lineno, mline) in masked_lines.iter().enumerate() {
        let opens = mline.bytes().filter(|&c| c == b'{').count() as i64;
        let closes = mline.bytes().filter(|&c| c == b'}').count() as i64;
        let depth_before = depth;
        depth += opens - closes;

        // Crate-level allow (vendored-shim idiom).
        if mline.contains("#![allow(")
            && (mline.contains("unwrap_used") || mline.contains("expect_used"))
        {
            file_wide_allow_panic = true;
        }

        // Leave a skipped test region once depth returns to its floor.
        if let Some(floor) = test_skip_floor {
            if depth <= floor {
                test_skip_floor = None;
            }
            continue;
        }
        if cfg_test_pending {
            if opens > 0 {
                cfg_test_pending = false;
                if depth > depth_before {
                    // Item body opened on this line; skip until it closes.
                    test_skip_floor = Some(depth_before);
                }
                continue;
            } else if mline.contains(';') {
                // Attribute on a braceless item (`use`, `type`).
                cfg_test_pending = false;
            } else if mline.trim().is_empty() || mline.trim_start().starts_with('#') {
                // Blank line or further attributes between the cfg and
                // the item: keep waiting.
            } else if !mline.trim().is_empty() {
                // Item header without `{` yet (multi-line signature):
                // keep waiting for the body.
            }
        }
        if mline.contains("#[cfg(test)]") {
            cfg_test_pending = true;
            continue;
        }

        // AZ001 allow-attribute scope tracking.
        if let Some(floor) = allow_panic_floor {
            if allow_panic_entered && depth <= floor {
                allow_panic_floor = None;
                allow_panic_entered = false;
            } else if !allow_panic_entered && depth > floor {
                allow_panic_entered = true;
                if depth <= floor {
                    allow_panic_floor = None;
                    allow_panic_entered = false;
                }
            }
        }
        if mline.contains("#[allow(")
            && (mline.contains("unwrap_used") || mline.contains("expect_used"))
        {
            allow_panic_floor = Some(depth_before);
            allow_panic_entered = depth > depth_before;
        }

        let entity = format!("{label}:{}", lineno + 1);

        // --- AZ001: panicking APIs -----------------------------------
        if rules.panic
            && !file_wide_allow_panic
            && allow_panic_floor.is_none()
            && !marker_on(lineno, "AZ001")
        {
            let mut hit: Option<String> = None;
            if mline.contains(".unwrap()") {
                hit = Some(".unwrap()".to_string());
            }
            for m in PANIC_MACROS {
                if mline.contains(m) {
                    hit = Some(m.to_string());
                }
            }
            let mut from = 0usize;
            while let Some(p) = mline[from..].find(".expect(") {
                let abs = from + p;
                let after = mline[abs + ".expect(".len()..].trim_start();
                // `.expect(|x| …)` is `DiscreteRv::expect` (an expectation
                // functional), not `Option::expect`.
                if !after.starts_with('|') {
                    hit = Some(".expect(…)".to_string());
                }
                from = abs + ".expect(".len();
            }
            if let Some(what) = hit {
                report.push(
                    "AZ001",
                    Severity::Error,
                    entity.clone(),
                    format!("panicking API `{what}` in library code"),
                    "return a typed error, or add #[allow(clippy::…_used)] \
                     with an invariant comment",
                );
            }
        }

        // --- AZ002: hash-order iteration -----------------------------
        if rules.hash_iter && !marker_on(lineno, "AZ002") {
            let mut flagged: BTreeSet<String> = BTreeSet::new();
            for m in HASH_ITER_METHODS {
                let mut from = 0usize;
                while let Some(p) = mline[from..].find(m) {
                    let abs = from + p;
                    if let Some(name) = receiver_ident(mline, abs) {
                        if hash_names.contains(&name) {
                            flagged.insert(format!("{name}{m}"));
                        }
                    }
                    from = abs + m.len();
                }
            }
            // `for pat in [&[mut]] path.to.NAME {`
            if let Some(for_pos) = find_for_keyword(mline) {
                if let Some(in_pos) = mline[for_pos..].find(" in ") {
                    let expr_start = for_pos + in_pos + 4;
                    let expr_end = mline[expr_start..]
                        .find('{')
                        .map_or(mline.len(), |p| expr_start + p);
                    let expr = mline[expr_start..expr_end].trim();
                    let expr = expr
                        .strip_prefix("&mut ")
                        .or_else(|| expr.strip_prefix('&'))
                        .unwrap_or(expr);
                    // Ranges (`0..n`) and calls yield fresh iterators, not
                    // hash-table iteration over the named binding.
                    if !expr.contains('(') && !expr.contains("..") {
                        let last = expr.rsplit('.').next().unwrap_or(expr).trim();
                        if hash_names.contains(last) {
                            flagged.insert(format!("for … in {expr}"));
                        }
                    }
                }
            }
            for what in flagged {
                report.push(
                    "AZ002",
                    Severity::Error,
                    entity.clone(),
                    format!(
                        "iteration over a hash container (`{what}`) has nondeterministic order"
                    ),
                    "sort the items (or use an index-ordered structure); if order \
                     provably cannot leak, add `// terse-analyze: allow(AZ002): why`",
                );
            }
        }

        // --- AZ003: wall-clock / entropy -----------------------------
        if rules.entropy && !marker_on(lineno, "AZ003") {
            for m in ENTROPY_PATTERNS {
                if mline.contains(m) {
                    report.push(
                        "AZ003",
                        Severity::Error,
                        entity.clone(),
                        format!("`{m}` in library code breaks run-to-run determinism"),
                        "thread a seed/config through instead; if the value never \
                         affects results, add `// terse-analyze: allow(AZ003): why`",
                    );
                }
            }
        }

        // --- AZ005: lossy integer casts ------------------------------
        if rules.cast
            && !marker_on(lineno, "AZ005")
            && !BOUNDED_CAST_EVIDENCE.iter().any(|p| mline.contains(p))
        {
            let mut flagged: BTreeSet<String> = BTreeSet::new();
            let mut from = 0usize;
            while let Some(p) = mline[from..].find(" as ") {
                let abs = from + p;
                from = abs + 4;
                let rest = &mline[abs + 4..];
                let ty: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                // Word-bound the type name so `u32x4` or `u8_tag` never match.
                if !rest[ty.len()..].starts_with('_') && NARROW_CAST_TYPES.contains(&ty.as_str()) {
                    flagged.insert(ty);
                }
            }
            for ty in flagged {
                report.push(
                    "AZ005",
                    Severity::Error,
                    entity.clone(),
                    format!("`as {ty}` can silently truncate or reinterpret on the hot value path"),
                    "use cast_signed()/cast_unsigned() for two's-complement \
                     reinterpretation, bound the operand on the same line \
                     (mask/min/clamp), or add `// terse-analyze: allow(AZ005): why`",
                );
            }
        }
    }
}

/// Start offset of a `for` keyword on the line (word-bounded), if any.
fn find_for_keyword(line: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(p) = line[from..].find("for ") {
        let abs = from + p;
        let bounded = abs == 0
            || !line.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && line.as_bytes()[abs - 1] != b'_';
        if bounded {
            return Some(abs);
        }
        from = abs + 4;
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut children: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    children.sort();
    for p in children {
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Extracts fail-point names declared in one file's **raw** source.
///
/// Declarations are the invocation sites themselves — a macro call or an
/// `eval` call whose first argument is a string literal. The name lives
/// inside that literal, so this scan runs on raw text, not the masked
/// text the other rules use. A candidate only counts when it looks like
/// a registered point: it contains `::` and is made of lowercase
/// identifier characters and colons. Test-side `cfg("…", "…")`
/// configuration calls are deliberately not scanned — configuring a
/// point in a test is a *reference*, not a declaration.
fn scan_fail_point_names(raw: &str, out: &mut BTreeSet<String>) {
    for marker in ["fail_point!(", "eval("] {
        let mut from = 0usize;
        while let Some(p) = raw[from..].find(marker) {
            let abs = from + p;
            from = abs + marker.len();
            // Word-bound the marker so e.g. `reeval(` does not match.
            if abs > 0 {
                let before = raw.as_bytes()[abs - 1];
                if before.is_ascii_alphanumeric() || before == b'_' {
                    continue;
                }
            }
            let rest = raw[from..].trim_start();
            let Some(body) = rest.strip_prefix('"') else {
                continue;
            };
            let Some(end) = body.find('"') else { continue };
            let name = &body[..end];
            let plausible = name.contains("::")
                && !name.is_empty()
                && name.bytes().all(|c| {
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_' || c == b':'
                });
            if plausible {
                out.insert(name.to_owned());
            }
        }
    }
}

/// Builds the workspace fail-point inventory: every fail-point name
/// declared under `crates/*/src`, mapped to the number of test files
/// (under `<root>/tests` and `crates/*/tests`) that mention it.
///
/// This is the shared backend for the AZ004 coverage lint and the
/// `terse-analyze failpoints` listing command.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn fail_point_inventory(root: &Path) -> io::Result<BTreeMap<String, usize>> {
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut names = BTreeSet::new();
    let mut test_paths: Vec<PathBuf> = Vec::new();
    let workspace_tests = root.join("tests");
    if workspace_tests.is_dir() {
        rust_files(&workspace_tests, &mut test_paths)?;
    }
    for dir in &crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            let mut paths = Vec::new();
            rust_files(&src, &mut paths)?;
            for p in paths {
                scan_fail_point_names(&fs::read_to_string(&p)?, &mut names);
            }
        }
        let tests = dir.join("tests");
        if tests.is_dir() {
            rust_files(&tests, &mut test_paths)?;
        }
    }

    let mut test_texts = Vec::with_capacity(test_paths.len());
    for p in &test_paths {
        test_texts.push(fs::read_to_string(p)?);
    }
    let mut inventory = BTreeMap::new();
    // terse-analyze: allow(AZ002): a BTreeSet iterates in sorted order.
    for name in names {
        let refs = test_texts
            .iter()
            .filter(|t| t.contains(name.as_str()))
            .count();
        inventory.insert(name, refs);
    }
    Ok(inventory)
}

/// AZ004 — every registered fail point must be exercised by at least one
/// fault-injection test. An injectable fault nobody injects is a
/// recovery path that has never run; this keeps the failure schedule
/// space and the test suite in lockstep. Returns the number of fail
/// points inspected.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_fail_point_coverage(root: &Path, report: &mut AnalysisReport) -> io::Result<usize> {
    let inventory = fail_point_inventory(root)?;
    let n = inventory.len();
    for (name, refs) in &inventory {
        if *refs == 0 {
            report.push(
                "AZ004",
                Severity::Error,
                name.clone(),
                "fail point is never referenced by a fault-injection test",
                "add a test under tests/ or crates/*/tests that configures \
                 this point and asserts the recovery behaviour",
            );
        }
    }
    Ok(n)
}

/// Lints every workspace crate's `src/` tree under `root` (the directory
/// containing `crates/`). Returns the number of files scanned.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_workspace(root: &Path, report: &mut AnalysisReport) -> io::Result<usize> {
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    // Phase 1: the workspace-wide hash-identifier table.
    let mut files: Vec<(PathBuf, String, RuleSet)> = Vec::new();
    let mut hash_names = BTreeSet::new();
    for dir in &crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        rust_files(&src, &mut paths)?;
        let rules = RuleSet::for_crate(&crate_name);
        for p in paths {
            let text = fs::read_to_string(&p)?;
            hash_names.extend(collect_hash_names(&mask_source(&text)));
            files.push((p, text, rules));
        }
    }

    // Phase 2: the rules.
    let count = files.len();
    for (path, text, rules) in files {
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        lint_file(&label, &text, rules, &hash_names, report);
    }

    // Phase 3: cross-file fail-point coverage (AZ004).
    lint_fail_point_coverage(root, report)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str, rules: RuleSet) -> AnalysisReport {
        let mut r = AnalysisReport::new();
        let names = collect_hash_names(&mask_source(src));
        lint_file("test.rs", src, rules, &names, &mut r);
        r
    }

    #[test]
    fn fail_point_scanner_extracts_plausible_names() {
        // Markers are assembled at runtime so this file's own raw source
        // never declares the demo points to the workspace-wide scan.
        let fp = ["fail_point", "!("].concat();
        let ev = ["ev", "al("].concat();
        let src = format!(
            "{fp}\"demo::alpha\", |_| Err(x));\n\
             if let Some(p) = failpoints::{ev}\"demo::beta\") {{}}\n\
             failpoints::cfg(\"demo::gamma\", \"off\");\n\
             reeval(\"demo::delta\");\n\
             {fp}\"Not A Point\");\n"
        );
        let mut names = BTreeSet::new();
        scan_fail_point_names(&src, &mut names);
        assert!(names.contains("demo::alpha"), "{names:?}");
        assert!(names.contains("demo::beta"), "{names:?}");
        assert!(
            !names.contains("demo::gamma"),
            "cfg is a reference, not a declaration"
        );
        assert!(
            !names.contains("demo::delta"),
            "marker must be word-bounded"
        );
        assert_eq!(names.len(), 2, "{names:?}");
    }

    #[test]
    fn fail_point_inventory_counts_test_references() {
        let mut root = std::env::temp_dir();
        root.push(format!("terse_az004_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let src_dir = root.join("crates/demo/src");
        let test_dir = root.join("tests");
        fs::create_dir_all(&src_dir).unwrap();
        fs::create_dir_all(&test_dir).unwrap();
        let fp = ["fail_point", "!("].concat();
        fs::write(
            src_dir.join("lib.rs"),
            format!("{fp}\"demo::covered\", |_| ());\n{fp}\"demo::orphan\", |_| ());\n"),
        )
        .unwrap();
        fs::write(
            test_dir.join("faults.rs"),
            "fn t() { failpoints::cfg(\"demo::covered\", \"return\"); }\n",
        )
        .unwrap();

        let inv = fail_point_inventory(&root).unwrap();
        assert_eq!(inv.get("demo::covered"), Some(&1));
        assert_eq!(inv.get("demo::orphan"), Some(&0));

        let mut r = AnalysisReport::new();
        let n = lint_fail_point_coverage(&root, &mut r).unwrap();
        assert_eq!(n, 2);
        assert!(r.has_code("AZ004"));
        assert_eq!(r.error_count(), 1, "only the orphan point is flagged");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn masking_strings_and_comments() {
        let src = "let a = \"x.unwrap()\"; // b.unwrap()\nlet c = 1; /* d.unwrap() */";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"), "{m}");
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_raw_strings_and_chars() {
        let src = "let a = r#\"x.unwrap()\"#;\nlet b = 'x';\nlet c: &'static str = \"\";";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"), "{m}");
        assert!(m.contains("&'static str"), "lifetimes survive: {m}");
    }

    #[test]
    fn flags_unwrap_and_expect() {
        let r = lint_src("fn f() { x.unwrap(); }", RuleSet::all());
        assert!(r.has_code("AZ001"));
        let r = lint_src("fn f() { x.expect(\"msg\"); }", RuleSet::all());
        assert!(r.has_code("AZ001"));
        let r = lint_src("fn f() { x.unwrap_or(0); }", RuleSet::all());
        assert!(!r.has_code("AZ001"), "unwrap_or is fine");
    }

    #[test]
    fn expectation_functional_is_not_flagged() {
        let r = lint_src("fn f() { let m = d.expect(|x| x * x); }", RuleSet::all());
        assert!(!r.has_code("AZ001"), "{}", r.render_text());
    }

    #[test]
    fn allow_attribute_suppresses_panic_rule() {
        let src = "\
// Invariant: cannot fail.
#[allow(clippy::expect_used)]
fn f() {
    x.expect(\"cannot fail\");
}
fn g() {
    y.expect(\"boom\");
}
";
        let r = lint_src(src, RuleSet::all());
        let hits: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "AZ001")
            .collect();
        assert_eq!(hits.len(), 1, "{}", r.render_text());
        assert!(hits[0].entity.ends_with(":7"), "{}", hits[0].entity);
    }

    #[test]
    fn cfg_test_region_is_skipped() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn t() {
        x.unwrap();
    }
}
fn g() { y.unwrap(); }
";
        let r = lint_src(src, RuleSet::all());
        let hits: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "AZ001")
            .collect();
        assert_eq!(hits.len(), 1, "{}", r.render_text());
        assert!(hits[0].entity.ends_with(":8"), "{}", hits[0].entity);
    }

    #[test]
    fn hash_iteration_is_flagged_and_marker_suppresses() {
        let src = "\
struct S { edge_counts: HashMap<u32, u64> }
fn f(s: &S) {
    for (k, v) in &s.edge_counts {
    }
    let keys: Vec<_> = s.edge_counts.keys().collect();
    // terse-analyze: allow(AZ002): sorted immediately below.
    let mut ks: Vec<_> = s.edge_counts.keys().collect();
}
";
        let r = lint_src(src, RuleSet::all());
        let hits: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "AZ002")
            .collect();
        assert_eq!(hits.len(), 2, "{}", r.render_text());
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let src = "fn f(v: &Vec<u32>) { for x in v.iter() {} }";
        let r = lint_src(src, RuleSet::all());
        assert!(!r.has_code("AZ002"), "{}", r.render_text());
    }

    #[test]
    fn entropy_is_flagged_per_ruleset() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(lint_src(src, RuleSet::all()).has_code("AZ003"));
        assert!(!lint_src(src, RuleSet::for_crate("bench")).has_code("AZ003"));
    }

    #[test]
    fn lossy_cast_flagged_evidence_and_marker_escape() {
        let hot = RuleSet::for_crate("dta");
        assert!(hot.cast);
        assert!(lint_src("fn f(x: usize) -> u32 { x as u32 }", hot).has_code("AZ005"));
        assert!(lint_src("fn f(x: u32) -> i32 { x as i32 }", hot).has_code("AZ005"));
        // Line-local bounding evidence suppresses the finding.
        assert!(!lint_src("fn f(x: usize) -> u32 { x.min(9) as u32 }", hot).has_code("AZ005"));
        assert!(!lint_src("fn f(x: u64) -> u8 { (x & 0xFF) as u8 }", hot).has_code("AZ005"));
        assert!(!lint_src("fn f(x: u64) -> u8 { x.count_ones() as u8 }", hot).has_code("AZ005"));
        assert!(!lint_src("fn f(g: GateId) -> u32 { g.index() as u32 }", hot).has_code("AZ005"));
        // The audited marker escape hatch works like the other rules.
        let marked = "fn f(x: usize) -> u32 {\n\
                      \x20   // terse-analyze: allow(AZ005): caller bounds x below 2^32.\n\
                      \x20   x as u32\n}";
        assert!(!lint_src(marked, hot).has_code("AZ005"));
    }

    #[test]
    fn widening_casts_and_cold_crates_are_not_flagged() {
        let hot = RuleSet::for_crate("sim");
        assert!(!lint_src("fn f(x: u32) -> u64 { x as u64 }", hot).has_code("AZ005"));
        assert!(!lint_src("fn f(x: u32) -> usize { x as usize }", hot).has_code("AZ005"));
        assert!(!lint_src("fn f(x: u32) -> f64 { x as f64 }", hot).has_code("AZ005"));
        let cold = RuleSet::for_crate("core");
        assert!(!cold.cast);
        assert!(!lint_src("fn f(x: usize) -> u32 { x as u32 }", cold).has_code("AZ005"));
    }

    #[test]
    fn hash_names_collection() {
        let m = mask_source(
            "struct S { table: HashMap<K, V>, names: HashMap<String, Vec<GateId>> }\n\
             fn f() { let mut seen = HashSet::new(); let v: Vec<u32> = vec![]; }",
        );
        let names = collect_hash_names(&m);
        assert!(names.contains("table") && names.contains("names") && names.contains("seen"));
        assert!(!names.contains("v"));
    }
}
