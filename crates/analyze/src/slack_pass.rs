//! Abstract interpretation over canonical slack random variables.
//!
//! The statistical engine (Clark max/min, the marginal solver, Eq. 14)
//! assumes every endpoint-slack RV is a *finite* canonical form over one
//! shared variable basis with non-degenerate variance. A single NaN mean
//! or ∞ sensitivity silently poisons every downstream moment; a zero
//! variance collapses the statistical min into a deterministic one and
//! degrades correlation handling; a basis-length mismatch panics deep in
//! the covariance kernels. This pass checks all of that up front and, as
//! a by-product of the interval abstraction, reports a static bound on
//! the stage DTS: the worst-case endpoint slack lies in
//! `[min_i (μ_i − kσ_i), min_i (μ_i + kσ_i)]`, an interval that brackets
//! Algorithm 1's per-cycle result for every activation set (activated
//! paths are a subset of the static paths).
//!
//! When the caller also has an *independently derived* interval for the
//! same quantity (the deterministic-STA certificate bound
//! `sd(slack) ≤ σ_rel · arrival` used by the DTA pre-screen), passing it
//! as [`SlackPassConfig::interval_bound`] tightens SL004 to the
//! intersection; the diagnostic's `data` records both inputs and which
//! bound was binding on each side. Disjoint inputs mean one of the two
//! abstractions is wrong and upgrade SL004 to a warning.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | SL001 | error    | non-finite canonical form (NaN/∞ mean, sensitivity, or residual) |
//! | SL002 | warning  | degenerate (zero-variance) slack RV where variation is enabled |
//! | SL003 | error    | sensitivity-basis length mismatch across the RV set |
//! | SL004 | info     | derived static DTS interval bound for the set |

use crate::{AnalysisReport, Severity};
use terse_sta::CanonicalRv;

/// Configuration of the slack pass.
#[derive(Debug, Clone)]
pub struct SlackPassConfig {
    /// Required sensitivity-basis length. `None` takes the first RV's
    /// basis as the reference (every set must still be internally
    /// consistent).
    pub expected_var_count: Option<usize>,
    /// Whether zero-variance RVs are suspicious. Disable when variation
    /// is configured off (`VariationConfig::disabled()`), where every
    /// slack is legitimately deterministic.
    pub expect_variance: bool,
    /// Half-width multiplier `k` of the per-RV interval `μ ± kσ` used for
    /// the SL004 bound.
    pub sigma_bound: f64,
    /// An independently derived `[lo, hi]` interval for the same
    /// worst-slack quantity (e.g. from deterministic arrival times and
    /// the `sd ≤ σ_rel · arrival` certificate). SL004 reports the
    /// intersection and which bound was binding per side.
    pub interval_bound: Option<(f64, f64)>,
}

impl Default for SlackPassConfig {
    fn default() -> Self {
        SlackPassConfig {
            expected_var_count: None,
            expect_variance: true,
            sigma_bound: 3.0,
            interval_bound: None,
        }
    }
}

/// Runs the slack-RV pass over one set of canonical slacks (typically the
/// endpoint slacks of one pipeline stage at the working period),
/// appending findings to `report`. `entity_prefix` anchors diagnostics
/// (e.g. `"stage 2"` or `"slack set"`).
pub fn analyze_slacks(
    rvs: &[CanonicalRv],
    cfg: &SlackPassConfig,
    entity_prefix: &str,
    report: &mut AnalysisReport,
) {
    if rvs.is_empty() {
        return;
    }
    let reference = cfg.expected_var_count.unwrap_or_else(|| rvs[0].var_count());
    let mut all_finite = true;
    // Interval join of the min-reduction: the worst slack of the set lies
    // in [min lo_i, min hi_i].
    let (mut lo, mut hi) = (f64::INFINITY, f64::INFINITY);
    for (i, rv) in rvs.iter().enumerate() {
        let entity = format!("{entity_prefix} rv {i}");
        let mut finite = true;
        if !rv.mean().is_finite() {
            finite = false;
            report.push(
                "SL001",
                Severity::Error,
                entity.clone(),
                format!("slack mean is non-finite ({})", rv.mean()),
                "trace the delay/constraint inputs for NaN or infinity",
            );
        }
        if let Some(j) = rv.coeffs().iter().position(|c| !c.is_finite()) {
            finite = false;
            report.push(
                "SL001",
                Severity::Error,
                entity.clone(),
                format!(
                    "sensitivity coefficient {j} is non-finite ({})",
                    rv.coeffs()[j]
                ),
                "trace the variation model for NaN or infinity",
            );
        }
        if !rv.indep().is_finite() || rv.indep() < 0.0 {
            finite = false;
            report.push(
                "SL001",
                Severity::Error,
                entity.clone(),
                format!("independent residual is invalid ({})", rv.indep()),
                "the independent sensitivity must be finite and non-negative",
            );
        }
        if rv.var_count() != reference {
            report.push(
                "SL003",
                Severity::Error,
                entity.clone(),
                format!(
                    "sensitivity basis has {} variable(s), expected {reference}",
                    rv.var_count()
                ),
                "all slack RVs must share one variation-model basis",
            );
        }
        if finite && cfg.expect_variance && rv.variance() <= 0.0 {
            report.push(
                "SL002",
                Severity::Warning,
                entity,
                "slack RV has zero variance under an enabled variation model",
                "degenerate canonical form: check the sensitivity extraction",
            );
        }
        if finite {
            let sd = rv.variance().max(0.0).sqrt();
            lo = lo.min(rv.mean() - cfg.sigma_bound * sd);
            hi = hi.min(rv.mean() + cfg.sigma_bound * sd);
        } else {
            all_finite = false;
        }
    }
    if all_finite {
        let mut data = vec![
            ("sigma_lo".to_string(), format!("{lo}")),
            ("sigma_hi".to_string(), format!("{hi}")),
        ];
        let (mut binding_lo, mut binding_hi) = ("sigma", "sigma");
        let (mut tight_lo, mut tight_hi) = (lo, hi);
        if let Some((ilo, ihi)) = cfg.interval_bound {
            data.push(("interval_lo".to_string(), format!("{ilo}")));
            data.push(("interval_hi".to_string(), format!("{ihi}")));
            if ilo > tight_lo {
                tight_lo = ilo;
                binding_lo = "interval";
            }
            if ihi < tight_hi {
                tight_hi = ihi;
                binding_hi = "interval";
            }
        }
        data.push(("binding_lo".to_string(), binding_lo.to_string()));
        data.push(("binding_hi".to_string(), binding_hi.to_string()));
        if tight_lo > tight_hi {
            // Two sound abstractions of one quantity cannot be disjoint:
            // one of the inputs is wrong.
            report.push_with_data(
                "SL004",
                Severity::Warning,
                entity_prefix.to_string(),
                format!(
                    "static DTS cross-check failed: ±{}σ bound [{lo:.4}, {hi:.4}] is \
                     disjoint from interval bound {:?}",
                    cfg.sigma_bound, cfg.interval_bound,
                ),
                "the sensitivity extraction and the arrival-certificate bound disagree",
                data,
            );
        } else {
            report.push_with_data(
                "SL004",
                Severity::Info,
                entity_prefix.to_string(),
                format!(
                    "static DTS bound: worst slack of {} endpoint(s) in \
                     [{tight_lo:.4}, {tight_hi:.4}] (±{}σ{})",
                    rvs.len(),
                    cfg.sigma_bound,
                    if cfg.interval_bound.is_some() {
                        " ∩ certificate interval"
                    } else {
                        ""
                    },
                ),
                "informational interval abstraction; negative lo admits timing errors",
                data,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(mean: f64, coeffs: Vec<f64>, indep: f64) -> CanonicalRv {
        CanonicalRv::with_sensitivities(mean, coeffs, indep)
    }

    fn check(rvs: &[CanonicalRv], cfg: &SlackPassConfig) -> AnalysisReport {
        let mut r = AnalysisReport::new();
        analyze_slacks(rvs, cfg, "set", &mut r);
        r
    }

    #[test]
    fn valid_set_is_clean_with_info_bound() {
        let rvs = vec![rv(10.0, vec![0.5, 0.0], 0.1), rv(12.0, vec![0.0, 1.0], 0.2)];
        let r = check(&rvs, &SlackPassConfig::default());
        assert!(r.is_clean(), "{}", r.render_text());
        assert!(r.has_code("SL004"), "bound note expected");
    }

    #[test]
    fn interval_bound_is_the_min_join() {
        // Deterministic RVs: interval degenerates to [min μ, min μ].
        let rvs = vec![rv(5.0, vec![], 0.0), rv(3.0, vec![], 0.0)];
        let cfg = SlackPassConfig {
            expect_variance: false,
            ..Default::default()
        };
        let r = check(&rvs, &cfg);
        let note = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SL004")
            .expect("bound note");
        assert!(
            note.message.contains("[3.0000, 3.0000]"),
            "{}",
            note.message
        );
    }

    #[test]
    fn interval_cross_check_tightens_and_records_binding_side() {
        // σ bound: [10 − 3, 10 + 3] = [7, 13].
        let rvs = vec![rv(10.0, vec![1.0], 0.0)];
        let cfg = SlackPassConfig {
            interval_bound: Some((8.0, 20.0)),
            ..Default::default()
        };
        let r = check(&rvs, &cfg);
        let note = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SL004")
            .expect("bound note");
        assert_eq!(note.severity, Severity::Info);
        assert!(
            note.message.contains("[8.0000, 13.0000]"),
            "{}",
            note.message
        );
        let get = |k: &str| {
            note.data
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("missing data key {k}"))
        };
        assert_eq!(get("binding_lo"), "interval");
        assert_eq!(get("binding_hi"), "sigma");
        assert_eq!(get("sigma_lo"), "7");
        assert_eq!(get("interval_hi"), "20");
    }

    #[test]
    fn disjoint_cross_check_is_a_warning() {
        let rvs = vec![rv(10.0, vec![1.0], 0.0)];
        let cfg = SlackPassConfig {
            interval_bound: Some((20.0, 30.0)),
            ..Default::default()
        };
        let r = check(&rvs, &cfg);
        let note = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "SL004")
            .expect("cross-check finding");
        assert_eq!(note.severity, Severity::Warning);
        assert!(!r.is_clean());
    }

    #[test]
    fn nan_mean_is_an_error_and_suppresses_bound() {
        let rvs = vec![rv(f64::NAN, vec![0.1], 0.1), rv(10.0, vec![0.1], 0.1)];
        let r = check(&rvs, &SlackPassConfig::default());
        assert!(r.has_code("SL001"), "{}", r.render_text());
        assert!(r.has_errors());
        assert!(!r.has_code("SL004"), "no bound from a poisoned set");
    }

    #[test]
    fn infinite_coefficient_is_an_error() {
        let rvs = vec![rv(10.0, vec![f64::INFINITY, 0.2], 0.1)];
        let r = check(&rvs, &SlackPassConfig::default());
        assert!(r.has_code("SL001"), "{}", r.render_text());
    }

    #[test]
    fn degenerate_variance_is_a_warning_only_when_expected() {
        let rvs = vec![rv(10.0, vec![0.0, 0.0], 0.0)];
        let strict = check(&rvs, &SlackPassConfig::default());
        assert!(strict.has_code("SL002"), "{}", strict.render_text());
        assert!(!strict.has_errors());
        let relaxed = SlackPassConfig {
            expect_variance: false,
            ..Default::default()
        };
        let r = check(&rvs, &relaxed);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn basis_mismatch_is_an_error() {
        let rvs = vec![rv(10.0, vec![0.1, 0.2], 0.1), rv(11.0, vec![0.1], 0.1)];
        let r = check(&rvs, &SlackPassConfig::default());
        assert!(r.has_code("SL003"), "{}", r.render_text());
    }
}
