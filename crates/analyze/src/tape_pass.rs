//! Structural verification of the compiled op-tape IR.
//!
//! The bit-parallel kernels ([`terse_netlist::tape::CompiledTape`]'s
//! `execute_full` / `execute_event` and the packed simulator on top of
//! them) assume the tape upholds the invariants the compiler establishes
//! by construction: every slot an op reads is either *external* (written
//! by the clock edge — inputs, flip-flops, ties) or written by an
//! **earlier** op; every non-external slot has exactly one writer; no op
//! slot index escapes the slab. A tape assembled through
//! [`terse_netlist::tape::CompiledTape::from_raw_ops`] (the fixture /
//! importer path) can violate any of these, and the kernels would then
//! silently propagate stale or out-of-cycle values — the single-pass
//! dirty-span proof only holds on a well-formed tape. This pass re-derives
//! the invariants on the finished object.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | TP001 | error    | read-before-write: an op reads a non-external slot no earlier op wrote |
//! | TP002 | error    | slot aliasing: two ops write the same destination slot |
//! | TP003 | error    | slot index out of range of the slab |
//! | TP004 | warning  | an op writes an external (clock-edge-owned) slot |
//!
//! Only the live sources (`src[..kind.arity()]`) are checked — the
//! compiler aliases unused source fields to `dst`, which the kernels never
//! read.

use crate::{AnalysisReport, Severity};
use terse_netlist::tape::CompiledTape;

/// Runs every tape structural pass, appending findings to `report`.
///
/// Emission order is deterministic: one forward sweep over the tape in
/// position order, checking each op's reads against the written-set before
/// recording its write.
pub fn analyze_tape(tape: &CompiledTape, report: &mut AnalysisReport) {
    let slots = tape.slot_count();
    let entity = |pos: usize, op: &terse_netlist::tape::Op| {
        format!("tape[{pos}] ({:?} -> slot {})", op.kind, op.dst)
    };
    // Slots written by some op at a strictly earlier tape position.
    let mut written = vec![false; slots as usize];
    // First writer position per slot, for the aliasing message.
    let mut writer = vec![u32::MAX; slots as usize];
    for (pos, op) in tape.ops().iter().enumerate() {
        for &s in &op.src[..op.kind.arity()] {
            if s >= slots {
                report.push(
                    "TP003",
                    Severity::Error,
                    entity(pos, op),
                    format!("source slot {s} out of range (slab has {slots} slots)"),
                    "recompile the tape from the netlist or fix the importer's slot map",
                );
            } else if !tape.is_external(s) && !written[s as usize] {
                report.push(
                    "TP001",
                    Severity::Error,
                    entity(pos, op),
                    format!(
                        "reads slot {s} before any op writes it (and the clock edge does not own it)"
                    ),
                    "reorder the tape to topological order or mark the slot external",
                );
            }
        }
        if op.dst >= slots {
            report.push(
                "TP003",
                Severity::Error,
                entity(pos, op),
                format!(
                    "destination slot {} out of range (slab has {slots} slots)",
                    op.dst
                ),
                "recompile the tape from the netlist or fix the importer's slot map",
            );
            continue;
        }
        if tape.is_external(op.dst) {
            report.push(
                "TP004",
                Severity::Warning,
                entity(pos, op),
                format!(
                    "writes external slot {} — the clock edge owns it, so the op's value is lost at the next edge and event marking misses its consumers",
                    op.dst
                ),
                "drive the value through a combinational slot instead",
            );
        }
        if written[op.dst as usize] {
            report.push(
                "TP002",
                Severity::Error,
                entity(pos, op),
                format!(
                    "slot {} already written at tape[{}] — aliased destinations race in the packed kernels",
                    op.dst, writer[op.dst as usize]
                ),
                "give each op its own destination slot",
            );
        } else {
            written[op.dst as usize] = true;
            writer[op.dst as usize] = pos as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terse_netlist::builder::NetlistBuilder;
    use terse_netlist::netlist::EndpointClass;
    use terse_netlist::tape::{Op, OpKind};
    use terse_netlist::GateKind;

    fn compiled() -> CompiledTape {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let x = b.input("x", 0).unwrap();
        let g1 = b.gate(GateKind::Nand, &[a, x], 0).unwrap();
        let g2 = b.gate(GateKind::Xor, &[g1, a], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, g2).unwrap();
        CompiledTape::compile(&b.finish().unwrap())
    }

    #[test]
    fn compiled_tapes_are_clean() {
        let mut r = AnalysisReport::new();
        analyze_tape(&compiled(), &mut r);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn read_before_write_is_flagged() {
        // Op 0 reads slot 2 which op 1 writes later.
        let ops = vec![
            Op {
                kind: OpKind::Not,
                src: [2, 3, 3],
                dst: 3,
            },
            Op {
                kind: OpKind::Buf,
                src: [0, 2, 2],
                dst: 2,
            },
        ];
        let tape = CompiledTape::from_raw_ops(ops, 4, &[0, 1]);
        let mut r = AnalysisReport::new();
        analyze_tape(&tape, &mut r);
        assert!(r.has_code("TP001"), "{}", r.render_text());
    }

    #[test]
    fn aliased_destinations_are_flagged() {
        let ops = vec![
            Op {
                kind: OpKind::Not,
                src: [0, 2, 2],
                dst: 2,
            },
            Op {
                kind: OpKind::Buf,
                src: [1, 2, 2],
                dst: 2,
            },
        ];
        let tape = CompiledTape::from_raw_ops(ops, 3, &[0, 1]);
        let mut r = AnalysisReport::new();
        analyze_tape(&tape, &mut r);
        assert!(r.has_code("TP002"), "{}", r.render_text());
    }

    #[test]
    fn out_of_range_slots_are_flagged() {
        let ops = vec![Op {
            kind: OpKind::And,
            src: [0, 9, 2],
            dst: 2,
        }];
        let tape = CompiledTape::from_raw_ops(ops, 3, &[0, 1]);
        let mut r = AnalysisReport::new();
        analyze_tape(&tape, &mut r);
        assert!(r.has_code("TP003"), "{}", r.render_text());
    }

    #[test]
    fn external_clobber_is_flagged() {
        let ops = vec![Op {
            kind: OpKind::Not,
            src: [0, 1, 1],
            dst: 1,
        }];
        let tape = CompiledTape::from_raw_ops(ops, 2, &[0, 1]);
        let mut r = AnalysisReport::new();
        analyze_tape(&tape, &mut r);
        assert!(r.has_code("TP004"), "{}", r.render_text());
    }

    #[test]
    fn unused_aliased_sources_are_not_reads() {
        // A unary op whose src[1..] alias dst must not self-trip TP001.
        let ops = vec![Op {
            kind: OpKind::Not,
            src: [0, 1, 1],
            dst: 1,
        }];
        let tape = CompiledTape::from_raw_ops(ops, 2, &[0]);
        let mut r = AnalysisReport::new();
        analyze_tape(&tape, &mut r);
        assert!(r.is_clean(), "{}", r.render_text());
    }
}
