//! Abstract-interpretation dataflow framework over the ISA CFG.
//!
//! A generic monotone-framework fixpoint engine (worklist over
//! [`terse_isa::Cfg`], forward or backward, lattice described by the
//! [`Analysis`] trait) plus four concrete passes over the 32-register
//! file:
//!
//! * [`ReachingDefs`] — which definition sites can reach each use.
//! * [`Liveness`] — backward live-register bitmasks.
//! * [`ConstProp`] — constant propagation with the exact wrapping
//!   semantics of `terse_sim::machine`.
//! * [`IntervalAnalysis`] — unsigned value ranges per register, the
//!   input to the DTA error-immunity pre-screen (operand magnitude
//!   bounds prove high adder/shifter bits quiescent).
//!
//! # Termination and order-independence
//!
//! All four lattices are **finite-height**, so the worklist iteration
//! converges to the unique least fixpoint regardless of pop order
//! (Fifo vs Lifo both land on identical facts — property-tested).
//! Intervals achieve finite height without widening by restricting
//! bounds to a *ladder*: exact values up to 256, then powers of two and
//! `2^k - 1` values (see [`Interval::normalized`]). The [`Analysis::widen`]
//! hook exists for lattices of unbounded height; every shipped pass keeps
//! the identity default precisely to preserve order-independence.
//!
//! # Indirect jumps
//!
//! `jr` successors are unknown statically. Under the ISA's call/return
//! discipline (`r31` written only by `jal`, `jr` only through `r31`) an
//! indirect block can only land on a `jal` return site, so the solver
//! augments the edge set with `jr-block -> every return site`. The
//! [`call_return_discipline`] predicate reports whether a program obeys
//! the discipline; consumers deriving *proofs* from these facts (the DTA
//! pre-screen) must downgrade to value-free reasoning when it is broken.
//!
//! # Diagnostics
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | DF001 | warning  | dead register write (value never read) |
//! | DF002 | warning  | register read before any definition (machine zero-init) |
//! | DF003 | warning  | branch outcome statically constant |
//! | DF004 | warning  | always-taken `beq rX, rX` with a dead fall-through edge |
//! | DF005 | error    | empty interval at a reachable instruction (internal inconsistency) |
//!
//! DF005 cannot arise from the analysis itself (transfers preserve
//! non-emptiness on reachable paths); it guards against corrupted or
//! hand-built solutions injected through [`check_intervals`], and the
//! oracle fixtures exercise exactly that path.

use crate::{AnalysisReport, Severity};
use std::collections::VecDeque;
use std::fmt::Debug;
use terse_isa::{Cfg, ControlKind, Instruction, Opcode, Program};

/// Flow direction of an analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// Worklist scheduling policy. Both orders reach the same least
/// fixpoint (finite-height monotone frameworks); having two lets the
/// property tests assert exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorklistOrder {
    /// Pop the oldest pending block (round-robin flavour).
    #[default]
    Fifo,
    /// Pop the newest pending block (depth-first flavour).
    Lifo,
}

/// A monotone dataflow problem: a (bounded) join-semilattice of facts
/// plus per-instruction transfer functions.
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq + Debug;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// The least lattice element (identity of `join`).
    fn bottom(&self) -> Self::Fact;

    /// An extra fact joined into a block's input independent of edges:
    /// the program-entry fact for forward analyses, exit facts (halt /
    /// indirect-jump blocks) for backward ones. `None` means nothing.
    fn boundary(&self, program: &Program, cfg: &Cfg, block: usize) -> Option<Self::Fact>;

    /// `into = into ⊔ other`. Must be commutative, associative and
    /// idempotent (property-tested for the shipped passes).
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact);

    /// Widening hook for unbounded lattices, applied whenever a block's
    /// input is recomputed. The default (return the new joined fact
    /// unchanged) is exact and keeps the fixpoint order-independent;
    /// only override for lattices where chains do not stabilise.
    fn widen(&self, _old: &Self::Fact, new: Self::Fact) -> Self::Fact {
        new
    }

    /// In-place transfer of one instruction. For backward analyses the
    /// solver applies instructions in reverse program order and `fact`
    /// is the fact *after* the instruction on entry.
    fn transfer_inst(&self, index: usize, inst: &Instruction, fact: &mut Self::Fact);
}

/// Fixpoint facts at both ends of every block, indexed by block id.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at the block's first instruction (before it executes).
    pub entry: Vec<F>,
    /// Fact after the block's last instruction.
    pub exit: Vec<F>,
}

/// Static successor/predecessor lists augmented with the call/return
/// edges an indirect (`jr`) block can take: one edge to every `jal`
/// return site. Out-of-range edge targets (a corrupted CFG) are
/// dropped; the CF pass diagnoses those separately. The lists are only
/// sound proofs when [`call_return_discipline`] holds.
pub fn augmented_edges(program: &Program, cfg: &Cfg) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let m = cfg.len();
    let insts = program.instructions();
    let mut succs: Vec<Vec<usize>> = cfg
        .blocks()
        .iter()
        .map(|b| {
            cfg.successors(b.id)
                .iter()
                .map(|s| s.index())
                .filter(|&i| i < m)
                .collect()
        })
        .collect();
    let mut return_sites: Vec<usize> = Vec::new();
    for b in cfg.blocks() {
        if !b.is_empty()
            && b.end as usize <= insts.len()
            && insts[(b.end - 1) as usize].opcode == Opcode::Jal
        {
            if let Some(site) = cfg.blocks().iter().position(|x| x.start == b.end) {
                if !return_sites.contains(&site) {
                    return_sites.push(site);
                }
            }
        }
    }
    for b in cfg.indirect_blocks() {
        if b.index() >= m {
            continue;
        }
        for &site in &return_sites {
            if !succs[b.index()].contains(&site) {
                succs[b.index()].push(site);
            }
        }
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            if !preds[s].contains(&b) {
                preds[s].push(b);
            }
        }
    }
    (succs, preds)
}

/// Whether every indirect jump can only be a function return: `jr`
/// reads `r31` exclusively, and `r31` is written only by `jal`. When
/// this fails, facts derived through the augmented return edges are
/// not sound proofs (a computed goto could land anywhere).
pub fn call_return_discipline(program: &Program) -> bool {
    program.instructions().iter().all(|inst| {
        let jr_ok = inst.opcode != Opcode::Jr || inst.rs1 == 31;
        let link_ok = inst.opcode == Opcode::Jal || inst.destination() != Some(31);
        jr_ok && link_ok
    })
}

/// Blocks statically reachable from the entry over the augmented edge
/// set (so `jal` return sites count as reachable when the program has
/// indirect blocks, matching `cfg_pass::reachability`).
pub fn reachable_blocks(program: &Program, cfg: &Cfg) -> Vec<bool> {
    let m = cfg.len();
    let mut reachable = vec![false; m];
    if m == 0 {
        return reachable;
    }
    let (succs, _) = augmented_edges(program, cfg);
    let insts = program.instructions();
    let has_indirect = !cfg.indirect_blocks().is_empty();
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for &s in &succs[b] {
            stack.push(s);
        }
        // A return site resumes after its `jal` even if the callee's
        // `jr` block was not itself reached yet.
        let blk = &cfg.blocks()[b];
        if has_indirect
            && !blk.is_empty()
            && blk.end as usize <= insts.len()
            && insts[(blk.end - 1) as usize].opcode == Opcode::Jal
        {
            if let Some(site) = cfg.blocks().iter().position(|x| x.start == blk.end) {
                stack.push(site);
            }
        }
    }
    reachable
}

/// Runs `analysis` to its least fixpoint over `cfg` with the given
/// worklist policy and returns per-block entry/exit facts.
pub fn solve<A: Analysis>(
    analysis: &A,
    program: &Program,
    cfg: &Cfg,
    order: WorklistOrder,
) -> Solution<A::Fact> {
    let m = cfg.len();
    let insts = program.instructions();
    let (succs, preds) = augmented_edges(program, cfg);
    let (dep_in, dep_out): (&Vec<Vec<usize>>, &Vec<Vec<usize>>) = match analysis.direction() {
        Direction::Forward => (&preds, &succs),
        Direction::Backward => (&succs, &preds),
    };

    // `input[b]` is the joined fact entering the block transfer (block
    // entry for forward, block exit for backward); `output[b]` is the
    // transferred fact on the other side.
    let mut input: Vec<A::Fact> = (0..m).map(|_| analysis.bottom()).collect();
    let mut output: Vec<A::Fact> = (0..m).map(|_| analysis.bottom()).collect();

    let transfer_block = |analysis: &A, b: usize, fact: &mut A::Fact| {
        let blk = &cfg.blocks()[b];
        let range = blk.range();
        if range.end > insts.len() {
            return; // corrupted partition; CF004 diagnoses it
        }
        match analysis.direction() {
            Direction::Forward => {
                for i in range {
                    analysis.transfer_inst(i, &insts[i], fact);
                }
            }
            Direction::Backward => {
                for i in range.rev() {
                    analysis.transfer_inst(i, &insts[i], fact);
                }
            }
        }
    };

    let mut queue: VecDeque<usize> = (0..m).collect();
    let mut queued = vec![true; m];
    let mut first = vec![true; m];
    while let Some(b) = match order {
        WorklistOrder::Fifo => queue.pop_front(),
        WorklistOrder::Lifo => queue.pop_back(),
    } {
        queued[b] = false;
        let mut fresh = analysis.bottom();
        if let Some(extra) = analysis.boundary(program, cfg, b) {
            analysis.join(&mut fresh, &extra);
        }
        for &d in &dep_in[b] {
            analysis.join(&mut fresh, &output[d]);
        }
        let fresh = analysis.widen(&input[b], fresh);
        if !first[b] && fresh == input[b] {
            continue;
        }
        first[b] = false;
        input[b] = fresh.clone();
        let mut out = fresh;
        transfer_block(analysis, b, &mut out);
        if out != output[b] {
            output[b] = out;
            for &d in &dep_out[b] {
                if !queued[d] {
                    queued[d] = true;
                    queue.push_back(d);
                }
            }
        }
    }

    match analysis.direction() {
        Direction::Forward => Solution {
            entry: input,
            exit: output,
        },
        Direction::Backward => Solution {
            entry: output,
            exit: input,
        },
    }
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

/// Sentinel definition site meaning "the machine's zero-initialised
/// value at program entry".
pub const ENTRY_DEF: u32 = u32::MAX;

/// Reaching definitions: per register, the sorted set of instruction
/// indices (or [`ENTRY_DEF`]) whose definition may reach this point.
pub struct ReachingDefs;

/// Fact type of [`ReachingDefs`]: 32 sorted, deduplicated def-site sets.
pub type DefSites = Vec<Vec<u32>>;

impl Analysis for ReachingDefs {
    type Fact = DefSites;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> DefSites {
        vec![Vec::new(); 32]
    }

    fn boundary(&self, _program: &Program, _cfg: &Cfg, block: usize) -> Option<DefSites> {
        (block == 0).then(|| {
            let mut f = vec![Vec::new(); 32];
            for r in f.iter_mut().skip(1) {
                r.push(ENTRY_DEF);
            }
            f
        })
    }

    fn join(&self, into: &mut DefSites, other: &DefSites) {
        for (a, b) in into.iter_mut().zip(other) {
            for &d in b {
                if let Err(pos) = a.binary_search(&d) {
                    a.insert(pos, d);
                }
            }
        }
    }

    fn transfer_inst(&self, index: usize, inst: &Instruction, fact: &mut DefSites) {
        if let Some(rd) = inst.destination() {
            fact[rd as usize] = vec![index as u32];
        }
    }
}

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

/// Backward liveness; the fact is a register bitmask (bit `r` set ⇔
/// `rN` live). `r0` is never live (reads are the hardwired zero).
pub struct Liveness;

/// All registers except `r0` — the conservative exit fact at an
/// indirect jump (the continuation is unknown statically).
pub const ALL_LIVE: u32 = !1;

impl Analysis for Liveness {
    type Fact = u32;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> u32 {
        0
    }

    fn boundary(&self, program: &Program, cfg: &Cfg, block: usize) -> Option<u32> {
        let blk = &cfg.blocks()[block];
        let insts = program.instructions();
        if blk.is_empty() || blk.end as usize > insts.len() {
            return None;
        }
        match ControlKind::of(&insts[(blk.end - 1) as usize]) {
            ControlKind::Halt => Some(0),
            ControlKind::Indirect => Some(ALL_LIVE),
            _ => None,
        }
    }

    fn join(&self, into: &mut u32, other: &u32) {
        *into |= other;
    }

    fn transfer_inst(&self, _index: usize, inst: &Instruction, fact: &mut u32) {
        if let Some(rd) = inst.destination() {
            *fact &= !(1u32 << rd);
        }
        for r in inst.sources() {
            if r != 0 {
                *fact |= 1u32 << r;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------

/// Per-register constant lattice: `Undef ⊑ Const(v) ⊑ Varies`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CVal {
    /// No execution reaches this point yet (lattice bottom).
    Undef,
    /// Every execution reaching this point sees exactly this value.
    Const(u32),
    /// More than one value is possible (lattice top).
    Varies,
}

impl CVal {
    fn join(self, other: CVal) -> CVal {
        match (self, other) {
            (CVal::Undef, x) | (x, CVal::Undef) => x,
            (CVal::Const(a), CVal::Const(b)) if a == b => self,
            _ => CVal::Varies,
        }
    }

    fn map2(self, other: CVal, f: impl FnOnce(u32, u32) -> u32) -> CVal {
        match (self, other) {
            (CVal::Undef, _) | (_, CVal::Undef) => CVal::Undef,
            (CVal::Const(a), CVal::Const(b)) => CVal::Const(f(a, b)),
            _ => CVal::Varies,
        }
    }

    fn map(self, f: impl FnOnce(u32) -> u32) -> CVal {
        self.map2(CVal::Const(0), |a, _| f(a))
    }
}

/// Constant propagation with the machine's exact wrapping/shift-mask
/// semantics (`terse_sim::machine` is the ground truth being mirrored).
pub struct ConstProp;

/// Fact type of [`ConstProp`]: one [`CVal`] per architectural register.
pub type ConstFact = Vec<CVal>;

fn cval(fact: &ConstFact, r: u8) -> CVal {
    if r == 0 {
        CVal::Const(0)
    } else {
        fact[r as usize]
    }
}

impl Analysis for ConstProp {
    type Fact = ConstFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> ConstFact {
        vec![CVal::Undef; 32]
    }

    fn boundary(&self, _program: &Program, _cfg: &Cfg, block: usize) -> Option<ConstFact> {
        (block == 0).then(|| vec![CVal::Const(0); 32])
    }

    fn join(&self, into: &mut ConstFact, other: &ConstFact) {
        for (a, b) in into.iter_mut().zip(other) {
            *a = a.join(*b);
        }
    }

    fn transfer_inst(&self, _index: usize, inst: &Instruction, fact: &mut ConstFact) {
        let Some(rd) = inst.destination() else {
            return;
        };
        let a = cval(fact, inst.rs1);
        let b = cval(fact, inst.rs2);
        let imm = inst.imm;
        let imm_u16 = (imm as u32) & 0xFFFF;
        let v = match inst.opcode {
            Opcode::Add => a.map2(b, u32::wrapping_add),
            Opcode::Sub => a.map2(b, u32::wrapping_sub),
            Opcode::And => a.map2(b, |x, y| x & y),
            Opcode::Or => a.map2(b, |x, y| x | y),
            Opcode::Xor => a.map2(b, |x, y| x ^ y),
            Opcode::Sll => a.map2(b, |x, y| x.wrapping_shl(y & 31)),
            Opcode::Srl => a.map2(b, |x, y| x.wrapping_shr(y & 31)),
            Opcode::Sra => a.map2(b, |x, y| (x as i32).wrapping_shr(y & 31) as u32),
            Opcode::Mul => a.map2(b, u32::wrapping_mul),
            Opcode::Slt => a.map2(b, |x, y| u32::from((x as i32) < (y as i32))),
            Opcode::Sltu => a.map2(b, |x, y| u32::from(x < y)),
            Opcode::Addi => a.map(|x| x.wrapping_add(imm as u32)),
            Opcode::Andi => a.map(|x| x & imm_u16),
            Opcode::Ori => a.map(|x| x | imm_u16),
            Opcode::Xori => a.map(|x| x ^ imm_u16),
            Opcode::Slli => a.map(|x| x.wrapping_shl(imm as u32 & 31)),
            Opcode::Srli => a.map(|x| x.wrapping_shr(imm as u32 & 31)),
            Opcode::Srai => a.map(|x| (x as i32).wrapping_shr(imm as u32 & 31) as u32),
            Opcode::Slti => a.map(|x| u32::from((x as i32) < imm)),
            Opcode::Lui => CVal::Const(imm_u16 << 16),
            // Loads depend on memory, `jal` writes a return address the
            // lattice does not track — both are simply non-constant.
            _ => CVal::Varies,
        };
        fact[rd as usize] = v;
    }
}

// ---------------------------------------------------------------------
// Interval analysis
// ---------------------------------------------------------------------

/// An unsigned value range `[lo, hi]` over `u32` values, held in `u64`
/// so transfer arithmetic cannot overflow. Empty iff `lo > hi`.
///
/// Lattice elements are kept *normalized* ([`Interval::normalized`]):
/// bounds live on a finite ladder (exact up to 256, then `2^k` /
/// `2^k - 1`), which makes the join (interval hull) a finite-height,
/// exactly associative semilattice — no widening needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

const U32MAX: u64 = u32::MAX as u64;
/// Bounds at or below this value are kept exact by the ladder.
const LADDER_EXACT: u64 = 256;

impl Interval {
    /// The empty interval (lattice bottom).
    pub const EMPTY: Interval = Interval { lo: 1, hi: 0 };
    /// The full `u32` range (lattice top).
    pub const TOP: Interval = Interval { lo: 0, hi: U32MAX };

    /// A single exact value.
    pub fn point(v: u32) -> Interval {
        Interval {
            lo: v as u64,
            hi: v as u64,
        }
    }

    /// Whether no value is contained.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether `v` is contained.
    pub fn contains(self, v: u32) -> bool {
        !self.is_empty() && self.lo <= v as u64 && v as u64 <= self.hi
    }

    /// Interval hull (the lattice join).
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            other
        } else if other.is_empty() {
            self
        } else {
            Interval {
                lo: self.lo.min(other.lo),
                hi: self.hi.max(other.hi),
            }
        }
    }

    /// Snaps the bounds outward onto the ladder (`lo` down, `hi` up).
    /// Idempotent and monotone; the hull of two normalized intervals is
    /// itself normalized, so lattice joins never need re-snapping.
    pub fn normalized(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: ladder_down(self.lo),
            hi: ladder_up(self.hi.min(U32MAX)),
        }
    }

    /// The bit positions every contained value agrees on: returns
    /// `(known_mask, value)` where bits set in `known_mask` are
    /// constant across the interval and take the bits of `value`.
    /// Empty intervals report nothing known (callers treat them as
    /// unreachable separately).
    pub fn known_bits(self) -> (u32, u32) {
        if self.is_empty() {
            return (0, 0);
        }
        let lo = self.lo as u32;
        let hi = self.hi as u32;
        let diff = lo ^ hi;
        // Bits above the highest differing position form a common prefix
        // shared by every value in [lo, hi] (all 32 bits when lo == hi,
        // none when the top bit differs).
        let known = if diff == 0 {
            u32::MAX
        } else {
            u32::MAX.checked_shl(32 - diff.leading_zeros()).unwrap_or(0)
        };
        (known, hi & known)
    }
}

/// Largest ladder value `≤ x` (for `x ≤ u32::MAX + small` sums the
/// caller has already range-checked).
fn ladder_down(x: u64) -> u64 {
    if x <= LADDER_EXACT {
        return x;
    }
    let p = 63 - x.leading_zeros();
    let ones = (1u64 << (p + 1)) - 1;
    if x == ones {
        ones
    } else {
        1u64 << p
    }
}

/// Smallest ladder value `≥ x` (capped at `u32::MAX`, which is on the
/// ladder).
fn ladder_up(x: u64) -> u64 {
    if x <= LADDER_EXACT {
        return x;
    }
    let p = 63 - x.leading_zeros();
    if x == 1u64 << p {
        x
    } else {
        (1u64 << (p + 1)) - 1
    }
}

/// All-ones cover of `x`: the smallest `2^k - 1 ≥ x`.
fn ones_cover(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        (1u64 << (64 - x.leading_zeros())) - 1
    }
}

/// Interval (value-range) analysis over the unsigned register file,
/// mirroring the machine's wrapping semantics conservatively.
pub struct IntervalAnalysis;

/// Fact type of [`IntervalAnalysis`]: one [`Interval`] per register.
pub type IntervalFact = Vec<Interval>;

fn ival(fact: &IntervalFact, r: u8) -> Interval {
    if r == 0 {
        Interval::point(0)
    } else {
        fact[r as usize]
    }
}

/// `a + c (mod 2^32)` for a constant `c`: exact when no value wraps or
/// every value wraps, `TOP` when the range straddles the wrap point.
fn add_const(a: Interval, c: u32) -> Interval {
    let lo = a.lo + c as u64;
    let hi = a.hi + c as u64;
    if hi <= U32MAX {
        Interval { lo, hi }
    } else if lo > U32MAX {
        Interval {
            lo: lo - (1u64 << 32),
            hi: hi - (1u64 << 32),
        }
    } else {
        Interval::TOP
    }
}

/// Result interval of one instruction's register write, `None` when the
/// instruction writes no register. Empty operands yield an empty result
/// (unreachable code stays at bottom).
fn interval_result(inst: &Instruction, fact: &IntervalFact) -> Option<Interval> {
    inst.destination()?;
    let a = ival(fact, inst.rs1);
    let b = ival(fact, inst.rs2);
    let imm = inst.imm;
    let imm_u16 = ((imm as u32) & 0xFFFF) as u64;
    let uses_b = inst.opcode.is_rtype();
    if a.is_empty() && !matches!(inst.opcode, Opcode::Lui | Opcode::Ld | Opcode::Jal) {
        return Some(Interval::EMPTY);
    }
    if uses_b && b.is_empty() {
        return Some(Interval::EMPTY);
    }
    let shift_const =
        |iv: Interval| -> Option<u32> { (iv.lo == iv.hi).then_some((iv.lo as u32) & 31) };
    let r = match inst.opcode {
        Opcode::Add => {
            let hi = a.hi + b.hi;
            if hi <= U32MAX {
                Interval {
                    lo: a.lo + b.lo,
                    hi,
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::Addi => add_const(a, imm as u32),
        Opcode::Sub => {
            if a.lo >= b.hi {
                Interval {
                    lo: a.lo - b.hi,
                    hi: a.hi - b.lo,
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::And => Interval {
            lo: 0,
            hi: a.hi.min(b.hi),
        },
        Opcode::Andi => Interval {
            lo: 0,
            hi: a.hi.min(imm_u16),
        },
        Opcode::Or => Interval {
            lo: a.lo.max(b.lo),
            hi: ones_cover(a.hi | b.hi),
        },
        Opcode::Ori => Interval {
            lo: a.lo.max(imm_u16),
            hi: ones_cover(a.hi | imm_u16),
        },
        Opcode::Xor => Interval {
            lo: 0,
            hi: ones_cover(a.hi | b.hi),
        },
        Opcode::Xori => Interval {
            lo: 0,
            hi: ones_cover(a.hi | imm_u16),
        },
        Opcode::Sll | Opcode::Slli => {
            let s = if inst.opcode == Opcode::Slli {
                Some(imm as u32 & 31)
            } else {
                shift_const(b)
            };
            match s {
                Some(s) if a.hi << s <= U32MAX => Interval {
                    lo: a.lo << s,
                    hi: a.hi << s,
                },
                _ if a.hi == 0 => Interval { lo: 0, hi: 0 },
                _ => Interval::TOP,
            }
        }
        Opcode::Srl | Opcode::Srli => {
            let s = if inst.opcode == Opcode::Srli {
                Some(imm as u32 & 31)
            } else {
                shift_const(b)
            };
            match s {
                Some(s) => Interval {
                    lo: a.lo >> s,
                    hi: a.hi >> s,
                },
                None => Interval { lo: 0, hi: a.hi },
            }
        }
        Opcode::Sra | Opcode::Srai => {
            // For values with bit 31 clear, arithmetic == logical shift;
            // a possibly-negative operand smears sign bits -> TOP.
            if a.hi <= i32::MAX as u64 {
                let s = if inst.opcode == Opcode::Srai {
                    Some(imm as u32 & 31)
                } else {
                    shift_const(b)
                };
                match s {
                    Some(s) => Interval {
                        lo: a.lo >> s,
                        hi: a.hi >> s,
                    },
                    None => Interval { lo: 0, hi: a.hi },
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::Mul => {
            if a.hi.checked_mul(b.hi).is_some_and(|h| h <= U32MAX) {
                Interval {
                    lo: a.lo * b.lo,
                    hi: a.hi * b.hi,
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::Slt | Opcode::Sltu | Opcode::Slti => Interval { lo: 0, hi: 1 },
        Opcode::Lui => Interval::point(((imm as u32) & 0xFFFF) << 16),
        // Loads read arbitrary memory; `jal` writes a return address the
        // register lattice does not track.
        _ => Interval::TOP,
    };
    Some(r.normalized())
}

impl Analysis for IntervalAnalysis {
    type Fact = IntervalFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> IntervalFact {
        vec![Interval::EMPTY; 32]
    }

    fn boundary(&self, _program: &Program, _cfg: &Cfg, block: usize) -> Option<IntervalFact> {
        (block == 0).then(|| vec![Interval::point(0); 32])
    }

    fn join(&self, into: &mut IntervalFact, other: &IntervalFact) {
        for (a, b) in into.iter_mut().zip(other) {
            *a = a.join(*b);
        }
    }

    fn transfer_inst(&self, _index: usize, inst: &Instruction, fact: &mut IntervalFact) {
        let Some(rd) = inst.destination() else {
            return;
        };
        if let Some(r) = interval_result(inst, fact) {
            fact[rd as usize] = r;
        }
    }
}

// ---------------------------------------------------------------------
// DF diagnostics
// ---------------------------------------------------------------------

/// Runs all four passes and appends DF001–DF004 findings (DF005 is
/// checked against the freshly computed interval solution and cannot
/// fire unless that solution was corrupted — see [`check_intervals`]).
pub fn analyze_dataflow(program: &Program, cfg: &Cfg, report: &mut AnalysisReport) {
    let reachable = reachable_blocks(program, cfg);
    let live = solve(&Liveness, program, cfg, WorklistOrder::Fifo);
    check_dead_writes(program, cfg, &live, &reachable, report);
    let defs = solve(&ReachingDefs, program, cfg, WorklistOrder::Fifo);
    check_use_before_def(program, cfg, &defs, &reachable, report);
    let consts = solve(&ConstProp, program, cfg, WorklistOrder::Fifo);
    check_branches(program, cfg, &consts, &reachable, report);
    let intervals = solve(&IntervalAnalysis, program, cfg, WorklistOrder::Fifo);
    check_intervals(program, cfg, &intervals, report);
}

/// DF001 — a register write whose value no execution path reads.
fn check_dead_writes(
    program: &Program,
    cfg: &Cfg,
    live: &Solution<u32>,
    reachable: &[bool],
    report: &mut AnalysisReport,
) {
    let insts = program.instructions();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !reachable[b] || blk.end as usize > insts.len() {
            continue;
        }
        let mut fact = live.exit[b];
        for i in blk.range().rev() {
            let inst = &insts[i];
            if let Some(rd) = inst.destination() {
                if fact & (1u32 << rd) == 0 {
                    report.push(
                        "DF001",
                        Severity::Warning,
                        format!("inst {i}"),
                        format!(
                            "register r{rd} written by {:?} is never read afterwards",
                            inst.opcode
                        ),
                        "dead write: remove the instruction or use its result",
                    );
                }
            }
            Liveness.transfer_inst(i, inst, &mut fact);
        }
    }
}

/// DF002 — a register read that some path reaches without any prior
/// definition (the machine zero-initialises, so this is legal but
/// almost always an omission).
fn check_use_before_def(
    program: &Program,
    cfg: &Cfg,
    defs: &Solution<DefSites>,
    reachable: &[bool],
    report: &mut AnalysisReport,
) {
    let insts = program.instructions();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !reachable[b] || blk.end as usize > insts.len() {
            continue;
        }
        let mut fact = defs.entry[b].clone();
        for i in blk.range() {
            let inst = &insts[i];
            for r in inst.sources() {
                if r != 0 && fact[r as usize].contains(&ENTRY_DEF) {
                    report.push(
                        "DF002",
                        Severity::Warning,
                        format!("inst {i}"),
                        format!("register r{r} is read but a path from entry never defines it"),
                        "use before def: initialise the register (the machine zero-fills)",
                    );
                }
            }
            ReachingDefs.transfer_inst(i, inst, &mut fact);
        }
    }
}

/// DF003 / DF004 — branches whose outcome is statically decided, by
/// constant operands or by structure (`rX` compared with itself). The
/// `beq r0, r0` pseudo-jump is the one sanctioned always-taken form
/// and is skipped.
fn check_branches(
    program: &Program,
    cfg: &Cfg,
    consts: &Solution<ConstFact>,
    reachable: &[bool],
    report: &mut AnalysisReport,
) {
    let insts = program.instructions();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !reachable[b] || blk.end as usize > insts.len() {
            continue;
        }
        let mut fact = consts.entry[b].clone();
        for i in blk.range() {
            let inst = &insts[i];
            if inst.opcode.is_branch() {
                let same = inst.rs1 == inst.rs2;
                if same && inst.opcode == Opcode::Beq && inst.rs1 == 0 {
                    // pseudo-jump `j target`
                } else if same && inst.opcode == Opcode::Beq {
                    report.push(
                        "DF004",
                        Severity::Warning,
                        format!("inst {i}"),
                        format!(
                            "beq r{0}, r{0} is always taken but keeps a dead fall-through edge",
                            inst.rs1
                        ),
                        "use the `j` pseudo-jump (beq r0, r0) so the CFG drops the dead edge",
                    );
                } else if same {
                    let taken = inst.opcode == Opcode::Bge; // x<x never, x>=x always
                    report.push(
                        "DF003",
                        Severity::Warning,
                        format!("inst {i}"),
                        format!(
                            "{:?} r{1}, r{1} compares a register with itself and is {2}",
                            inst.opcode,
                            inst.rs1,
                            if taken { "always taken" } else { "never taken" }
                        ),
                        "statically decided branch: fold it away",
                    );
                } else if let (CVal::Const(x), CVal::Const(y)) =
                    (cval(&fact, inst.rs1), cval(&fact, inst.rs2))
                {
                    let taken = match inst.opcode {
                        Opcode::Beq => x == y,
                        Opcode::Bne => x != y,
                        Opcode::Blt => (x as i32) < (y as i32),
                        _ => (x as i32) >= (y as i32),
                    };
                    report.push(
                        "DF003",
                        Severity::Warning,
                        format!("inst {i}"),
                        format!(
                            "branch operands are the constants {x} and {y}; {:?} is {}",
                            inst.opcode,
                            if taken { "always taken" } else { "never taken" }
                        ),
                        "statically decided branch: fold it away",
                    );
                }
            }
            ConstProp.transfer_inst(i, inst, &mut fact);
        }
    }
}

/// DF005 — an empty operand interval at a reachable instruction. The
/// shipped transfer functions preserve non-emptiness along reachable
/// paths, so a hit means the solution object was corrupted (oracle
/// fixtures inject exactly that); severity is `Error` because every
/// consumer of the solution (the DTA pre-screen) would be unsound.
pub fn check_intervals(
    program: &Program,
    cfg: &Cfg,
    intervals: &Solution<IntervalFact>,
    report: &mut AnalysisReport,
) {
    let insts = program.instructions();
    let reachable = reachable_blocks(program, cfg);
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !reachable[b] || blk.end as usize > insts.len() || b >= intervals.entry.len() {
            continue;
        }
        let mut fact = intervals.entry[b].clone();
        for i in blk.range() {
            let inst = &insts[i];
            for r in inst.sources() {
                if r != 0 && fact[r as usize].is_empty() {
                    report.push(
                        "DF005",
                        Severity::Error,
                        format!("inst {i}"),
                        format!("operand register r{r} has an empty interval on a reachable path"),
                        "internal inconsistency: the interval solution is corrupt; recompute it",
                    );
                }
            }
            IntervalAnalysis.transfer_inst(i, inst, &mut fact);
        }
    }
}

// ---------------------------------------------------------------------
// Operand bounds export (consumed by the DTA pre-screen)
// ---------------------------------------------------------------------

/// Static value bounds for the three EX operand buses of one
/// instruction, mirroring the co-simulation's bank forcing: `op_a` is
/// the `rs1` value, `op_b` is the sign-extended immediate for
/// I-type/memory opcodes and the `rs2` value otherwise, `store` is the
/// `rs2` value (store-data port).
#[derive(Debug, Clone, Copy)]
pub struct OperandBounds {
    /// Value range of the `op_a` bus (`rs1` read).
    pub a: Interval,
    /// Value range of the `op_b` bus (immediate or `rs2` read).
    pub b: Interval,
    /// Value range of the `store` bus (`rs2` read).
    pub s: Interval,
}

/// Solves the interval analysis and derives per-instruction
/// [`OperandBounds`]. Instructions in statically unreachable blocks get
/// `TOP` bounds (they never retire, but callers need a sound default).
pub fn operand_bounds(program: &Program, cfg: &Cfg) -> Vec<OperandBounds> {
    let sol = solve(&IntervalAnalysis, program, cfg, WorklistOrder::Fifo);
    let insts = program.instructions();
    let reachable = reachable_blocks(program, cfg);
    let top = OperandBounds {
        a: Interval::TOP,
        b: Interval::TOP,
        s: Interval::TOP,
    };
    let mut out = vec![top; insts.len()];
    for (bidx, blk) in cfg.blocks().iter().enumerate() {
        if !reachable[bidx] || blk.end as usize > insts.len() {
            continue;
        }
        let mut fact = sol.entry[bidx].clone();
        for i in blk.range() {
            let inst = &insts[i];
            let a = ival(&fact, inst.rs1);
            let s = ival(&fact, inst.rs2);
            let b = if inst.opcode.is_itype() || inst.opcode.is_memory() {
                Interval::point(inst.imm as u32)
            } else {
                s
            };
            // An empty fact on a reachable path cannot happen (DF005
            // guards it); degrade to TOP rather than "proving" immunity
            // from an impossible premise.
            let sane = |iv: Interval| if iv.is_empty() { Interval::TOP } else { iv };
            out[i] = OperandBounds {
                a: sane(a),
                b: sane(b),
                s: sane(s),
            };
            IntervalAnalysis.transfer_inst(i, inst, &mut fact);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use terse_isa::assemble;

    fn setup(src: &str) -> (Program, Cfg) {
        let p = assemble(src).expect("test program assembles");
        let cfg = Cfg::from_program(&p);
        (p, cfg)
    }

    fn run_df(src: &str) -> AnalysisReport {
        let (p, cfg) = setup(src);
        let mut r = AnalysisReport::new();
        analyze_dataflow(&p, &cfg, &mut r);
        r
    }

    #[test]
    fn ladder_round_trip() {
        for x in [0u64, 1, 7, 255, 256, 257, 300, 511, 512, 513, U32MAX] {
            assert!(ladder_down(x) <= x && x <= ladder_up(x));
            assert_eq!(ladder_down(ladder_down(x)), ladder_down(x));
            assert_eq!(ladder_up(ladder_up(x)), ladder_up(x));
        }
        assert_eq!(ladder_down(300), 256);
        assert_eq!(ladder_up(300), 511);
        assert_eq!(ladder_up(512), 512);
        assert_eq!(ladder_down(511), 511);
    }

    #[test]
    fn known_bits_common_prefix() {
        // 0x100..=0x1FF share bit 8 set and bits 9.. clear.
        let iv = Interval {
            lo: 0x100,
            hi: 0x1FF,
        };
        let (mask, val) = iv.known_bits();
        assert_eq!(mask, !0xFFu32);
        assert_eq!(val, 0x100);
        let (pmask, pval) = Interval::point(0xDEAD_BEEF).known_bits();
        assert_eq!((pmask, pval), (u32::MAX, 0xDEAD_BEEF));
    }

    #[test]
    fn straight_line_constants_and_intervals() {
        let (p, cfg) =
            setup("addi r1, r0, 5\naddi r2, r1, 3\nadd r3, r1, r2\nst r3, r0, 0\nhalt\n");
        let consts = solve(&ConstProp, &p, &cfg, WorklistOrder::Fifo);
        let exit = &consts.exit[0];
        assert_eq!(exit[1], CVal::Const(5));
        assert_eq!(exit[2], CVal::Const(8));
        assert_eq!(exit[3], CVal::Const(13));
        let bounds = operand_bounds(&p, &cfg);
        // add r3, r1, r2: op_a = r1 in [5,5], op_b = r2 in [8,8]
        assert!(bounds[2].a.hi <= 5 && bounds[2].b.hi <= 8);
        // addi op_b is the exact immediate
        assert_eq!(bounds[1].b, Interval::point(3));
    }

    #[test]
    fn loop_intervals_stay_bounded_and_converge() {
        let (p, cfg) = setup(
            r"
                addi r1, r0, 0
            loop:
                addi r1, r1, 1
                andi r3, r1, 15
                st   r3, r0, 0
                bne  r3, r0, loop
                halt
            ",
        );
        let fifo = solve(&IntervalAnalysis, &p, &cfg, WorklistOrder::Fifo);
        let lifo = solve(&IntervalAnalysis, &p, &cfg, WorklistOrder::Lifo);
        assert_eq!(fifo.entry, lifo.entry, "fixpoint is order-independent");
        assert_eq!(fifo.exit, lifo.exit);
        // The raw counter climbs the ladder to TOP (no branch-condition
        // refinement, by design), but the masked value stays in [0, 15]:
        // that magnitude bound is what the pre-screen feeds on.
        let r3 = fifo.exit[1][3];
        assert!(!r3.is_empty() && r3.hi <= 15, "{r3:?}");
        let r1 = fifo.exit[1][1];
        assert_eq!(r1, Interval::TOP, "counter legitimately saturates");
    }

    #[test]
    fn liveness_and_dead_write() {
        let r = run_df("addi r1, r0, 1\naddi r2, r0, 2\nst r1, r0, 0\nhalt\n");
        // r2's write is never read.
        assert!(r.has_code("DF001"), "{}", r.render_text());
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "DF001").count(),
            1
        );
    }

    #[test]
    fn use_before_def_fires_on_uninitialised_read() {
        let r = run_df("add r2, r1, r1\nst r2, r0, 0\nhalt\n");
        assert!(r.has_code("DF002"), "{}", r.render_text());
    }

    #[test]
    fn const_branch_and_always_taken_beq() {
        let r = run_df(
            r"
                addi r1, r0, 4
                addi r2, r0, 4
                beq  r1, r2, out
                st   r1, r0, 0
            out:
                st   r2, r0, 1
                halt
            ",
        );
        assert!(r.has_code("DF003"), "{}", r.render_text());
        let r2 = run_df(
            r"
                ld   r1, r0, 0
                beq  r1, r1, out
                st   r1, r0, 0
            out:
                halt
            ",
        );
        assert!(r2.has_code("DF004"), "{}", r2.render_text());
        assert!(!r2.has_code("DF003"));
    }

    #[test]
    fn pseudo_jump_not_flagged_and_clean_program_is_clean() {
        let r = run_df(
            r"
                ld   r1, r0, 0
                j    body
            body:
                addi r1, r1, 1
                st   r1, r0, 0
                halt
            ",
        );
        assert!(
            !r.has_code("DF003") && !r.has_code("DF004"),
            "{}",
            r.render_text()
        );
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn call_return_facts_flow_and_discipline_detected() {
        let (p, cfg) = setup(
            r"
            main:
                addi r1, r0, 7
                call fn
                st   r2, r0, 0
                halt
            fn:
                addi r2, r1, 1
                ret
            ",
        );
        assert!(call_return_discipline(&p));
        let consts = solve(&ConstProp, &p, &cfg, WorklistOrder::Fifo);
        // The return site (st block) sees the callee's r2 = 8.
        let site = cfg
            .blocks()
            .iter()
            .position(|b| p.instructions()[b.start as usize].opcode == Opcode::St)
            .expect("store block");
        assert_eq!(consts.entry[site][2], CVal::Const(8));
        let r = {
            let mut rep = AnalysisReport::new();
            analyze_dataflow(&p, &cfg, &mut rep);
            rep
        };
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn jr_through_scratch_register_breaks_discipline() {
        let (p, _) = setup("addi r5, r0, 0\njr r5\nhalt\n");
        assert!(!call_return_discipline(&p));
    }

    #[test]
    fn df005_fires_only_on_injected_corruption() {
        let (p, cfg) = setup("add r2, r1, r1\nst r2, r0, 0\nhalt\n");
        let mut sol = solve(&IntervalAnalysis, &p, &cfg, WorklistOrder::Fifo);
        let mut clean = AnalysisReport::new();
        check_intervals(&p, &cfg, &sol, &mut clean);
        assert!(clean.is_clean());
        // r1 is read at inst 0 before any write: an empty interval
        // there is exactly the inconsistency DF005 guards against.
        sol.entry[0][1] = Interval::EMPTY;
        let mut rep = AnalysisReport::new();
        check_intervals(&p, &cfg, &sol, &mut rep);
        assert!(rep.has_code("DF005"), "{}", rep.render_text());
        assert!(rep.has_errors());
    }
}
