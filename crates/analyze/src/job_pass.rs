//! Structural verification of job-server specs and store directories.
//!
//! `terse-serve` (ROADMAP item 2) turns estimation runs into queued batch
//! jobs: a JSON spec per job, a directory-backed store
//! (`jobs/<id>/{spec.json,state,checkpoints/,report.json}`), and a strict
//! state machine (`queued → running → done/failed/cancelled`, plus the
//! recovery edge `running → queued` for crashed or time-sliced workers).
//! This pass is the single source of truth for what a *valid* spec and a
//! *valid* store look like; the serve crate delegates its own guards to
//! [`valid_transition`] and runs [`analyze_job_spec`] before admitting a
//! job, so the executor and the analyzer can never disagree.
//!
//! The pass operates on [`JobSpecView`] — a borrowed, crate-neutral
//! projection of the serve crate's `JobSpec` — because `terse-serve`
//! depends on `terse-analyze`, not the other way around.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | JS001 | error    | workload unresolved: unknown benchmark name, or neither/both of benchmark and inline asm given |
//! | JS002 | error    | invalid operating-point grid: empty, or a non-finite / non-positive overclock factor (duplicates are a warning) |
//! | JS003 | error    | invalid parameters: empty or unsafe job id, zero samples, zero threads, zero checkpoint interval |
//! | JS004 | error    | Monte Carlo population mismatch: exactly one of `chips` / `mc_inputs` is zero |
//! | JS005 | error    | store layout violation: missing `spec.json` or `state`, or a non-directory under `jobs/` |
//! | JS006 | error    | invalid state file: contents are not one of the five states |
//! | JS007 | error    | transition-log violation: an edge outside the state machine, or a broken chain |
//! | JS008 | error    | state/artifact inconsistency: `done` without `report.json`, or `report.json` without `done` |

use crate::{AnalysisReport, Severity};
use std::path::Path;

/// The five job states, in canonical string form.
pub const JOB_STATES: [&str; 5] = ["queued", "running", "done", "failed", "cancelled"];

/// Whether `state` is one of the three terminal states.
pub fn is_terminal_state(state: &str) -> bool {
    matches!(state, "done" | "failed" | "cancelled")
}

/// The job state machine, as a pure edge predicate. This is the only
/// transition table in the workspace — `terse-serve` routes every state
/// write through it.
///
/// Edges:
///
/// * `queued → running` (a worker claims the job)
/// * `queued → cancelled` (cancel before any worker claims it)
/// * `running → done | failed | cancelled`
/// * `running → queued` (recovery: the worker died or the job was
///   time-sliced at a checkpoint boundary; the checkpoint makes the
///   re-run bit-exact)
///
/// Terminal states have no outgoing edges. Unknown state strings have no
/// edges at all.
pub fn valid_transition(from: &str, to: &str) -> bool {
    matches!(
        (from, to),
        ("queued", "running" | "cancelled")
            | ("running", "done" | "failed" | "cancelled" | "queued")
    )
}

/// A borrowed projection of a job spec, decoupled from the serve crate's
/// concrete `JobSpec` type.
#[derive(Debug, Clone, Copy)]
pub struct JobSpecView<'a> {
    /// Job identifier (directory name under `jobs/`).
    pub id: &'a str,
    /// Named benchmark workload, if the spec references one.
    pub benchmark: Option<&'a str>,
    /// Whether the spec carries an inline assembly workload.
    pub has_asm: bool,
    /// Estimation sample count (lambda replicas).
    pub samples: u64,
    /// Operating-point grid: overclock factors relative to the rated
    /// period.
    pub grid: &'a [f64],
    /// Monte Carlo chip population size (0 = Monte Carlo disabled).
    pub chips: usize,
    /// Monte Carlo inputs per chip (0 = Monte Carlo disabled).
    pub mc_inputs: usize,
    /// Worker-local rayon threads.
    pub threads: usize,
    /// Checkpoint flush interval (blocks / cells).
    pub checkpoint_every: usize,
}

/// Whether `id` is safe to use verbatim as a store directory name.
pub fn safe_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        && !id.starts_with('.')
}

/// Runs every spec pass (JS001–JS004), appending findings to `report`.
///
/// `known_workloads` is the benchmark namespace to resolve against
/// (callers pass the `terse-workloads` registry). Emission order is
/// deterministic: checks run in code order.
pub fn analyze_job_spec(
    spec: &JobSpecView<'_>,
    known_workloads: &[&str],
    report: &mut AnalysisReport,
) {
    let entity = if spec.id.is_empty() { "<job>" } else { spec.id };
    // JS001 — the workload must resolve to exactly one source.
    match (spec.benchmark, spec.has_asm) {
        (None, false) => report.push(
            "JS001",
            Severity::Error,
            entity,
            "spec names no workload: neither `benchmark` nor `asm` is present",
            "set `workload.benchmark` to a known name or provide `workload.asm`",
        ),
        (Some(_), true) => report.push(
            "JS001",
            Severity::Error,
            entity,
            "spec names two workloads: both `benchmark` and `asm` are present",
            "keep exactly one of `workload.benchmark` and `workload.asm`",
        ),
        (Some(name), false) if !known_workloads.contains(&name) => report.push(
            "JS001",
            Severity::Error,
            entity,
            format!("unknown benchmark `{name}`"),
            format!("known benchmarks: {}", known_workloads.join(", ")),
        ),
        _ => {}
    }
    // JS002 — the operating-point grid must be non-empty, finite, positive.
    if spec.grid.is_empty() {
        report.push(
            "JS002",
            Severity::Error,
            entity,
            "operating-point grid is empty",
            "list at least one overclock factor in `grid`",
        );
    }
    for (i, &f) in spec.grid.iter().enumerate() {
        if !(f > 0.0) || !f.is_finite() {
            report.push(
                "JS002",
                Severity::Error,
                format!("{entity} grid[{i}]"),
                format!("overclock factor {f} is not a finite positive number"),
                "overclock factors scale the rated period and must be finite and > 0",
            );
        }
    }
    for (i, &f) in spec.grid.iter().enumerate() {
        if spec.grid[..i].iter().any(|&g| g.to_bits() == f.to_bits()) {
            report.push(
                "JS002",
                Severity::Warning,
                format!("{entity} grid[{i}]"),
                format!("duplicate overclock factor {f}"),
                "duplicate grid points repeat identical work",
            );
        }
    }
    // JS003 — scalar parameters must be usable as-is (no silent clamping).
    if !safe_job_id(spec.id) {
        report.push(
            "JS003",
            Severity::Error,
            entity,
            format!("job id `{}` is not a safe store directory name", spec.id),
            "ids are 1-64 chars of [A-Za-z0-9._-], not starting with `.`",
        );
    }
    for (value, what, hint) in [
        (spec.samples as usize, "samples", "lambda replicas"),
        (spec.threads, "threads", "worker-local rayon threads"),
        (
            spec.checkpoint_every,
            "checkpoint_every",
            "blocks/cells per checkpoint flush",
        ),
    ] {
        if value == 0 {
            report.push(
                "JS003",
                Severity::Error,
                entity,
                format!("`{what}` is 0"),
                format!("`{what}` ({hint}) must be >= 1"),
            );
        }
    }
    // JS004 — the Monte Carlo grid is (chips × inputs): both or neither.
    if (spec.chips == 0) != (spec.mc_inputs == 0) {
        report.push(
            "JS004",
            Severity::Error,
            entity,
            format!(
                "Monte Carlo population mismatch: chips = {}, mc_inputs = {}",
                spec.chips, spec.mc_inputs
            ),
            "set both `chips` and `mc_inputs` to >= 1 (enable) or both to 0 (disable)",
        );
    }
}

/// Runs the store-layout passes (JS005–JS008) over every entry of a job
/// store root (the directory that contains `jobs/`), appending findings
/// to `report`. Returns the number of job directories inspected.
///
/// The pass is read-only and tolerant of live stores: a `running` job
/// with in-flight checkpoints is valid; only structural violations that
/// no crash window of the serve crate's atomic write protocol can
/// produce are diagnosed.
///
/// # Errors
///
/// Returns `Err` only if the store root itself is unreadable; per-job
/// read failures become JS005 diagnostics.
pub fn analyze_job_store(root: &Path, report: &mut AnalysisReport) -> std::io::Result<usize> {
    let jobs = root.join("jobs");
    if !jobs.is_dir() {
        report.push(
            "JS005",
            Severity::Error,
            root.display().to_string(),
            "store root has no jobs/ directory",
            "initialize the store with `terse serve --store <root>` or `terse submit`",
        );
        return Ok(0);
    }
    let mut ids: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&jobs)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.file_type()?.is_dir() {
            ids.push(name);
        } else {
            report.push(
                "JS005",
                Severity::Error,
                format!("jobs/{name}"),
                "non-directory entry in jobs/",
                "only per-job directories may live under jobs/",
            );
        }
    }
    ids.sort();
    for id in &ids {
        analyze_job_dir(&jobs.join(id), id, report);
    }
    Ok(ids.len())
}

/// JS005–JS008 for a single `jobs/<id>/` directory.
fn analyze_job_dir(dir: &Path, id: &str, report: &mut AnalysisReport) {
    // JS005 — required artifacts.
    if !dir.join("spec.json").is_file() {
        report.push(
            "JS005",
            Severity::Error,
            id,
            "missing spec.json",
            "a job directory is created by writing spec.json first",
        );
    }
    let state = match std::fs::read_to_string(dir.join("state")) {
        Ok(s) => s.trim().to_string(),
        Err(_) => {
            report.push(
                "JS005",
                Severity::Error,
                id,
                "missing or unreadable state file",
                "the state file is written atomically at submit time",
            );
            return;
        }
    };
    // JS006 — the state must be one of the five canonical strings.
    if !JOB_STATES.contains(&state.as_str()) {
        report.push(
            "JS006",
            Severity::Error,
            id,
            format!("state file contains unknown state `{state}`"),
            format!("states: {}", JOB_STATES.join(", ")),
        );
        return;
    }
    // JS007 — the transition log must be a valid chain from `queued`
    // ending at the current state.
    if let Ok(log) = std::fs::read_to_string(dir.join("transitions.log")) {
        let mut prev = "queued".to_string();
        for (lineno, line) in log.lines().enumerate() {
            let Some((from, to)) = line.split_once(" -> ") else {
                report.push(
                    "JS007",
                    Severity::Error,
                    format!("{id} transitions.log:{}", lineno + 1),
                    format!("malformed log line `{line}`"),
                    "log lines are `<from> -> <to>`",
                );
                return;
            };
            if from != prev {
                report.push(
                    "JS007",
                    Severity::Error,
                    format!("{id} transitions.log:{}", lineno + 1),
                    format!("broken chain: transition starts at `{from}` but the job was `{prev}`"),
                    "each logged transition must start where the previous one ended",
                );
            }
            if !valid_transition(from, to) {
                report.push(
                    "JS007",
                    Severity::Error,
                    format!("{id} transitions.log:{}", lineno + 1),
                    format!("`{from} -> {to}` is not an edge of the job state machine"),
                    "see DESIGN.md §16 for the state machine",
                );
            }
            prev = to.to_string();
        }
        if prev != state {
            report.push(
                "JS007",
                Severity::Error,
                id,
                format!("transition log ends at `{prev}` but the state file says `{state}`"),
                "the state file and the log tail are written by the same transition",
            );
        }
    }
    // JS008 — terminal-state artifact consistency.
    let has_report = dir.join("report.json").is_file();
    if state == "done" && !has_report {
        report.push(
            "JS008",
            Severity::Error,
            id,
            "state is `done` but report.json is missing",
            "report.json is renamed into place before the done transition",
        );
    }
    if state != "done" && has_report {
        report.push(
            "JS008",
            Severity::Error,
            id,
            format!("report.json present but state is `{state}`"),
            "only the done transition may leave a report.json behind",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(grid: &'a [f64]) -> JobSpecView<'a> {
        JobSpecView {
            id: "job-1",
            benchmark: Some("matmul"),
            has_asm: false,
            samples: 8,
            grid,
            chips: 4,
            mc_inputs: 2,
            threads: 1,
            checkpoint_every: 4,
        }
    }

    const KNOWN: [&str; 2] = ["matmul", "fir"];

    #[test]
    fn clean_spec_produces_no_diagnostics() {
        let mut r = AnalysisReport::new();
        analyze_job_spec(&spec(&[1.0, 1.15]), &KNOWN, &mut r);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn unknown_benchmark_is_js001() {
        let mut r = AnalysisReport::new();
        let mut s = spec(&[1.0]);
        s.benchmark = Some("nope");
        analyze_job_spec(&s, &KNOWN, &mut r);
        assert!(r.has_code("JS001"));
    }

    #[test]
    fn zero_and_double_workloads_are_js001() {
        for (benchmark, has_asm) in [(None, false), (Some("matmul"), true)] {
            let mut r = AnalysisReport::new();
            let mut s = spec(&[1.0]);
            s.benchmark = benchmark;
            s.has_asm = has_asm;
            analyze_job_spec(&s, &KNOWN, &mut r);
            assert!(r.has_code("JS001"), "{benchmark:?} asm={has_asm}");
        }
    }

    #[test]
    fn bad_grids_are_js002() {
        for grid in [&[][..], &[0.0][..], &[-1.0][..], &[f64::NAN][..]] {
            let mut r = AnalysisReport::new();
            analyze_job_spec(&spec(grid), &KNOWN, &mut r);
            assert!(r.has_code("JS002"), "grid {grid:?}");
            assert!(r.has_errors());
        }
        // Duplicates warn but do not error.
        let mut r = AnalysisReport::new();
        analyze_job_spec(&spec(&[1.15, 1.15]), &KNOWN, &mut r);
        assert!(r.has_code("JS002"));
        assert!(!r.has_errors());
    }

    #[test]
    fn zero_params_and_unsafe_ids_are_js003() {
        for mutate in [
            (|s: &mut JobSpecView| s.samples = 0) as fn(&mut JobSpecView),
            |s| s.threads = 0,
            |s| s.checkpoint_every = 0,
            |s| s.id = "",
            |s| s.id = "../escape",
            |s| s.id = ".hidden",
        ] {
            let mut r = AnalysisReport::new();
            let grid = [1.0];
            let mut s = spec(&grid);
            mutate(&mut s);
            analyze_job_spec(&s, &KNOWN, &mut r);
            assert!(r.has_code("JS003"));
        }
    }

    #[test]
    fn mc_population_mismatch_is_js004() {
        for (chips, inputs, bad) in [(0, 2, true), (4, 0, true), (0, 0, false), (4, 2, false)] {
            let mut r = AnalysisReport::new();
            let grid = [1.0];
            let mut s = spec(&grid);
            s.chips = chips;
            s.mc_inputs = inputs;
            analyze_job_spec(&s, &KNOWN, &mut r);
            assert_eq!(r.has_code("JS004"), bad, "chips={chips} inputs={inputs}");
        }
    }

    #[test]
    fn transition_table_matches_the_design() {
        // Positive edges.
        for (from, to) in [
            ("queued", "running"),
            ("queued", "cancelled"),
            ("running", "done"),
            ("running", "failed"),
            ("running", "cancelled"),
            ("running", "queued"),
        ] {
            assert!(valid_transition(from, to), "{from} -> {to}");
        }
        // Everything else is invalid, including self-loops and edges out
        // of terminal states.
        for from in JOB_STATES {
            for to in JOB_STATES {
                let expected = matches!(
                    (from, to),
                    ("queued", "running" | "cancelled")
                        | ("running", "done" | "failed" | "cancelled" | "queued")
                );
                assert_eq!(valid_transition(from, to), expected, "{from} -> {to}");
            }
        }
        assert!(!valid_transition("queued", "bogus"));
        assert!(!valid_transition("bogus", "running"));
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("terse_jobpass_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(p.join("jobs")).unwrap();
        p
    }

    fn write_job(root: &Path, id: &str, state: &str, log: &str, with_report: bool) {
        let dir = root.join("jobs").join(id);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("spec.json"), "{}").unwrap();
        std::fs::write(dir.join("state"), state).unwrap();
        if !log.is_empty() {
            std::fs::write(dir.join("transitions.log"), log).unwrap();
        }
        if with_report {
            std::fs::write(dir.join("report.json"), "{}").unwrap();
        }
    }

    #[test]
    fn clean_store_passes_and_counts_jobs() {
        let root = temp_store("clean");
        write_job(&root, "a", "queued", "", false);
        write_job(
            &root,
            "b",
            "done",
            "queued -> running\nrunning -> done\n",
            true,
        );
        let mut r = AnalysisReport::new();
        let n = analyze_job_store(&root, &mut r).unwrap();
        assert_eq!(n, 2);
        assert!(r.is_clean(), "{}", r.render_text());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn store_violations_get_their_codes() {
        let root = temp_store("dirty");
        // JS005: missing state file.
        let dir = root.join("jobs").join("nostate");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("spec.json"), "{}").unwrap();
        // JS006: unknown state.
        write_job(&root, "badstate", "paused", "", false);
        // JS007: invalid edge and broken chain.
        write_job(
            &root,
            "badlog",
            "done",
            "queued -> done\nrunning -> done\n",
            true,
        );
        // JS008: done without a report, and a report without done.
        write_job(&root, "noreport", "done", "", false);
        write_job(&root, "earlyreport", "running", "", true);
        let mut r = AnalysisReport::new();
        analyze_job_store(&root, &mut r).unwrap();
        for code in ["JS005", "JS006", "JS007", "JS008"] {
            assert!(r.has_code(code), "{code} missing:\n{}", r.render_text());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn log_tail_must_match_state_file() {
        let root = temp_store("tail");
        write_job(&root, "stale", "queued", "queued -> running\n", false);
        let mut r = AnalysisReport::new();
        analyze_job_store(&root, &mut r).unwrap();
        assert!(r.has_code("JS007"));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
