//! Structural verification of job-server specs and store directories.
//!
//! `terse-serve` (ROADMAP item 2) turns estimation runs into queued batch
//! jobs: a JSON spec per job, a directory-backed store
//! (`jobs/<id>/{spec.json,state,checkpoints/,report.json}`), and a strict
//! state machine (`queued → running → done/failed/cancelled/quarantined`,
//! plus the recovery edge `running → queued` for crashed, hung, or
//! time-sliced workers; `quarantined` is the terminal state for jobs that
//! exhausted their retry budget and carry a diagnostic bundle).
//! This pass is the single source of truth for what a *valid* spec and a
//! *valid* store look like; the serve crate delegates its own guards to
//! [`valid_transition`] and runs [`analyze_job_spec`] before admitting a
//! job, so the executor and the analyzer can never disagree.
//!
//! The pass operates on [`JobSpecView`] — a borrowed, crate-neutral
//! projection of the serve crate's `JobSpec` — because `terse-serve`
//! depends on `terse-analyze`, not the other way around.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | JS001 | error    | workload unresolved: unknown benchmark name, or neither/both of benchmark and inline asm given |
//! | JS002 | error    | invalid operating-point grid: empty, or a non-finite / non-positive overclock factor (duplicates are a warning) |
//! | JS003 | error    | invalid parameters: empty or unsafe job id, zero samples, zero threads, zero checkpoint interval |
//! | JS004 | error    | Monte Carlo population mismatch: exactly one of `chips` / `mc_inputs` is zero |
//! | JS013 | error    | invalid phase-sampling section: zero window size or zero cluster cap |
//! | JS005 | error    | store layout violation: missing `spec.json` or `state`, or a non-directory under `jobs/` |
//! | JS006 | error    | invalid state file: contents are not one of the six states |
//! | JS007 | error    | transition-log violation: an edge outside the state machine, or a broken chain |
//! | JS008 | error    | state/artifact inconsistency: `done` without `report.json`, or `report.json` without `done` |
//!
//! The **scrub** family (JS009–JS012, [`scrub_job_store`]) goes one layer
//! deeper than the structural audit: it opens every durable artifact and
//! verifies its integrity envelope (see [`crate::integrity`]):
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | JS009 | error    | damaged checkpoint: a `TERSEFR1` frame that is torn, checksum-corrupt, or of an unknown version (legacy unframed checkpoints are a warning) |
//! | JS010 | error    | report digest mismatch: `report.json` does not match its `report.json.crc32` sidecar (missing sidecar on a legacy report is a warning) |
//! | JS011 | error    | damaged store file: a zero-length artifact (stray `*.tmp.*` writer leftovers and `.corrupt` evidence files are warnings) |
//! | JS012 | error    | incomplete quarantine: a `quarantined` job missing its diagnostic bundle (`quarantine/{spec.json,error.txt,transitions.log,attempts}`) or top-level `error.txt` |

use crate::{AnalysisReport, Severity};
use std::path::Path;

/// The six job states, in canonical string form.
pub const JOB_STATES: [&str; 6] = [
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
    "quarantined",
];

/// Whether `state` is one of the four terminal states.
pub fn is_terminal_state(state: &str) -> bool {
    matches!(state, "done" | "failed" | "cancelled" | "quarantined")
}

/// The job state machine, as a pure edge predicate. This is the only
/// transition table in the workspace — `terse-serve` routes every state
/// write through it.
///
/// Edges:
///
/// * `queued → running` (a worker claims the job)
/// * `queued → cancelled` (cancel before any worker claims it)
/// * `running → done | failed | cancelled`
/// * `running → queued` (recovery: the worker died, hung, overran its
///   deadline, or the job was time-sliced at a checkpoint boundary; the
///   checkpoint makes the re-run bit-exact)
/// * `running → quarantined` (the retry budget is exhausted: the job is
///   parked terminally with a diagnostic bundle instead of retrying
///   forever)
///
/// Terminal states have no outgoing edges. Unknown state strings have no
/// edges at all.
pub fn valid_transition(from: &str, to: &str) -> bool {
    matches!(
        (from, to),
        ("queued", "running" | "cancelled")
            | (
                "running",
                "done" | "failed" | "cancelled" | "queued" | "quarantined"
            )
    )
}

/// A borrowed projection of a job spec, decoupled from the serve crate's
/// concrete `JobSpec` type.
#[derive(Debug, Clone, Copy)]
pub struct JobSpecView<'a> {
    /// Job identifier (directory name under `jobs/`).
    pub id: &'a str,
    /// Named benchmark workload, if the spec references one.
    pub benchmark: Option<&'a str>,
    /// Whether the spec carries an inline assembly workload.
    pub has_asm: bool,
    /// Estimation sample count (lambda replicas).
    pub samples: u64,
    /// Operating-point grid: overclock factors relative to the rated
    /// period.
    pub grid: &'a [f64],
    /// Monte Carlo chip population size (0 = Monte Carlo disabled).
    pub chips: usize,
    /// Monte Carlo inputs per chip (0 = Monte Carlo disabled).
    pub mc_inputs: usize,
    /// Worker-local rayon threads.
    pub threads: usize,
    /// Checkpoint flush interval (blocks / cells).
    pub checkpoint_every: usize,
    /// Phase-sampled estimation knobs `(window_size, max_clusters)`, if
    /// the spec enables SimPoint-style sampling (`None` = exact runs).
    pub sampling: Option<(u64, u64)>,
}

/// Whether `id` is safe to use verbatim as a store directory name.
pub fn safe_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        && !id.starts_with('.')
}

/// Runs every spec pass (JS001–JS004), appending findings to `report`.
///
/// `known_workloads` is the benchmark namespace to resolve against
/// (callers pass the `terse-workloads` registry). Emission order is
/// deterministic: checks run in code order.
pub fn analyze_job_spec(
    spec: &JobSpecView<'_>,
    known_workloads: &[&str],
    report: &mut AnalysisReport,
) {
    let entity = if spec.id.is_empty() { "<job>" } else { spec.id };
    // JS001 — the workload must resolve to exactly one source.
    match (spec.benchmark, spec.has_asm) {
        (None, false) => report.push(
            "JS001",
            Severity::Error,
            entity,
            "spec names no workload: neither `benchmark` nor `asm` is present",
            "set `workload.benchmark` to a known name or provide `workload.asm`",
        ),
        (Some(_), true) => report.push(
            "JS001",
            Severity::Error,
            entity,
            "spec names two workloads: both `benchmark` and `asm` are present",
            "keep exactly one of `workload.benchmark` and `workload.asm`",
        ),
        (Some(name), false) if !known_workloads.contains(&name) => report.push(
            "JS001",
            Severity::Error,
            entity,
            format!("unknown benchmark `{name}`"),
            format!("known benchmarks: {}", known_workloads.join(", ")),
        ),
        _ => {}
    }
    // JS002 — the operating-point grid must be non-empty, finite, positive.
    if spec.grid.is_empty() {
        report.push(
            "JS002",
            Severity::Error,
            entity,
            "operating-point grid is empty",
            "list at least one overclock factor in `grid`",
        );
    }
    for (i, &f) in spec.grid.iter().enumerate() {
        if !(f > 0.0) || !f.is_finite() {
            report.push(
                "JS002",
                Severity::Error,
                format!("{entity} grid[{i}]"),
                format!("overclock factor {f} is not a finite positive number"),
                "overclock factors scale the rated period and must be finite and > 0",
            );
        }
    }
    for (i, &f) in spec.grid.iter().enumerate() {
        if spec.grid[..i].iter().any(|&g| g.to_bits() == f.to_bits()) {
            report.push(
                "JS002",
                Severity::Warning,
                format!("{entity} grid[{i}]"),
                format!("duplicate overclock factor {f}"),
                "duplicate grid points repeat identical work",
            );
        }
    }
    // JS003 — scalar parameters must be usable as-is (no silent clamping).
    if !safe_job_id(spec.id) {
        report.push(
            "JS003",
            Severity::Error,
            entity,
            format!("job id `{}` is not a safe store directory name", spec.id),
            "ids are 1-64 chars of [A-Za-z0-9._-], not starting with `.`",
        );
    }
    for (value, what, hint) in [
        (spec.samples as usize, "samples", "lambda replicas"),
        (spec.threads, "threads", "worker-local rayon threads"),
        (
            spec.checkpoint_every,
            "checkpoint_every",
            "blocks/cells per checkpoint flush",
        ),
    ] {
        if value == 0 {
            report.push(
                "JS003",
                Severity::Error,
                entity,
                format!("`{what}` is 0"),
                format!("`{what}` ({hint}) must be >= 1"),
            );
        }
    }
    // JS004 — the Monte Carlo grid is (chips × inputs): both or neither.
    if (spec.chips == 0) != (spec.mc_inputs == 0) {
        report.push(
            "JS004",
            Severity::Error,
            entity,
            format!(
                "Monte Carlo population mismatch: chips = {}, mc_inputs = {}",
                spec.chips, spec.mc_inputs
            ),
            "set both `chips` and `mc_inputs` to >= 1 (enable) or both to 0 (disable)",
        );
    }
    // JS013 — phase-sampling knobs must be usable as-is.
    if let Some((window_size, max_clusters)) = spec.sampling {
        if window_size == 0 {
            report.push(
                "JS013",
                Severity::Error,
                entity,
                "`sampling.window_size` is 0",
                "windows slice the trace; instructions per window must be >= 1",
            );
        }
        if max_clusters == 0 {
            report.push(
                "JS013",
                Severity::Error,
                entity,
                "`sampling.max_clusters` is 0",
                "at least one phase must be simulated; set `sampling.max_clusters` >= 1",
            );
        }
    }
}

/// Runs the store-layout passes (JS005–JS008) over every entry of a job
/// store root (the directory that contains `jobs/`), appending findings
/// to `report`. Returns the number of job directories inspected.
///
/// The pass is read-only and tolerant of live stores: a `running` job
/// with in-flight checkpoints is valid; only structural violations that
/// no crash window of the serve crate's atomic write protocol can
/// produce are diagnosed.
///
/// # Errors
///
/// Returns `Err` only if the store root itself is unreadable; per-job
/// read failures become JS005 diagnostics.
pub fn analyze_job_store(root: &Path, report: &mut AnalysisReport) -> std::io::Result<usize> {
    let jobs = root.join("jobs");
    if !jobs.is_dir() {
        report.push(
            "JS005",
            Severity::Error,
            root.display().to_string(),
            "store root has no jobs/ directory",
            "initialize the store with `terse serve --store <root>` or `terse submit`",
        );
        return Ok(0);
    }
    let mut ids: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&jobs)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.file_type()?.is_dir() {
            ids.push(name);
        } else {
            report.push(
                "JS005",
                Severity::Error,
                format!("jobs/{name}"),
                "non-directory entry in jobs/",
                "only per-job directories may live under jobs/",
            );
        }
    }
    ids.sort();
    for id in &ids {
        analyze_job_dir(&jobs.join(id), id, report);
    }
    Ok(ids.len())
}

/// JS005–JS008 for a single `jobs/<id>/` directory.
fn analyze_job_dir(dir: &Path, id: &str, report: &mut AnalysisReport) {
    // JS005 — required artifacts.
    if !dir.join("spec.json").is_file() {
        report.push(
            "JS005",
            Severity::Error,
            id,
            "missing spec.json",
            "a job directory is created by writing spec.json first",
        );
    }
    let state = match std::fs::read_to_string(dir.join("state")) {
        Ok(s) => s.trim().to_string(),
        Err(_) => {
            report.push(
                "JS005",
                Severity::Error,
                id,
                "missing or unreadable state file",
                "the state file is written atomically at submit time",
            );
            return;
        }
    };
    // JS006 — the state must be one of the six canonical strings.
    if !JOB_STATES.contains(&state.as_str()) {
        report.push(
            "JS006",
            Severity::Error,
            id,
            format!("state file contains unknown state `{state}`"),
            format!("states: {}", JOB_STATES.join(", ")),
        );
        return;
    }
    // JS007 — the transition log must be a valid chain from `queued`
    // ending at the current state.
    if let Ok(log) = std::fs::read_to_string(dir.join("transitions.log")) {
        let mut prev = "queued".to_string();
        for (lineno, line) in log.lines().enumerate() {
            let Some((from, to)) = line.split_once(" -> ") else {
                report.push(
                    "JS007",
                    Severity::Error,
                    format!("{id} transitions.log:{}", lineno + 1),
                    format!("malformed log line `{line}`"),
                    "log lines are `<from> -> <to>`",
                );
                return;
            };
            if from != prev {
                report.push(
                    "JS007",
                    Severity::Error,
                    format!("{id} transitions.log:{}", lineno + 1),
                    format!("broken chain: transition starts at `{from}` but the job was `{prev}`"),
                    "each logged transition must start where the previous one ended",
                );
            }
            if !valid_transition(from, to) {
                report.push(
                    "JS007",
                    Severity::Error,
                    format!("{id} transitions.log:{}", lineno + 1),
                    format!("`{from} -> {to}` is not an edge of the job state machine"),
                    "see DESIGN.md §16 for the state machine",
                );
            }
            prev = to.to_string();
        }
        if prev != state {
            report.push(
                "JS007",
                Severity::Error,
                id,
                format!("transition log ends at `{prev}` but the state file says `{state}`"),
                "the state file and the log tail are written by the same transition",
            );
        }
    }
    // JS008 — terminal-state artifact consistency.
    let has_report = dir.join("report.json").is_file();
    if state == "done" && !has_report {
        report.push(
            "JS008",
            Severity::Error,
            id,
            "state is `done` but report.json is missing",
            "report.json is renamed into place before the done transition",
        );
    }
    if state != "done" && has_report {
        report.push(
            "JS008",
            Severity::Error,
            id,
            format!("report.json present but state is `{state}`"),
            "only the done transition may leave a report.json behind",
        );
    }
}

/// Walks a job store verifying **every durable artifact's integrity**
/// (JS009–JS012) on top of the structural JS005–JS008 audit. This is the
/// pass behind `terse scrub`. Returns the number of job directories
/// inspected.
///
/// Unlike the structural audit, the scrub opens file *contents*: every
/// `*.ckpt` / `*.ckpt.bak` image is unframed and checksum-verified
/// (JS009), every `report.json` is compared against its `.crc32` sidecar
/// digest (JS010), zero-length artifacts and writer leftovers are flagged
/// (JS011), and `quarantined` jobs must carry a complete diagnostic
/// bundle (JS012). The pass is read-only and safe on a live store: an
/// artifact mid-replacement is still either the old or the new complete
/// image (tmp+rename), never a torn hybrid.
///
/// # Errors
///
/// Returns `Err` only if the store root itself is unreadable; per-job
/// read failures become diagnostics.
pub fn scrub_job_store(root: &Path, report: &mut AnalysisReport) -> std::io::Result<usize> {
    let inspected = analyze_job_store(root, report)?;
    let jobs = root.join("jobs");
    if !jobs.is_dir() {
        return Ok(inspected);
    }
    let mut ids: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&jobs)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            ids.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    ids.sort();
    for id in &ids {
        scrub_job_dir(&jobs.join(id), id, report);
    }
    Ok(inspected)
}

/// Sorted file names directly under `dir` (empty if unreadable).
fn sorted_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect(),
        Err(_) => Vec::new(),
    };
    names.sort();
    names
}

/// JS009–JS012 for a single `jobs/<id>/` directory.
fn scrub_job_dir(dir: &Path, id: &str, report: &mut AnalysisReport) {
    let state = std::fs::read_to_string(dir.join("state"))
        .map(|s| s.trim().to_string())
        .unwrap_or_default();

    // JS011 over the job directory itself: zero-length core artifacts and
    // stray writer leftovers.
    for name in sorted_files(dir) {
        let path = dir.join(&name);
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(1);
        if name.contains(".tmp") {
            report.push(
                "JS011",
                Severity::Warning,
                format!("{id}/{name}"),
                "stray temp file from an interrupted writer",
                "tmp files are never read; delete after confirming no writer is live",
            );
        } else if len == 0 && name != "claim" && name != "cancel" && !name.starts_with('.') {
            // Dotfiles (the `.lock` transition lock) are coordination
            // primitives, legitimately empty — only artifacts are audited.
            report.push(
                "JS011",
                Severity::Error,
                format!("{id}/{name}"),
                "zero-length artifact",
                "store artifacts are written whole via tmp+rename; a zero-length file is damage",
            );
        }
    }

    // JS009 + JS011 over the checkpoint directory.
    let ckpts = dir.join("checkpoints");
    for name in sorted_files(&ckpts) {
        let path = ckpts.join(&name);
        if name.contains(".tmp") {
            report.push(
                "JS011",
                Severity::Warning,
                format!("{id}/checkpoints/{name}"),
                "stray temp file from an interrupted writer",
                "tmp files are never read; delete after confirming no worker is live",
            );
            continue;
        }
        if name.ends_with(".corrupt") {
            report.push(
                "JS011",
                Severity::Warning,
                format!("{id}/checkpoints/{name}"),
                "corruption evidence: a loader detected a damaged image and set it aside",
                "the job recomputed from the previous good image; delete after diagnosis",
            );
            continue;
        }
        if !(name.ends_with(".ckpt") || name.ends_with(".ckpt.bak")) {
            continue;
        }
        let Ok(bytes) = std::fs::read(&path) else {
            report.push(
                "JS011",
                Severity::Error,
                format!("{id}/checkpoints/{name}"),
                "unreadable checkpoint file",
                "check permissions and the underlying filesystem",
            );
            continue;
        };
        if bytes.is_empty() {
            report.push(
                "JS011",
                Severity::Error,
                format!("{id}/checkpoints/{name}"),
                "zero-length checkpoint",
                "loaders treat this as damage and fall back; safe to delete",
            );
            continue;
        }
        match crate::integrity::unframe(&bytes) {
            Ok(_) => {}
            Err(crate::integrity::FrameError::NotFramed) => report.push(
                "JS009",
                Severity::Warning,
                format!("{id}/checkpoints/{name}"),
                "legacy unframed checkpoint (no TERSEFR1 envelope)",
                "rewritten with an envelope on the next flush; corruption is undetectable until then",
            ),
            Err(e) => report.push(
                "JS009",
                Severity::Error,
                format!("{id}/checkpoints/{name}"),
                format!("damaged checkpoint: {e}"),
                "loaders fall back to the .bak image or a fresh start; delete after diagnosis",
            ),
        }
    }

    // JS010 — report.json digest sidecar.
    let report_path = dir.join("report.json");
    if let Ok(bytes) = std::fs::read(&report_path) {
        match std::fs::read_to_string(dir.join("report.json.crc32")) {
            Ok(sidecar) => {
                let computed = crate::integrity::crc32_hex(&bytes);
                if sidecar.trim() != computed {
                    report.push(
                        "JS010",
                        Severity::Error,
                        format!("{id}/report.json"),
                        format!(
                            "report digest mismatch: sidecar says {}, content is {computed}",
                            sidecar.trim()
                        ),
                        "the report was altered after it was stamped; re-run the job",
                    );
                }
            }
            Err(_) => report.push(
                "JS010",
                Severity::Warning,
                format!("{id}/report.json"),
                "report has no .crc32 digest sidecar",
                "legacy report (pre-digest); re-running the job stamps it",
            ),
        }
    }

    // JS012 — quarantine bundle completeness.
    let bundle = dir.join("quarantine");
    if state == "quarantined" {
        if !dir.join("error.txt").is_file() {
            report.push(
                "JS012",
                Severity::Error,
                id,
                "quarantined job has no error.txt",
                "the quarantine transition records the final error before parking the job",
            );
        }
        for piece in ["spec.json", "error.txt", "transitions.log", "attempts"] {
            if !bundle.join(piece).is_file() {
                report.push(
                    "JS012",
                    Severity::Error,
                    format!("{id}/quarantine/{piece}"),
                    "diagnostic bundle is incomplete",
                    "quarantine/ must capture spec.json, error.txt, transitions.log and attempts",
                );
            }
        }
    } else if bundle.is_dir() {
        report.push(
            "JS012",
            Severity::Warning,
            format!("{id}/quarantine"),
            format!("quarantine bundle present but state is `{state}`"),
            "only the quarantine transition creates this directory",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(grid: &'a [f64]) -> JobSpecView<'a> {
        JobSpecView {
            id: "job-1",
            benchmark: Some("matmul"),
            has_asm: false,
            samples: 8,
            grid,
            chips: 4,
            mc_inputs: 2,
            threads: 1,
            checkpoint_every: 4,
            sampling: None,
        }
    }

    const KNOWN: [&str; 2] = ["matmul", "fir"];

    #[test]
    fn clean_spec_produces_no_diagnostics() {
        let mut r = AnalysisReport::new();
        analyze_job_spec(&spec(&[1.0, 1.15]), &KNOWN, &mut r);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn unknown_benchmark_is_js001() {
        let mut r = AnalysisReport::new();
        let mut s = spec(&[1.0]);
        s.benchmark = Some("nope");
        analyze_job_spec(&s, &KNOWN, &mut r);
        assert!(r.has_code("JS001"));
    }

    #[test]
    fn zero_and_double_workloads_are_js001() {
        for (benchmark, has_asm) in [(None, false), (Some("matmul"), true)] {
            let mut r = AnalysisReport::new();
            let mut s = spec(&[1.0]);
            s.benchmark = benchmark;
            s.has_asm = has_asm;
            analyze_job_spec(&s, &KNOWN, &mut r);
            assert!(r.has_code("JS001"), "{benchmark:?} asm={has_asm}");
        }
    }

    #[test]
    fn bad_grids_are_js002() {
        for grid in [&[][..], &[0.0][..], &[-1.0][..], &[f64::NAN][..]] {
            let mut r = AnalysisReport::new();
            analyze_job_spec(&spec(grid), &KNOWN, &mut r);
            assert!(r.has_code("JS002"), "grid {grid:?}");
            assert!(r.has_errors());
        }
        // Duplicates warn but do not error.
        let mut r = AnalysisReport::new();
        analyze_job_spec(&spec(&[1.15, 1.15]), &KNOWN, &mut r);
        assert!(r.has_code("JS002"));
        assert!(!r.has_errors());
    }

    #[test]
    fn zero_params_and_unsafe_ids_are_js003() {
        for mutate in [
            (|s: &mut JobSpecView| s.samples = 0) as fn(&mut JobSpecView),
            |s| s.threads = 0,
            |s| s.checkpoint_every = 0,
            |s| s.id = "",
            |s| s.id = "../escape",
            |s| s.id = ".hidden",
        ] {
            let mut r = AnalysisReport::new();
            let grid = [1.0];
            let mut s = spec(&grid);
            mutate(&mut s);
            analyze_job_spec(&s, &KNOWN, &mut r);
            assert!(r.has_code("JS003"));
        }
    }

    #[test]
    fn mc_population_mismatch_is_js004() {
        for (chips, inputs, bad) in [(0, 2, true), (4, 0, true), (0, 0, false), (4, 2, false)] {
            let mut r = AnalysisReport::new();
            let grid = [1.0];
            let mut s = spec(&grid);
            s.chips = chips;
            s.mc_inputs = inputs;
            analyze_job_spec(&s, &KNOWN, &mut r);
            assert_eq!(r.has_code("JS004"), bad, "chips={chips} inputs={inputs}");
        }
    }

    #[test]
    fn zero_sampling_knobs_are_js013() {
        for (sampling, bad) in [
            (Some((0, 8)), true),
            (Some((256, 0)), true),
            (Some((0, 0)), true),
            (Some((256, 8)), false),
            (None, false),
        ] {
            let mut r = AnalysisReport::new();
            let grid = [1.0];
            let mut s = spec(&grid);
            s.sampling = sampling;
            analyze_job_spec(&s, &KNOWN, &mut r);
            assert_eq!(r.has_code("JS013"), bad, "sampling={sampling:?}");
        }
    }

    #[test]
    fn transition_table_matches_the_design() {
        // Positive edges.
        for (from, to) in [
            ("queued", "running"),
            ("queued", "cancelled"),
            ("running", "done"),
            ("running", "failed"),
            ("running", "cancelled"),
            ("running", "queued"),
            ("running", "quarantined"),
        ] {
            assert!(valid_transition(from, to), "{from} -> {to}");
        }
        // Everything else is invalid, including self-loops and edges out
        // of terminal states.
        for from in JOB_STATES {
            for to in JOB_STATES {
                let expected = matches!(
                    (from, to),
                    ("queued", "running" | "cancelled")
                        | (
                            "running",
                            "done" | "failed" | "cancelled" | "queued" | "quarantined"
                        )
                );
                assert_eq!(valid_transition(from, to), expected, "{from} -> {to}");
            }
        }
        assert!(!valid_transition("queued", "bogus"));
        assert!(!valid_transition("bogus", "running"));
        // Terminal states are exactly the states with no outgoing edges.
        for s in JOB_STATES {
            let has_exit = JOB_STATES.iter().any(|t| valid_transition(s, t));
            assert_eq!(is_terminal_state(s), !has_exit, "{s}");
        }
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("terse_jobpass_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(p.join("jobs")).unwrap();
        p
    }

    fn write_job(root: &Path, id: &str, state: &str, log: &str, with_report: bool) {
        let dir = root.join("jobs").join(id);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("spec.json"), "{}").unwrap();
        std::fs::write(dir.join("state"), state).unwrap();
        if !log.is_empty() {
            std::fs::write(dir.join("transitions.log"), log).unwrap();
        }
        if with_report {
            std::fs::write(dir.join("report.json"), "{}").unwrap();
        }
    }

    #[test]
    fn clean_store_passes_and_counts_jobs() {
        let root = temp_store("clean");
        write_job(&root, "a", "queued", "", false);
        write_job(
            &root,
            "b",
            "done",
            "queued -> running\nrunning -> done\n",
            true,
        );
        let mut r = AnalysisReport::new();
        let n = analyze_job_store(&root, &mut r).unwrap();
        assert_eq!(n, 2);
        assert!(r.is_clean(), "{}", r.render_text());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn store_violations_get_their_codes() {
        let root = temp_store("dirty");
        // JS005: missing state file.
        let dir = root.join("jobs").join("nostate");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("spec.json"), "{}").unwrap();
        // JS006: unknown state.
        write_job(&root, "badstate", "paused", "", false);
        // JS007: invalid edge and broken chain.
        write_job(
            &root,
            "badlog",
            "done",
            "queued -> done\nrunning -> done\n",
            true,
        );
        // JS008: done without a report, and a report without done.
        write_job(&root, "noreport", "done", "", false);
        write_job(&root, "earlyreport", "running", "", true);
        let mut r = AnalysisReport::new();
        analyze_job_store(&root, &mut r).unwrap();
        for code in ["JS005", "JS006", "JS007", "JS008"] {
            assert!(r.has_code(code), "{code} missing:\n{}", r.render_text());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn log_tail_must_match_state_file() {
        let root = temp_store("tail");
        write_job(&root, "stale", "queued", "queued -> running\n", false);
        let mut r = AnalysisReport::new();
        analyze_job_store(&root, &mut r).unwrap();
        assert!(r.has_code("JS007"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn quarantined_is_a_valid_terminal_state_for_the_audit() {
        let root = temp_store("quar");
        write_job(
            &root,
            "q",
            "quarantined",
            "queued -> running\nrunning -> quarantined\n",
            false,
        );
        let mut r = AnalysisReport::new();
        analyze_job_store(&root, &mut r).unwrap();
        assert!(r.is_clean(), "{}", r.render_text());
        std::fs::remove_dir_all(&root).unwrap();
    }

    fn write_quarantine_bundle(root: &Path, id: &str) {
        let dir = root.join("jobs").join(id);
        std::fs::write(dir.join("error.txt"), "boom").unwrap();
        let bundle = dir.join("quarantine");
        std::fs::create_dir_all(&bundle).unwrap();
        for (name, body) in [
            ("spec.json", "{}"),
            ("error.txt", "boom"),
            ("transitions.log", "queued -> running\n"),
            ("attempts", "3"),
        ] {
            std::fs::write(bundle.join(name), body).unwrap();
        }
    }

    #[test]
    fn scrub_is_clean_on_a_healthy_store() {
        let root = temp_store("scrub_clean");
        write_job(&root, "a", "queued", "", false);
        write_job(
            &root,
            "q",
            "quarantined",
            "queued -> running\nrunning -> quarantined\n",
            false,
        );
        write_quarantine_bundle(&root, "q");
        // A framed checkpoint and a digest-stamped report survive the scrub.
        let dir = root.join("jobs").join("done1");
        std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
        std::fs::write(dir.join("spec.json"), "{}").unwrap();
        std::fs::write(dir.join("state"), "done").unwrap();
        std::fs::write(
            dir.join("transitions.log"),
            "queued -> running\nrunning -> done\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("checkpoints").join("est-0.ckpt"),
            crate::integrity::frame(b"TERSECP1 payload"),
        )
        .unwrap();
        let report_body = b"{\"points\":[]}";
        std::fs::write(dir.join("report.json"), report_body).unwrap();
        std::fs::write(
            dir.join("report.json.crc32"),
            crate::integrity::crc32_hex(report_body),
        )
        .unwrap();
        let mut r = AnalysisReport::new();
        let n = scrub_job_store(&root, &mut r).unwrap();
        assert_eq!(n, 3);
        assert!(r.is_clean(), "{}", r.render_text());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scrub_violations_get_their_codes() {
        let root = temp_store("scrub_dirty");
        let dir = root.join("jobs").join("sick");
        std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
        std::fs::write(dir.join("spec.json"), "{}").unwrap();
        std::fs::write(dir.join("state"), "done").unwrap();
        std::fs::write(
            dir.join("transitions.log"),
            "queued -> running\nrunning -> done\n",
        )
        .unwrap();
        // JS009: a checksum-corrupt frame.
        let mut image = crate::integrity::frame(b"TERSECP1 payload");
        let last = image.len() - 1;
        image[last] ^= 0x40;
        std::fs::write(dir.join("checkpoints").join("est-0.ckpt"), image).unwrap();
        // JS010: sidecar does not match the report bytes.
        std::fs::write(dir.join("report.json"), "{\"points\":[]}").unwrap();
        std::fs::write(dir.join("report.json.crc32"), "00000000").unwrap();
        // JS011: a zero-length checkpoint and a stray tmp file.
        std::fs::write(dir.join("checkpoints").join("mc-0.ckpt"), b"").unwrap();
        std::fs::write(dir.join("checkpoints").join("est-1.ckpt.tmp.42"), b"x").unwrap();
        // JS012: quarantined job with no bundle at all.
        write_job(
            &root,
            "qbad",
            "quarantined",
            "queued -> running\nrunning -> quarantined\n",
            false,
        );
        let mut r = AnalysisReport::new();
        scrub_job_store(&root, &mut r).unwrap();
        for code in ["JS009", "JS010", "JS011", "JS012"] {
            assert!(r.has_code(code), "{code} missing:\n{}", r.render_text());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scrub_flags_legacy_artifacts_as_warnings_not_errors() {
        let root = temp_store("scrub_legacy");
        let dir = root.join("jobs").join("old");
        std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
        std::fs::write(dir.join("spec.json"), "{}").unwrap();
        std::fs::write(dir.join("state"), "done").unwrap();
        std::fs::write(
            dir.join("transitions.log"),
            "queued -> running\nrunning -> done\n",
        )
        .unwrap();
        // Pre-framing checkpoint, pre-digest report: warnings only.
        std::fs::write(dir.join("checkpoints").join("est-0.ckpt"), b"TERSECP1 old").unwrap();
        std::fs::write(dir.join("report.json"), "{\"points\":[]}").unwrap();
        let mut r = AnalysisReport::new();
        scrub_job_store(&root, &mut r).unwrap();
        assert!(r.has_code("JS009") && r.has_code("JS010"));
        assert!(!r.has_errors(), "{}", r.render_text());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
