//! Dogfood: the workspace's own sources must pass the codebase lints.
//! Every hash-iteration or panic site is either fixed or carries an
//! audited `terse-analyze: allow(...)` marker / clippy allow attribute.

use std::path::Path;
use terse_analyze::{lint::lint_workspace, AnalysisReport};

#[test]
fn workspace_sources_are_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut report = AnalysisReport::new();
    let scanned = lint_workspace(&root, &mut report).expect("workspace scan");
    assert!(
        scanned > 50,
        "expected to scan the whole workspace, got {scanned}"
    );
    assert!(
        report.is_clean(),
        "workspace lint findings:\n{}",
        report.render_text()
    );
}
