//! Property-based tests for the marginal-probability solver and Tarjan.

use proptest::prelude::*;
use std::collections::HashMap;
use terse_errmodel::marginal::{solve_marginals, MarginalProblem};
use terse_errmodel::strongly_connected_components;
use terse_isa::BlockId;
use terse_stats::SampleRv;

/// A random strongly-exercised marginal problem over `m` blocks.
fn random_problem(seed: u64, m: usize, samples: usize) -> MarginalProblem {
    let mut rng = terse_stats::rng::Xoshiro256::seed_from_u64(seed);
    let mut edge_counts: HashMap<(BlockId, BlockId), Vec<f64>> = HashMap::new();
    let mut block_counts = vec![vec![0.0f64; samples]; m];
    for c in &mut block_counts[0] {
        *c = 1.0;
    }
    for _ in 0..(2 * m) {
        let a = rng.next_below(m as u64) as u32;
        let b = rng.next_below(m as u64) as u32;
        let entry = edge_counts
            .entry((BlockId(a), BlockId(b)))
            .or_insert_with(|| vec![0.0; samples]);
        for s in 0..samples {
            let c = (rng.next_below(12) + 1) as f64;
            entry[s] += c;
            block_counts[b as usize][s] += c;
        }
    }
    let rv = |rng: &mut terse_stats::rng::Xoshiro256, hi: f64| {
        SampleRv::from_fn(samples, |_| rng.next_range(0.0, hi))
    };
    let cond_correct: Vec<Vec<SampleRv>> = (0..m)
        .map(|_| (0..3).map(|_| rv(&mut rng, 0.4)).collect())
        .collect();
    let cond_error: Vec<Vec<SampleRv>> = (0..m)
        .map(|_| (0..3).map(|_| rv(&mut rng, 0.9)).collect())
        .collect();
    MarginalProblem {
        cond_correct,
        cond_error,
        edge_counts,
        block_counts,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn marginals_are_probabilities(seed in 0u64..10_000, m in 1usize..8, samples in 1usize..4) {
        let problem = random_problem(seed, m, samples);
        let sol = solve_marginals(&problem).unwrap();
        for blk in &sol.marginal {
            for rv in blk {
                prop_assert!(rv.min() >= 0.0 && rv.max() <= 1.0);
            }
        }
        for rv in sol.input.iter().chain(sol.output.iter()) {
            prop_assert!(rv.min() >= 0.0 && rv.max() <= 1.0);
        }
    }

    #[test]
    fn marginals_satisfy_the_recurrence(seed in 0u64..10_000, m in 1usize..6) {
        // Eq. 1: p_k = p^e_k p_{k-1} + p^c_k (1 − p_{k-1}) must hold exactly
        // for every executed block, sample by sample.
        let problem = random_problem(seed, m, 2);
        let sol = solve_marginals(&problem).unwrap();
        for i in 0..m {
            for s in 0..2 {
                if problem.block_counts[i][s] <= 0.0 {
                    continue;
                }
                let mut prev = sol.input[i].samples()[s];
                for k in 0..3 {
                    let pc = problem.cond_correct[i][k].samples()[s];
                    let pe = problem.cond_error[i][k].samples()[s];
                    let want = (pe * prev + pc * (1.0 - prev)).clamp(0.0, 1.0);
                    let got = sol.marginal[i][k].samples()[s];
                    prop_assert!((got - want).abs() < 1e-9, "block {i} instr {k}");
                    prev = got;
                }
            }
        }
    }

    #[test]
    fn marginal_between_conditionals(seed in 0u64..10_000, m in 1usize..6) {
        // The marginal is a convex combination of p^c and p^e, so it must
        // lie between them.
        let problem = random_problem(seed, m, 1);
        let sol = solve_marginals(&problem).unwrap();
        for i in 0..m {
            if problem.block_counts[i][0] <= 0.0 {
                continue;
            }
            for k in 0..3 {
                let pc = problem.cond_correct[i][k].samples()[0];
                let pe = problem.cond_error[i][k].samples()[0];
                let p = sol.marginal[i][k].samples()[0];
                let (lo, hi) = if pc <= pe { (pc, pe) } else { (pe, pc) };
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn tarjan_components_partition_nodes(seed in 0u64..5000, n in 1usize..12, edges in 0usize..25) {
        let mut rng = terse_stats::rng::Xoshiro256::seed_from_u64(seed);
        let edge_list: Vec<(usize, usize)> = (0..edges)
            .map(|_| (
                rng.next_below(n as u64) as usize,
                rng.next_below(n as u64) as usize,
            ))
            .collect();
        let comps = strongly_connected_components(n, |v| {
            edge_list.iter().filter(|&&(a, _)| a == v).map(|&(_, b)| b).collect()
        });
        let mut seen = vec![false; n];
        for c in &comps {
            for &v in c {
                prop_assert!(!seen[v], "node {v} in two components");
                seen[v] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
        // Reverse topological order: no edge from an earlier component to a
        // later one may be contradicted... check the defining property: for
        // every edge a→b in different components, b's component comes first.
        let mut comp_of = vec![usize::MAX; n];
        for (ci, c) in comps.iter().enumerate() {
            for &v in c {
                comp_of[v] = ci;
            }
        }
        for &(a, b) in &edge_list {
            if comp_of[a] != comp_of[b] {
                prop_assert!(comp_of[b] < comp_of[a], "edge {a}->{b} violates reverse topo order");
            }
        }
    }
}
