//! The marginal-probability solver (Section 4.2: Eqs. 1 and 2, Tarjan,
//! per-SCC linear systems).
//!
//! All probabilities are data-variation random variables carried as sample
//! vectors; the equations are linear *per sample*, so the solver runs the
//! whole Tarjan + linear-system pipeline once per sample slot and
//! re-assembles [`SampleRv`]s at the end.
//!
//! The paper's flushed-start convention (`p^in = 1` at program entry) falls
//! out naturally here: every block's incoming activation mass that is not
//! explained by profiled edges (exactly 1 execution for the entry block —
//! the initial entry from a flushed machine) is assigned to a *virtual
//! predecessor* whose output error probability is 1.

use crate::tarjan::condensation_order;
use crate::{ErrModelError, Result};
use std::collections::HashMap;
use terse_isa::BlockId;
use terse_stats::{DegradationPolicy, Matrix, SampleRv};

/// The inputs to the marginal solver.
#[derive(Debug, Clone)]
pub struct MarginalProblem {
    /// Per block, per instruction: `p^c` (conditional on correct previous
    /// instruction), one sample slot per input dataset.
    pub cond_correct: Vec<Vec<SampleRv>>,
    /// Per block, per instruction: `p^e` (conditional on errant previous
    /// instruction).
    pub cond_error: Vec<Vec<SampleRv>>,
    /// Per-sample dynamic edge traversal counts.
    pub edge_counts: HashMap<(BlockId, BlockId), Vec<f64>>,
    /// Per block, per sample: execution counts `e_i`.
    pub block_counts: Vec<Vec<f64>>,
}

/// The solved marginal probabilities.
#[derive(Debug, Clone)]
pub struct MarginalSolution {
    /// Per block, per instruction: marginal error probability `p_{i_k}`.
    pub marginal: Vec<Vec<SampleRv>>,
    /// Per block: input error probability `p_i^in`.
    pub input: Vec<SampleRv>,
    /// Per block: output error probability `p_i^out` (= `p_{i,n_i}`).
    pub output: Vec<SampleRv>,
}

impl MarginalProblem {
    fn validate(&self, policy: DegradationPolicy) -> Result<usize> {
        let m = self.cond_correct.len();
        if self.cond_error.len() != m {
            return Err(ErrModelError::DimensionMismatch {
                context: "cond_error blocks",
                expected: m,
                got: self.cond_error.len(),
            });
        }
        if self.block_counts.len() != m {
            return Err(ErrModelError::DimensionMismatch {
                context: "block_counts",
                expected: m,
                got: self.block_counts.len(),
            });
        }
        let samples = self.block_counts.first().map(Vec::len).unwrap_or(0).max(1);
        for (i, (cc, ce)) in self.cond_correct.iter().zip(&self.cond_error).enumerate() {
            if cc.len() != ce.len() {
                return Err(ErrModelError::DimensionMismatch {
                    context: "per-block conditional lengths",
                    expected: cc.len(),
                    got: ce.len(),
                });
            }
            for rv in cc.iter().chain(ce.iter()) {
                if rv.len() != samples {
                    return Err(ErrModelError::DimensionMismatch {
                        context: "sample slots",
                        expected: samples,
                        got: rv.len(),
                    });
                }
                // NaN compares false everywhere, so the range test below
                // would let it through — reject non-finite values explicitly
                // (under both policies: NaN carries nothing to repair from).
                for &x in rv.samples() {
                    if !x.is_finite() {
                        return Err(ErrModelError::NonFinite {
                            context: "conditional probabilities",
                            value: x,
                        });
                    }
                }
                // Under Repair, gross out-of-range values are clamped to
                // [0, 1] at evaluation time instead of rejected here.
                if !policy.is_repair() && (rv.min() < -1e-12 || rv.max() > 1.0 + 1e-12) {
                    return Err(ErrModelError::InvalidProbability {
                        value: if rv.min() < 0.0 { rv.min() } else { rv.max() },
                    });
                }
            }
            if self.block_counts[i].len() != samples {
                return Err(ErrModelError::DimensionMismatch {
                    context: "block_counts samples",
                    expected: samples,
                    got: self.block_counts[i].len(),
                });
            }
            for &c in &self.block_counts[i] {
                if !c.is_finite() {
                    return Err(ErrModelError::NonFinite {
                        context: "block_counts",
                        value: c,
                    });
                }
            }
        }
        // terse-analyze: allow(AZ002): per-item length validation; order-free.
        for counts in self.edge_counts.values() {
            if counts.len() != samples {
                return Err(ErrModelError::DimensionMismatch {
                    context: "edge_counts samples",
                    expected: samples,
                    got: counts.len(),
                });
            }
            for &c in counts {
                if !c.is_finite() {
                    return Err(ErrModelError::NonFinite {
                        context: "edge_counts",
                        value: c,
                    });
                }
            }
        }
        Ok(samples)
    }
}

/// Solves Eqs. 1 and 2 for the whole CFG, per sample, using Tarjan's SCCs
/// and one LU solve per cyclic component.
///
/// Equivalent to [`solve_marginals_with`] under
/// [`DegradationPolicy::Strict`] (the historical fail-fast behavior).
///
/// # Errors
///
/// Returns dimension/probability validation errors, and
/// [`ErrModelError::SingularSystem`] if a component's system is singular
/// (requires `|Π(p^e − p^c)| = 1` around a cycle — degenerate inputs).
pub fn solve_marginals(problem: &MarginalProblem) -> Result<MarginalSolution> {
    solve_marginals_with(problem, DegradationPolicy::Strict)
}

/// Iteration cap for the damped fixed-point fallback used when a per-SCC
/// system is singular under [`DegradationPolicy::Repair`].
const FALLBACK_MAX_ITERS: usize = 10_000;
/// Damping factor of the fallback iteration (`x ← (1−θ)x + θ·f(x)`).
const FALLBACK_DAMPING: f64 = 0.5;
/// Sup-norm convergence tolerance of the fallback iteration.
const FALLBACK_TOL: f64 = 1e-13;

/// [`solve_marginals`] with an explicit [`DegradationPolicy`].
///
/// Under [`DegradationPolicy::Repair`] two bounded fallbacks activate:
///
/// * finite conditional probabilities outside `[0, 1]` are clamped at
///   evaluation time instead of rejected (NaN/±∞ are still rejected — there
///   is nothing to repair from);
/// * a singular per-SCC system falls back to a damped, clamped fixed-point
///   iteration of Eqs. 1–2 (damping ½, `[0, 1]` projection each step,
///   capped at [`FALLBACK_MAX_ITERS`] iterations). Singularity requires
///   `|Π(p^e − p^c)| = 1` around a cycle, where the solution set is a
///   continuum; the iteration deterministically selects the fixed point
///   reached from `x = 0`, which is the one continuous in the problem data.
///
/// # Errors
///
/// As [`solve_marginals`], plus [`ErrModelError::NonConvergence`] if the
/// Repair fallback hits its iteration cap and [`ErrModelError::NonFinite`]
/// if a NaN/±∞ is detected in inputs or intermediate iterates.
pub fn solve_marginals_with(
    problem: &MarginalProblem,
    policy: DegradationPolicy,
) -> Result<MarginalSolution> {
    failpoints::fail_point!("errmodel::solve", |payload: String| Err(
        if payload == "nonconvergence" {
            ErrModelError::NonConvergence {
                component: 0,
                iterations: FALLBACK_MAX_ITERS,
            }
        } else {
            ErrModelError::SingularSystem { component: 0 }
        }
    ));
    let samples = problem.validate(policy)?;
    let m = problem.cond_correct.len();
    // Under Repair, out-of-range (finite) conditionals are clamped here.
    let read = |x: f64| {
        if policy.is_repair() {
            x.clamp(0.0, 1.0)
        } else {
            x
        }
    };
    // Union adjacency for the condensation (an edge exists if any sample
    // traversed it).
    let succs = |v: usize| -> Vec<usize> {
        let mut out: Vec<usize> = problem
            .edge_counts
            .iter()
            .filter(|((from, _), counts)| from.index() == v && counts.iter().any(|&c| c > 0.0))
            .map(|((_, to), _)| to.index())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    let comps = condensation_order(m, succs);
    // Incoming edges per block.
    let mut preds: Vec<Vec<(usize, &Vec<f64>)>> = vec![Vec::new(); m];
    // terse-analyze: allow(AZ002): each preds[i] is sorted right below.
    for ((from, to), counts) in &problem.edge_counts {
        preds[to.index()].push((from.index(), counts));
    }
    for p in &mut preds {
        p.sort_by_key(|&(j, _)| j);
    }
    // Component id per block (for in-SCC tests).
    let mut comp_of = vec![usize::MAX; m];
    for (ci, c) in comps.iter().enumerate() {
        for b in c {
            comp_of[b.index()] = ci;
        }
    }

    let mut marginal_acc: Vec<Vec<Vec<f64>>> = problem
        .cond_correct
        .iter()
        .map(|cc| vec![vec![0.0; samples]; cc.len()])
        .collect();
    let mut input_acc: Vec<Vec<f64>> = vec![vec![0.0; samples]; m];
    let mut output_acc: Vec<Vec<f64>> = vec![vec![0.0; samples]; m];

    for s in 0..samples {
        // Per-block affine transfer (A_i, C_i): p_out = A·p_in + C.
        let mut slope = vec![1.0f64; m];
        let mut inter = vec![0.0f64; m];
        for i in 0..m {
            let (mut a, mut c) = (1.0, 0.0);
            for k in 0..problem.cond_correct[i].len() {
                let pc = read(problem.cond_correct[i][k].samples()[s]);
                let pe = read(problem.cond_error[i][k].samples()[s]);
                let d = pe - pc;
                a *= d;
                c = d * c + pc;
            }
            slope[i] = a;
            inter[i] = c;
        }
        // Edge weights a_ij for this sample: count / block executions, with
        // the unexplained remainder assigned to the virtual flushed entry
        // (whose error probability is 1).
        let weight = |i: usize| -> (f64, Vec<(usize, f64)>) {
            let denom = problem.block_counts[i][s];
            if denom <= 0.0 {
                return (0.0, Vec::new());
            }
            let mut known = 0.0;
            let mut ws = Vec::new();
            for &(j, counts) in &preds[i] {
                let c = counts[s];
                if c > 0.0 {
                    ws.push((j, c / denom));
                    known += c;
                }
            }
            let virt = ((denom - known) / denom).max(0.0);
            (virt, ws)
        };
        let mut out_prob = vec![0.0f64; m];
        let mut in_prob = vec![0.0f64; m];
        let mut solved = vec![false; m];
        for comp in &comps {
            let members: Vec<usize> = comp
                .iter()
                .map(|b| b.index())
                .filter(|&i| problem.block_counts[i][s] > 0.0)
                .collect();
            if members.is_empty() {
                continue;
            }
            let has_internal_edge = members.iter().any(|&i| {
                preds[i]
                    .iter()
                    .any(|&(j, counts)| comp_of[j] == comp_of[i] && counts[s] > 0.0)
            });
            if !has_internal_edge {
                // Acyclic within the component: direct evaluation.
                for &i in &members {
                    let (virt, ws) = weight(i);
                    let mut pin = virt; // virtual predecessor errs w.p. 1
                    for (j, w) in ws {
                        pin += w * out_prob[j];
                    }
                    in_prob[i] = pin.clamp(0.0, 1.0);
                    out_prob[i] = (slope[i] * in_prob[i] + inter[i]).clamp(0.0, 1.0);
                    solved[i] = true;
                }
                continue;
            }
            // Cyclic component: x_i − A_i Σ_{j∈comp} a_ij x_j
            //                  = A_i (virt + Σ_{j∉comp} a_ij out_j) + C_i.
            let n = members.len();
            let pos: HashMap<usize, usize> =
                members.iter().enumerate().map(|(k, &i)| (i, k)).collect();
            let mut mat = Matrix::identity(n)?;
            let mut rhs = vec![0.0f64; n];
            // Intra-component coefficients (`slope_i · a_ij`), kept alongside
            // the matrix so the Repair fallback can iterate the same system.
            let mut inner: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
            for (row, &i) in members.iter().enumerate() {
                let (virt, ws) = weight(i);
                let mut known_term = virt;
                for (j, w) in ws {
                    match pos.get(&j) {
                        Some(&col) if comp_of[j] == comp_of[i] => {
                            let coeff = slope[i] * w;
                            mat[(row, col)] -= coeff;
                            inner[row].push((col, coeff));
                        }
                        _ => {
                            known_term += w * out_prob[j];
                        }
                    }
                }
                rhs[row] = slope[i] * known_term + inter[i];
            }
            // `members` is non-empty (checked above), so `min` exists.
            let component = members.iter().copied().min().unwrap_or(0);
            let x = match mat.solve(&rhs) {
                Ok(x) => x,
                Err(_) if policy.is_repair() => fixed_point_fallback(&rhs, &inner, component)?,
                Err(_) => return Err(ErrModelError::SingularSystem { component }),
            };
            for (row, &i) in members.iter().enumerate() {
                out_prob[i] = x[row].clamp(0.0, 1.0);
                solved[i] = true;
            }
            // Recover p_in from the solved outputs.
            for &i in &members {
                let (virt, ws) = weight(i);
                let mut pin = virt;
                for (j, w) in ws {
                    pin += w * out_prob[j];
                }
                in_prob[i] = pin.clamp(0.0, 1.0);
            }
        }
        // Per-instruction marginals via the Eq. 1 recurrence.
        for i in 0..m {
            if problem.block_counts[i][s] <= 0.0 {
                continue;
            }
            let mut p_prev = in_prob[i];
            for k in 0..problem.cond_correct[i].len() {
                let pc = problem.cond_correct[i][k].samples()[s];
                let pe = problem.cond_error[i][k].samples()[s];
                let p = (pe * p_prev + pc * (1.0 - p_prev)).clamp(0.0, 1.0);
                marginal_acc[i][k][s] = p;
                p_prev = p;
            }
            input_acc[i][s] = in_prob[i];
            output_acc[i][s] = p_prev;
        }
    }
    let to_rv = |v: Vec<f64>| SampleRv::new(v).map_err(ErrModelError::from);
    Ok(MarginalSolution {
        marginal: marginal_acc
            .into_iter()
            .map(|blk| blk.into_iter().map(to_rv).collect::<Result<Vec<_>>>())
            .collect::<Result<Vec<_>>>()?,
        input: input_acc
            .into_iter()
            .map(to_rv)
            .collect::<Result<Vec<_>>>()?,
        output: output_acc
            .into_iter()
            .map(to_rv)
            .collect::<Result<Vec<_>>>()?,
    })
}

/// Damped, clamped Jacobi iteration of `x = rhs + W·x` — the bounded
/// fallback for singular per-SCC systems under
/// [`DegradationPolicy::Repair`]. Every iterate is projected onto `[0, 1]`
/// (probabilities), so the iteration cannot diverge to ±∞; it can only fail
/// to contract, which the iteration cap converts into a typed error.
fn fixed_point_fallback(
    rhs: &[f64],
    inner: &[Vec<(usize, f64)>],
    component: usize,
) -> Result<Vec<f64>> {
    let n = rhs.len();
    let mut x = vec![0.0f64; n];
    for _ in 0..FALLBACK_MAX_ITERS {
        let mut delta = 0.0f64;
        let mut next = vec![0.0f64; n];
        for row in 0..n {
            let mut v = rhs[row];
            for &(col, coeff) in &inner[row] {
                v += coeff * x[col];
            }
            if !v.is_finite() {
                return Err(ErrModelError::NonFinite {
                    context: "fixed-point fallback iterate",
                    value: v,
                });
            }
            let v = ((1.0 - FALLBACK_DAMPING) * x[row] + FALLBACK_DAMPING * v).clamp(0.0, 1.0);
            delta = delta.max((v - x[row]).abs());
            next[row] = v;
        }
        x = next;
        if delta < FALLBACK_TOL {
            return Ok(x);
        }
    }
    Err(ErrModelError::NonConvergence {
        component,
        iterations: FALLBACK_MAX_ITERS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use terse_stats::rng::Xoshiro256;

    fn rv1(x: f64) -> SampleRv {
        SampleRv::constant(x, 1)
    }

    /// Single block executed once from a flushed start.
    #[test]
    fn straight_line_hand_computed() {
        // Entry block with 2 instructions, executed once; no edges.
        let problem = MarginalProblem {
            cond_correct: vec![vec![rv1(0.01), rv1(0.02)]],
            cond_error: vec![vec![rv1(0.05), rv1(0.08)]],
            edge_counts: HashMap::new(),
            block_counts: vec![vec![1.0]],
        };
        let sol = solve_marginals(&problem).unwrap();
        // Flushed start: p_in = 1 → p_1 = p^e_1 = 0.05.
        assert!((sol.input[0].samples()[0] - 1.0).abs() < 1e-12);
        let p1 = sol.marginal[0][0].samples()[0];
        assert!((p1 - 0.05).abs() < 1e-12);
        // p_2 = 0.08·0.05 + 0.02·0.95 = 0.023.
        let p2 = sol.marginal[0][1].samples()[0];
        assert!((p2 - 0.023).abs() < 1e-12);
        assert!((sol.output[0].samples()[0] - p2).abs() < 1e-15);
    }

    #[test]
    fn equal_conditionals_collapse() {
        // p^e = p^c everywhere ⇒ marginal = p^c regardless of structure.
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(1)), vec![1.0]);
        edge_counts.insert((BlockId(1), BlockId(1)), vec![9.0]);
        let problem = MarginalProblem {
            cond_correct: vec![vec![rv1(0.01)], vec![rv1(0.03)]],
            cond_error: vec![vec![rv1(0.01)], vec![rv1(0.03)]],
            edge_counts,
            block_counts: vec![vec![1.0], vec![10.0]],
        };
        let sol = solve_marginals(&problem).unwrap();
        assert!((sol.marginal[0][0].samples()[0] - 0.01).abs() < 1e-12);
        assert!((sol.marginal[1][0].samples()[0] - 0.03).abs() < 1e-12);
    }

    #[test]
    fn self_loop_fixed_point() {
        // Block 1 loops on itself 9/10 of the time; verify against direct
        // fixed-point iteration of Eqs. 1–2.
        let (pc0, pe0) = (0.02, 0.10);
        let (pc1, pe1) = (0.01, 0.20);
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(1)), vec![1.0]);
        edge_counts.insert((BlockId(1), BlockId(1)), vec![9.0]);
        let problem = MarginalProblem {
            cond_correct: vec![vec![rv1(pc0)], vec![rv1(pc1)]],
            cond_error: vec![vec![rv1(pe0)], vec![rv1(pe1)]],
            edge_counts,
            block_counts: vec![vec![1.0], vec![10.0]],
        };
        let sol = solve_marginals(&problem).unwrap();
        // Fixed-point iteration.
        let out0 = pe0 * 1.0 + pc0 * 0.0; // entry: p_in = 1
        let mut x1 = 0.0f64;
        for _ in 0..200 {
            let pin1 = 0.1 * out0 + 0.9 * x1;
            x1 = pe1 * pin1 + pc1 * (1.0 - pin1);
        }
        assert!(
            (sol.output[1].samples()[0] - x1).abs() < 1e-10,
            "solver {} vs fixed point {x1}",
            sol.output[1].samples()[0]
        );
    }

    #[test]
    fn multi_block_cycle_against_iteration() {
        // 0 → 1 → 2 → 1 (cycle between 1 and 2), 2 → 3.
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(1)), vec![1.0]);
        edge_counts.insert((BlockId(2), BlockId(1)), vec![4.0]);
        edge_counts.insert((BlockId(1), BlockId(2)), vec![5.0]);
        edge_counts.insert((BlockId(2), BlockId(3)), vec![1.0]);
        let pcs = [0.01, 0.02, 0.03, 0.004];
        let pes = [0.3, 0.15, 0.22, 0.4];
        let problem = MarginalProblem {
            cond_correct: pcs.iter().map(|&p| vec![rv1(p)]).collect(),
            cond_error: pes.iter().map(|&p| vec![rv1(p)]).collect(),
            edge_counts,
            block_counts: vec![vec![1.0], vec![5.0], vec![5.0], vec![1.0]],
        };
        let sol = solve_marginals(&problem).unwrap();
        // Gauss–Seidel iteration of the same equations.
        let trans = |pc: f64, pe: f64, pin: f64| pe * pin + pc * (1.0 - pin);
        let out0 = trans(pcs[0], pes[0], 1.0);
        let (mut x1, mut x2) = (0.0f64, 0.0f64);
        for _ in 0..500 {
            let pin1 = 0.2 * out0 + 0.8 * x2;
            x1 = trans(pcs[1], pes[1], pin1);
            let pin2 = 1.0 * x1;
            x2 = trans(pcs[2], pes[2], pin2);
        }
        assert!((sol.output[1].samples()[0] - x1).abs() < 1e-9);
        assert!((sol.output[2].samples()[0] - x2).abs() < 1e-9);
        // Block 3: p_in = out of block 2 (only incoming edge).
        assert!((sol.input[3].samples()[0] - x2).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_chain_validation() {
        // Simulate the actual Bernoulli error chain over a concrete
        // execution trace and compare empirical marginals.
        let (pc0, pe0) = (0.05, 0.30);
        let (pc1, pe1) = (0.02, 0.25);
        let loops = 50usize;
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(1)), vec![1.0]);
        edge_counts.insert((BlockId(1), BlockId(1)), vec![(loops - 1) as f64]);
        let problem = MarginalProblem {
            cond_correct: vec![vec![rv1(pc0)], vec![rv1(pc1)]],
            cond_error: vec![vec![rv1(pe0)], vec![rv1(pe1)]],
            edge_counts,
            block_counts: vec![vec![1.0], vec![loops as f64]],
        };
        let sol = solve_marginals(&problem).unwrap();
        // MC: execute B0 once then B1 `loops` times, per trial.
        let mut rng = Xoshiro256::seed_from_u64(99);
        let trials = 200_000usize;
        let mut err1_count = 0u64;
        for _ in 0..trials {
            let mut prev_err = true; // flushed start
            let flip = |prev: bool, pc: f64, pe: f64, rng: &mut Xoshiro256| {
                rng.next_f64() < if prev { pe } else { pc }
            };
            prev_err = flip(prev_err, pc0, pe0, &mut rng);
            for _ in 0..loops {
                prev_err = flip(prev_err, pc1, pe1, &mut rng);
                if prev_err {
                    err1_count += 1;
                }
            }
        }
        let empirical = err1_count as f64 / (trials * loops) as f64;
        let solved = sol.marginal[1][0].samples()[0];
        assert!(
            (empirical - solved).abs() < 0.002,
            "empirical {empirical} vs solved {solved}"
        );
    }

    #[test]
    fn data_variation_samples_solved_independently() {
        // Two samples with different conditional probabilities.
        let problem = MarginalProblem {
            cond_correct: vec![vec![SampleRv::new(vec![0.01, 0.10]).unwrap()]],
            cond_error: vec![vec![SampleRv::new(vec![0.02, 0.50]).unwrap()]],
            edge_counts: HashMap::new(),
            block_counts: vec![vec![1.0, 1.0]],
        };
        let sol = solve_marginals(&problem).unwrap();
        // Flushed entry ⇒ marginal = p^e per sample.
        assert_eq!(sol.marginal[0][0].samples(), &[0.02, 0.50]);
    }

    #[test]
    fn unexecuted_blocks_are_zero() {
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(1)), vec![1.0]);
        // Block 2 never executes.
        let problem = MarginalProblem {
            cond_correct: vec![vec![rv1(0.1)], vec![rv1(0.1)], vec![rv1(0.1)]],
            cond_error: vec![vec![rv1(0.2)], vec![rv1(0.2)], vec![rv1(0.2)]],
            edge_counts,
            block_counts: vec![vec![1.0], vec![1.0], vec![0.0]],
        };
        let sol = solve_marginals(&problem).unwrap();
        assert_eq!(sol.marginal[2][0].samples()[0], 0.0);
        assert_eq!(sol.output[2].samples()[0], 0.0);
    }

    #[test]
    fn validation_errors() {
        // Mismatched conditional lengths.
        let bad = MarginalProblem {
            cond_correct: vec![vec![rv1(0.1), rv1(0.1)]],
            cond_error: vec![vec![rv1(0.1)]],
            edge_counts: HashMap::new(),
            block_counts: vec![vec![1.0]],
        };
        assert!(solve_marginals(&bad).is_err());
        // Probability out of range.
        let bad2 = MarginalProblem {
            cond_correct: vec![vec![rv1(1.5)]],
            cond_error: vec![vec![rv1(0.1)]],
            edge_counts: HashMap::new(),
            block_counts: vec![vec![1.0]],
        };
        assert!(matches!(
            solve_marginals(&bad2),
            Err(ErrModelError::InvalidProbability { .. })
        ));
    }

    /// A block looping on itself with `p^e = 1`, `p^c = 0` yields the 1×1
    /// system `(1 − 1)·x = 0` — singular, with a continuum of solutions.
    fn singular_self_loop() -> MarginalProblem {
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(0)), vec![10.0]);
        MarginalProblem {
            cond_correct: vec![vec![rv1(0.0)]],
            cond_error: vec![vec![rv1(1.0)]],
            edge_counts,
            block_counts: vec![vec![10.0]],
        }
    }

    #[test]
    fn nan_and_inf_are_rejected_under_both_policies() {
        for poison in [f64::NAN, f64::INFINITY] {
            let bad = MarginalProblem {
                cond_correct: vec![vec![SampleRv::constant(poison, 1)]],
                cond_error: vec![vec![rv1(0.1)]],
                edge_counts: HashMap::new(),
                block_counts: vec![vec![1.0]],
            };
            for policy in [DegradationPolicy::Strict, DegradationPolicy::Repair] {
                assert!(matches!(
                    solve_marginals_with(&bad, policy),
                    Err(ErrModelError::NonFinite { .. })
                ));
            }
        }
        // Non-finite counts are rejected too.
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(0)), vec![f64::NAN]);
        let bad = MarginalProblem {
            cond_correct: vec![vec![rv1(0.1)]],
            cond_error: vec![vec![rv1(0.2)]],
            edge_counts,
            block_counts: vec![vec![1.0]],
        };
        assert!(matches!(
            solve_marginals(&bad),
            Err(ErrModelError::NonFinite { .. })
        ));
    }

    #[test]
    fn repair_clamps_out_of_range_conditionals() {
        // p^c = 1.5 is rejected under Strict but clamped to 1.0 under
        // Repair, where it behaves exactly like p^c = 1.
        let bad = MarginalProblem {
            cond_correct: vec![vec![rv1(1.5)]],
            cond_error: vec![vec![rv1(0.1)]],
            edge_counts: HashMap::new(),
            block_counts: vec![vec![1.0]],
        };
        assert!(matches!(
            solve_marginals_with(&bad, DegradationPolicy::Strict),
            Err(ErrModelError::InvalidProbability { .. })
        ));
        let sol = solve_marginals_with(&bad, DegradationPolicy::Repair).unwrap();
        // Flushed entry ⇒ marginal = p^e = 0.1 regardless of p^c.
        assert!((sol.marginal[0][0].samples()[0] - 0.1).abs() < 1e-15);
    }

    #[test]
    fn singular_system_strict_errors_repair_recovers() {
        let problem = singular_self_loop();
        assert!(matches!(
            solve_marginals(&problem),
            Err(ErrModelError::SingularSystem { component: 0 })
        ));
        let sol = solve_marginals_with(&problem, DegradationPolicy::Repair).unwrap();
        // The damped iteration from x = 0 settles on the fixed point 0 —
        // bounded, deterministic, and within [0, 1].
        let out = sol.output[0].samples()[0];
        assert!((0.0..=1.0).contains(&out));
        assert!(out.abs() < 1e-9, "fallback picked {out}");
    }

    #[test]
    fn repair_matches_strict_on_well_posed_problems() {
        // On a healthy problem the Repair policy must change nothing.
        let mut edge_counts = HashMap::new();
        edge_counts.insert((BlockId(0), BlockId(1)), vec![1.0]);
        edge_counts.insert((BlockId(1), BlockId(1)), vec![9.0]);
        let problem = MarginalProblem {
            cond_correct: vec![vec![rv1(0.02)], vec![rv1(0.01)]],
            cond_error: vec![vec![rv1(0.10)], vec![rv1(0.20)]],
            edge_counts,
            block_counts: vec![vec![1.0], vec![10.0]],
        };
        let strict = solve_marginals_with(&problem, DegradationPolicy::Strict).unwrap();
        let repair = solve_marginals_with(&problem, DegradationPolicy::Repair).unwrap();
        for (a, b) in strict.output.iter().zip(&repair.output) {
            assert_eq!(a.samples(), b.samples(), "policies must agree bitwise");
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        // Random stress: arbitrary small CFGs with random probabilities.
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..50 {
            let m = 4usize;
            let mut edge_counts = HashMap::new();
            let mut block_counts = vec![vec![0.0f64]; m];
            block_counts[0][0] = 1.0;
            for _ in 0..6 {
                let a = rng.next_below(m as u64) as u32;
                let b = rng.next_below(m as u64) as u32;
                let c = (rng.next_below(20) + 1) as f64;
                *edge_counts
                    .entry((BlockId(a), BlockId(b)))
                    .or_insert(vec![0.0])
                    .first_mut()
                    .unwrap() += c;
                block_counts[b as usize][0] += c;
            }
            let problem = MarginalProblem {
                cond_correct: (0..m)
                    .map(|_| vec![SampleRv::constant(rng.next_f64() * 0.5, 1)])
                    .collect(),
                cond_error: (0..m)
                    .map(|_| vec![SampleRv::constant(rng.next_f64() * 0.5 + 0.3, 1)])
                    .collect(),
                edge_counts,
                block_counts,
            };
            let sol = solve_marginals(&problem).unwrap();
            for blk in &sol.marginal {
                for rv in blk {
                    assert!(rv.min() >= 0.0 && rv.max() <= 1.0);
                }
            }
        }
    }
}
