//! Tarjan's strongly-connected-components algorithm (iterative) and the
//! topological order of the condensation — exactly the tools the paper
//! cites (\[23]) for handling CFG cycles in the marginal-probability system.

use terse_isa::BlockId;

/// Computes the strongly connected components of a graph over `n` nodes
/// with the given successor function. Components are returned in *reverse
/// topological order* of the condensation (Tarjan's natural output):
/// a component appears before any component that can reach it.
///
/// The implementation is iterative (explicit stack) so deep CFGs cannot
/// overflow the call stack.
pub fn strongly_connected_components(
    n: usize,
    successors: impl Fn(usize) -> Vec<usize>,
) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative DFS frame: (node, successor list, next successor position).
    struct Frame {
        v: usize,
        succs: Vec<usize>,
        pos: usize,
    }
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut frames = vec![Frame {
            v: start,
            succs: successors(start),
            pos: 0,
        }];
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(frame) = frames.last_mut() {
            let v = frame.v;
            if frame.pos < frame.succs.len() {
                let w = frame.succs[frame.pos];
                frame.pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push(Frame {
                        v: w,
                        succs: successors(w),
                        pos: 0,
                    });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Post-visit.
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    // Tarjan invariant: `v` was pushed when first visited and
                    // is still on the stack here, so popping until `w == v`
                    // terminates before the stack empties.
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
                let low_v = lowlink[v];
                frames.pop();
                if let Some(parent) = frames.last_mut() {
                    lowlink[parent.v] = lowlink[parent.v].min(low_v);
                }
            }
        }
    }
    components
}

/// Strongly connected components of a block graph, in *topological order*
/// (predecessors before successors) — the processing order of the paper's
/// per-SCC linear systems.
pub fn condensation_order(n: usize, successors: impl Fn(usize) -> Vec<usize>) -> Vec<Vec<BlockId>> {
    let mut comps = strongly_connected_components(n, successors);
    comps.reverse(); // reverse topological → topological
    comps
        .into_iter()
        .map(|c| c.into_iter().map(|i| BlockId(i as u32)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(edges: &[(usize, usize)], _n: usize) -> impl Fn(usize) -> Vec<usize> + '_ {
        move |v| {
            edges
                .iter()
                .filter(|&&(a, _)| a == v)
                .map(|&(_, b)| b)
                .collect()
        }
    }

    #[test]
    fn dag_yields_singletons_in_topo_order() {
        // 0 → 1 → 2, 0 → 2.
        let edges = [(0, 1), (1, 2), (0, 2)];
        let comps = condensation_order(3, adj(&edges, 3));
        assert_eq!(comps.len(), 3);
        let pos = |b: u32| comps.iter().position(|c| c.contains(&BlockId(b))).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn cycle_is_one_component() {
        // 0 → 1 → 2 → 0, plus 2 → 3.
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let comps = condensation_order(4, adj(&edges, 4));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![BlockId(0), BlockId(1), BlockId(2)]);
        assert_eq!(comps[1], vec![BlockId(3)]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let edges = [(0, 0), (0, 1)];
        let comps = strongly_connected_components(2, adj(&edges, 2));
        assert_eq!(comps.len(), 2);
        // Reverse topological: 1 before 0.
        assert_eq!(comps[0], vec![1]);
        assert_eq!(comps[1], vec![0]);
    }

    #[test]
    fn two_nested_loops() {
        // Outer: 0→1→2→3→0; inner: 1→2→1 (2 has edge back to 1).
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (2, 1)];
        let comps = strongly_connected_components(4, adj(&edges, 4));
        // All four nodes are one SCC (outer loop connects everything).
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn disconnected_nodes_covered() {
        let edges = [(0, 1)];
        let comps = strongly_connected_components(4, adj(&edges, 4));
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn brute_force_reachability_cross_check() {
        // Random digraphs: two nodes share an SCC iff mutually reachable.
        let mut seed = 0xACEu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let n = 8usize;
            let mut edges = Vec::new();
            for _ in 0..12 {
                edges.push(((rnd() % n as u64) as usize, (rnd() % n as u64) as usize));
            }
            // Floyd–Warshall reachability.
            let mut reach = [[false; 8]; 8];
            for i in 0..n {
                reach[i][i] = true;
            }
            for &(a, b) in &edges {
                reach[a][b] = true;
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        reach[i][j] |= reach[i][k] && reach[k][j];
                    }
                }
            }
            let comps = strongly_connected_components(n, adj(&edges, n));
            let mut comp_of = vec![usize::MAX; n];
            for (ci, c) in comps.iter().enumerate() {
                for &v in c {
                    comp_of[v] = ci;
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let same = comp_of[i] == comp_of[j];
                    let mutual = reach[i][j] && reach[j][i];
                    assert_eq!(same, mutual, "nodes {i},{j} edges {edges:?}");
                }
            }
        }
    }
}
