//! # terse-errmodel
//!
//! Marginal error probabilities from conditional ones — the paper's
//! Section 4.2.
//!
//! Profiling and DTA produce, for each static instruction, *conditional*
//! error probabilities: `p^c` (previous instruction executed correctly) and
//! `p^e` (previous instruction erred, so the correction mechanism reset the
//! datapath state). What the Section 5 estimator needs are the *marginal*
//! probabilities `p_{i_k}`. Within a basic block these follow the recurrence
//! (Eq. 1)
//!
//! ```text
//! p_{i_k} = p^e_{i_k} · p_{i_{k−1}} + p^c_{i_k} · (1 − p_{i_{k−1}})
//! ```
//!
//! and across blocks the *input error probability* mixes predecessors'
//! output probabilities by edge activation probabilities (Eq. 2). Cycles in
//! the CFG couple these equations; the paper identifies strongly connected
//! components with Tarjan's algorithm, orders them topologically, and solves
//! a linear system per component — [`tarjan`] and [`marginal`] implement
//! exactly that, per data-variation sample (probabilities are random
//! variables over program inputs and are carried as [`terse_stats::SampleRv`]
//! vectors).

// Numeric-kernel idioms used intentionally throughout this crate:
// `!(x >= 0.0)` rejects NaN along with negatives, and index loops run over
// several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]
#![warn(missing_docs)]
pub mod marginal;
pub mod tarjan;
pub mod weighted;

pub use marginal::{solve_marginals, solve_marginals_with, MarginalProblem, MarginalSolution};
pub use tarjan::{condensation_order, strongly_connected_components};
pub use weighted::{cluster_spread, weighted_mean, ClusterSpread};

use std::fmt;

/// Errors from the marginal-probability solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrModelError {
    /// Inconsistent problem dimensions.
    DimensionMismatch {
        /// What was mismatched.
        context: &'static str,
        /// Expected size.
        expected: usize,
        /// Found size.
        got: usize,
    },
    /// A probability left `[0, 1]` beyond numerical tolerance.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// The per-SCC linear system was singular.
    SingularSystem {
        /// Which component failed (smallest block index inside it).
        component: usize,
    },
    /// The damped fixed-point fallback hit its iteration cap without
    /// contracting (only reachable under
    /// [`terse_stats::DegradationPolicy::Repair`]).
    NonConvergence {
        /// Which component failed (smallest block index inside it).
        component: usize,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A NaN or ±∞ entered the solver inputs.
    NonFinite {
        /// Where the non-finite value was observed.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Propagated linear-algebra error.
    Stats(String),
}

impl fmt::Display for ErrModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrModelError::DimensionMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {got}"
            ),
            ErrModelError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            ErrModelError::SingularSystem { component } => {
                write!(
                    f,
                    "singular linear system in SCC containing block {component}"
                )
            }
            ErrModelError::NonConvergence {
                component,
                iterations,
            } => write!(
                f,
                "fixed-point fallback for SCC containing block {component} did not converge in {iterations} iterations"
            ),
            ErrModelError::NonFinite { context, value } => {
                write!(f, "non-finite value {value} in {context}")
            }
            ErrModelError::Stats(m) => write!(f, "statistics substrate failed: {m}"),
        }
    }
}

impl std::error::Error for ErrModelError {}

impl From<terse_stats::StatsError> for ErrModelError {
    fn from(e: terse_stats::StatsError) -> Self {
        ErrModelError::Stats(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T, E = ErrModelError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::ErrModelError>();
    }
}
