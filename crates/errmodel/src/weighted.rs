//! Cluster-population-weighted probability aggregation for phase-sampled
//! profiles.
//!
//! Under phase sampling (`terse_sim::phase`) a static instruction's feature
//! population is no longer one uniform reservoir: each retained sample came
//! from a cluster's representative window and stands in for `weight` dynamic
//! executions (the cluster's population spread over its samples). The mean
//! conditional error probability of the instruction is then the *weighted*
//! mean over samples, and the residual phase-approximation error is bounded
//! by how much the per-cluster means disagree — the `δ` spread that the
//! estimator turns into its reported sampling-error term.
//!
//! Both kernels here are deliberately order-sensitive-free: they fold in
//! index order with compensated summation, so results are bitwise identical
//! for any thread count of the surrounding sweep.

use crate::{ErrModelError, Result};
use terse_stats::kahan::KahanSum;

/// Weighted mean `Σ wⱼ·vⱼ / Σ wⱼ`, folded in index order with compensated
/// summation. A zero total weight yields `0.0` (an instruction with no
/// observed executions contributes nothing).
///
/// # Errors
///
/// [`ErrModelError::DimensionMismatch`] if `values` and `weights` differ in
/// length; [`ErrModelError::NonFinite`] for NaN/∞ inputs or negative
/// weights.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> Result<f64> {
    if values.len() != weights.len() {
        return Err(ErrModelError::DimensionMismatch {
            context: "weighted_mean values vs weights",
            expected: values.len(),
            got: weights.len(),
        });
    }
    let mut num = KahanSum::new();
    let mut den = KahanSum::new();
    for (&v, &w) in values.iter().zip(weights) {
        if !v.is_finite() {
            return Err(ErrModelError::NonFinite {
                context: "weighted_mean value",
                value: v,
            });
        }
        if !(w >= 0.0) || !w.is_finite() {
            return Err(ErrModelError::NonFinite {
                context: "weighted_mean weight",
                value: w,
            });
        }
        num.add(v * w);
        den.add(w);
    }
    if den.value() <= 0.0 {
        return Ok(0.0);
    }
    Ok(num.value() / den.value())
}

/// Per-cluster disagreement of a value population: the simple mean of each
/// cluster's values and their spread (`max − min` of the cluster means) —
/// the phase-sampling `δ` term.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpread {
    /// `(cluster id, mean)` for every cluster with at least one value,
    /// ascending by cluster id.
    pub means: Vec<(u32, f64)>,
    /// `max − min` over the cluster means; `0.0` with fewer than two
    /// clusters (no disagreement is *observable* — callers must treat that
    /// case conservatively, not as evidence of agreement).
    pub spread: f64,
}

/// Groups `values` by the parallel `clusters` array and measures the
/// disagreement of per-cluster means. `clusters` must be sorted ascending
/// (the phase profiler emits samples grouped by ascending cluster id); each
/// cluster's mean folds its members in index order.
///
/// # Errors
///
/// [`ErrModelError::DimensionMismatch`] on length mismatch or an unsorted
/// cluster array; [`ErrModelError::NonFinite`] for NaN/∞ values.
pub fn cluster_spread(values: &[f64], clusters: &[u32]) -> Result<ClusterSpread> {
    if values.len() != clusters.len() {
        return Err(ErrModelError::DimensionMismatch {
            context: "cluster_spread values vs clusters",
            expected: values.len(),
            got: clusters.len(),
        });
    }
    let mut means: Vec<(u32, f64)> = Vec::new();
    let mut i = 0usize;
    while i < values.len() {
        let c = clusters[i];
        if let Some(&(prev, _)) = means.last() {
            if c <= prev {
                return Err(ErrModelError::DimensionMismatch {
                    context: "cluster_spread clusters not ascending",
                    expected: prev as usize + 1,
                    got: c as usize,
                });
            }
        }
        let mut sum = KahanSum::new();
        let mut n = 0u64;
        while i < values.len() && clusters[i] == c {
            let v = values[i];
            if !v.is_finite() {
                return Err(ErrModelError::NonFinite {
                    context: "cluster_spread value",
                    value: v,
                });
            }
            sum.add(v);
            n += 1;
            i += 1;
        }
        means.push((c, sum.value() / n as f64));
    }
    let spread = if means.len() < 2 {
        0.0
    } else {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(_, m) in &means {
            lo = lo.min(m);
            hi = hi.max(m);
        }
        hi - lo
    };
    Ok(ClusterSpread { means, spread })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_basic() {
        // 1.0 with weight 3, 0.0 with weight 1 → 0.75.
        let m = weighted_mean(&[1.0, 0.0], &[3.0, 1.0]).unwrap();
        assert!((m - 0.75).abs() < 1e-15);
        // Uniform weights reduce to the simple mean.
        let u = weighted_mean(&[0.2, 0.4, 0.6], &[2.0, 2.0, 2.0]).unwrap();
        assert!((u - 0.4).abs() < 1e-15);
    }

    #[test]
    fn weighted_mean_empty_and_zero_weight() {
        assert_eq!(weighted_mean(&[], &[]).unwrap(), 0.0);
        assert_eq!(weighted_mean(&[0.5, 0.9], &[0.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn weighted_mean_rejects_bad_inputs() {
        assert!(matches!(
            weighted_mean(&[1.0], &[1.0, 2.0]),
            Err(ErrModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            weighted_mean(&[f64::NAN], &[1.0]),
            Err(ErrModelError::NonFinite { .. })
        ));
        assert!(matches!(
            weighted_mean(&[0.5], &[-1.0]),
            Err(ErrModelError::NonFinite { .. })
        ));
        assert!(matches!(
            weighted_mean(&[0.5], &[f64::INFINITY]),
            Err(ErrModelError::NonFinite { .. })
        ));
    }

    #[test]
    fn cluster_spread_measures_disagreement() {
        // Cluster 0 mean 0.1, cluster 2 mean 0.4, cluster 5 mean 0.2.
        let values = [0.1, 0.1, 0.3, 0.5, 0.2];
        let clusters = [0, 0, 2, 2, 5];
        let s = cluster_spread(&values, &clusters).unwrap();
        assert_eq!(s.means.len(), 3);
        assert_eq!(s.means[0].0, 0);
        assert_eq!(s.means[1].0, 2);
        assert_eq!(s.means[2].0, 5);
        assert!((s.means[1].1 - 0.4).abs() < 1e-15);
        assert!((s.spread - 0.3).abs() < 1e-15);
    }

    #[test]
    fn cluster_spread_single_cluster_is_zero() {
        let s = cluster_spread(&[0.9, 0.7], &[3, 3]).unwrap();
        assert_eq!(s.means.len(), 1);
        assert_eq!(s.spread, 0.0);
        let empty = cluster_spread(&[], &[]).unwrap();
        assert!(empty.means.is_empty());
        assert_eq!(empty.spread, 0.0);
    }

    #[test]
    fn cluster_spread_rejects_unsorted_and_non_finite() {
        assert!(matches!(
            cluster_spread(&[0.1, 0.2], &[1, 0]),
            Err(ErrModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            cluster_spread(&[0.1, 0.2, 0.3], &[0, 1, 0]),
            Err(ErrModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            cluster_spread(&[f64::INFINITY], &[0]),
            Err(ErrModelError::NonFinite { .. })
        ));
        assert!(matches!(
            cluster_spread(&[0.1], &[0, 1]),
            Err(ErrModelError::DimensionMismatch { .. })
        ));
    }
}
