//! Sample-vector random variables — the data-variation propagation format.
//!
//! The paper's probabilities are random variables over *program inputs*
//! ("data variation", Section 4.1): each dynamic execution with a different
//! input dataset yields a different error probability for a static
//! instruction. TERSE carries that uncertainty as a fixed-length vector of
//! correlated samples (one slot per input draw). All arithmetic is
//! elementwise, so dependence between quantities derived from the same input
//! is preserved exactly — this is what lets Eq. 1/Eq. 2 and the per-SCC
//! linear systems be solved *per sample* and re-aggregated afterwards.

use crate::kahan::KahanSum;
use crate::{DiscreteRv, Result, StatsError};
use std::ops::{Add, Div, Mul, Sub};

/// A random variable represented by `n` equally weighted, jointly indexed
/// samples.
///
/// Two `SampleRv`s built over the same index (the same input-dataset draws)
/// may be combined elementwise; their statistical dependence is carried by
/// construction.
///
/// # Example
/// ```
/// use terse_stats::SampleRv;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let a = SampleRv::new(vec![0.1, 0.2, 0.3])?;
/// let b = SampleRv::constant(0.5, 3);
/// let c = (&a * &b)?;
/// assert!((c.mean() - 0.1).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleRv {
    samples: Vec<f64>,
}

impl SampleRv {
    /// Wraps a sample vector.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty vector and
    /// [`StatsError::InvalidParameter`] if any sample is non-finite.
    pub fn new(samples: Vec<f64>) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::Empty { what: "samples" });
        }
        for &s in &samples {
            if !s.is_finite() {
                return Err(StatsError::InvalidParameter {
                    name: "sample",
                    value: s,
                    requirement: "finite",
                });
            }
        }
        Ok(SampleRv { samples })
    }

    /// A degenerate (constant) variable broadcast over `n` slots.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn constant(value: f64, n: usize) -> Self {
        assert!(n > 0, "sample count must be positive");
        SampleRv {
            samples: vec![value; n],
        }
    }

    /// Generates samples by calling `f(slot_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        assert!(n > 0, "sample count must be positive");
        SampleRv {
            samples: (0..n).map(f).collect(),
        }
    }

    /// Number of sample slots.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether there are no slots (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consumes `self`, returning the raw sample vector.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Elementwise map (e.g. clamping probabilities to `[0, 1]`).
    pub fn map(&self, f: impl Fn(f64) -> f64) -> SampleRv {
        SampleRv {
            samples: self.samples.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two jointly indexed variables elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if lengths differ.
    pub fn zip_with(&self, other: &SampleRv, f: impl Fn(f64, f64) -> f64) -> Result<SampleRv> {
        if self.len() != other.len() {
            return Err(StatsError::DimensionMismatch {
                context: "SampleRv::zip_with",
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(SampleRv {
            samples: self
                .samples
                .iter()
                .zip(&other.samples)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        let s: KahanSum = self.samples.iter().copied().collect();
        s.value() / self.len() as f64
    }

    /// Population variance (divides by `n`, the convention for an exhaustive
    /// set of equally likely scenarios).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let s: KahanSum = self.samples.iter().map(|&x| (x - m) * (x - m)).collect();
        (s.value() / self.len() as f64).max(0.0)
    }

    /// Population standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Central moment `E[(X − μ)^k]`.
    pub fn central_moment(&self, k: u32) -> f64 {
        let m = self.mean();
        let s: KahanSum = self
            .samples
            .iter()
            .map(|&x| (x - m).powi(k as i32))
            .collect();
        s.value() / self.len() as f64
    }

    /// Absolute central moment `E[|X − μ|^k]` — the third such moment feeds
    /// the Stein bound (Eq. 11).
    pub fn abs_central_moment(&self, k: u32) -> f64 {
        let m = self.mean();
        let s: KahanSum = self
            .samples
            .iter()
            .map(|&x| (x - m).abs().powi(k as i32))
            .collect();
        s.value() / self.len() as f64
    }

    /// Raw moment `E[X^k]`.
    pub fn raw_moment(&self, k: u32) -> f64 {
        let s: KahanSum = self.samples.iter().map(|&x| x.powi(k as i32)).collect();
        s.value() / self.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Empirical quantile (linear interpolation between order statistics).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile level must be in [0,1]");
        let mut xs = self.samples.clone();
        xs.sort_by(f64::total_cmp);
        if xs.len() == 1 {
            return xs[0];
        }
        let pos = p * (xs.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    }

    /// The paper's "worst-case value" convention for bound variables:
    /// mean + `k`·SD (Section 5 uses `k = 6` for b₁ and b₂).
    pub fn worst_case(&self, k_sigma: f64) -> f64 {
        self.mean() + k_sigma * self.sd()
    }

    /// Collapses the samples to a [`DiscreteRv`] (exact empirical law).
    ///
    /// # Panics
    ///
    /// Panics only if the internal `DiscreteRv` construction fails, which is
    /// impossible for a non-empty finite sample set.
    // Invariant: `SampleRv` construction guarantees non-empty finite
    // samples, for which `DiscreteRv::from_samples` cannot fail.
    #[allow(clippy::expect_used)]
    pub fn to_discrete(&self) -> DiscreteRv {
        DiscreteRv::from_samples(&self.samples)
            .expect("non-empty finite samples always form a valid discrete rv")
    }

    /// Jointly indexed sum of many variables: `Σᵢ wᵢ·Xᵢ`.
    ///
    /// Uses compensated accumulation per slot — this is the workhorse for
    /// Eq. 10's λ, which sums millions of weighted probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if `terms` is empty and
    /// [`StatsError::DimensionMismatch`] if lengths differ.
    pub fn weighted_sum<'a, I>(terms: I) -> Result<SampleRv>
    where
        I: IntoIterator<Item = (f64, &'a SampleRv)>,
    {
        let mut acc: Option<Vec<KahanSum>> = None;
        for (w, rv) in terms {
            let acc = acc.get_or_insert_with(|| vec![KahanSum::new(); rv.len()]);
            if acc.len() != rv.len() {
                return Err(StatsError::DimensionMismatch {
                    context: "SampleRv::weighted_sum",
                    left: acc.len(),
                    right: rv.len(),
                });
            }
            for (a, &x) in acc.iter_mut().zip(&rv.samples) {
                a.add(w * x);
            }
        }
        match acc {
            Some(acc) => Ok(SampleRv {
                samples: acc.iter().map(KahanSum::value).collect(),
            }),
            None => Err(StatsError::Empty { what: "terms" }),
        }
    }
}

impl Add for &SampleRv {
    type Output = Result<SampleRv>;
    fn add(self, rhs: &SampleRv) -> Self::Output {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub for &SampleRv {
    type Output = Result<SampleRv>;
    fn sub(self, rhs: &SampleRv) -> Self::Output {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul for &SampleRv {
    type Output = Result<SampleRv>;
    fn mul(self, rhs: &SampleRv) -> Self::Output {
        self.zip_with(rhs, |a, b| a * b)
    }
}

impl Div for &SampleRv {
    type Output = Result<SampleRv>;
    fn div(self, rhs: &SampleRv) -> Self::Output {
        self.zip_with(rhs, |a, b| a / b)
    }
}

impl Mul<f64> for &SampleRv {
    type Output = SampleRv;
    fn mul(self, rhs: f64) -> SampleRv {
        self.map(|x| x * rhs)
    }
}

impl Add<f64> for &SampleRv {
    type Output = SampleRv;
    fn add(self, rhs: f64) -> SampleRv {
        self.map(|x| x + rhs)
    }
}

impl FromIterator<f64> for SampleRv {
    /// Collects samples; an empty iterator yields an empty (invalid) RV, so
    /// prefer [`SampleRv::new`] in fallible contexts.
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        SampleRv {
            samples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(xs: &[f64]) -> SampleRv {
        SampleRv::new(xs.to_vec()).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(SampleRv::new(vec![]).is_err());
        assert!(SampleRv::new(vec![f64::NAN]).is_err());
        assert!(SampleRv::new(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn mean_variance_known_values() {
        let a = rv(&[1.0, 2.0, 3.0, 4.0]);
        assert!((a.mean() - 2.5).abs() < 1e-15);
        assert!((a.variance() - 1.25).abs() < 1e-15);
        assert!((a.sd() - 1.25f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn elementwise_dependence_preserved() {
        // X - X must be exactly zero with sample semantics — the whole point
        // of joint indexing versus independent distributions.
        let a = rv(&[0.3, 0.9, 0.1]);
        let d = (&a - &a).unwrap();
        assert_eq!(d.samples(), &[0.0, 0.0, 0.0]);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn ops_require_matching_lengths() {
        let a = rv(&[1.0, 2.0]);
        let b = rv(&[1.0, 2.0, 3.0]);
        assert!((&a + &b).is_err());
        assert!((&a * &b).is_err());
    }

    #[test]
    fn moments_match_definitions() {
        let a = rv(&[-1.0, 0.0, 1.0, 2.0]);
        let m = a.mean();
        let want3: f64 = a.samples().iter().map(|x| (x - m).powi(3)).sum::<f64>() / 4.0;
        assert!((a.central_moment(3) - want3).abs() < 1e-15);
        let want_abs3: f64 = a
            .samples()
            .iter()
            .map(|x| (x - m).abs().powi(3))
            .sum::<f64>()
            / 4.0;
        assert!((a.abs_central_moment(3) - want_abs3).abs() < 1e-15);
        assert!((a.raw_moment(2) - 6.0 / 4.0).abs() < 1e-15);
    }

    #[test]
    fn quantile_interpolates() {
        let a = rv(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(a.quantile(0.0), 10.0);
        assert_eq!(a.quantile(1.0), 50.0);
        assert_eq!(a.quantile(0.5), 30.0);
        assert!((a.quantile(0.25) - 20.0).abs() < 1e-12);
        assert!((a.quantile(0.1) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_six_sigma() {
        let a = rv(&[1.0, 3.0]);
        // mean 2, sd 1 → mean + 6sd = 8.
        assert!((a.worst_case(6.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_linear() {
        let a = rv(&[1.0, 2.0]);
        let b = rv(&[10.0, 20.0]);
        let s = SampleRv::weighted_sum([(2.0, &a), (0.5, &b)]).unwrap();
        assert_eq!(s.samples(), &[7.0, 14.0]);
        assert!(SampleRv::weighted_sum(std::iter::empty()).is_err());
    }

    #[test]
    fn scalar_ops() {
        let a = rv(&[1.0, 2.0]);
        assert_eq!((&a * 3.0).samples(), &[3.0, 6.0]);
        assert_eq!((&a + 1.0).samples(), &[2.0, 3.0]);
    }

    #[test]
    fn constant_has_zero_variance() {
        let c = SampleRv::constant(0.7, 64);
        assert_eq!(c.variance(), 0.0);
        assert_eq!(c.mean(), 0.7);
        assert_eq!(c.len(), 64);
    }

    #[test]
    fn min_max() {
        let a = rv(&[3.0, -1.0, 2.0]);
        assert_eq!(a.min(), -1.0);
        assert_eq!(a.max(), 3.0);
    }
}
