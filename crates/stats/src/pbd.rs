//! The Poisson-binomial distribution — the exact law of a sum of independent,
//! non-identically distributed Bernoulli indicators.
//!
//! The paper (Section 5) notes that the program error count is exactly
//! Poisson-binomial when indicators are independent, but that computing it
//! "becomes prohibitively complex when there are more than a few indicators"
//! \[17] — which is why it approximates with Poisson/Normal limits instead.
//! We implement the exact distribution anyway (the direct O(n²) convolution
//! DP of Hong \[17]) so tests and the Monte-Carlo ablation can validate the
//! approximations against ground truth on affordable sizes.

use crate::kahan::KahanSum;
use crate::{Result, StatsError};

/// The exact distribution of `Σᵢ Xᵢ` for independent `Xᵢ ~ Bernoulli(pᵢ)`.
///
/// Construction is `O(n²)`; intended for n up to a few thousand (tests,
/// ablations), not for full program runs — that is the entire point of the
/// paper's limit-theorem approximations.
///
/// # Example
/// ```
/// use terse_stats::PoissonBinomial;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let d = PoissonBinomial::new(vec![0.5, 0.5])?;
/// assert!((d.pmf(1) - 0.5).abs() < 1e-15);
/// assert!((d.mean() - 1.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonBinomial {
    probs: Vec<f64>,
    /// pmf[k] = Pr(S = k), k = 0..=n
    pmf: Vec<f64>,
}

impl PoissonBinomial {
    /// Builds the exact distribution from the success probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty probability list and
    /// [`StatsError::InvalidParameter`] if any probability is outside
    /// `[0, 1]`.
    pub fn new(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(StatsError::Empty { what: "probs" });
        }
        for &p in &probs {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(StatsError::InvalidParameter {
                    name: "p",
                    value: p,
                    requirement: "0 <= p <= 1",
                });
            }
        }
        // Direct convolution DP: after processing i indicators, pmf holds the
        // distribution of their partial sum.
        let n = probs.len();
        let mut pmf = vec![0.0f64; n + 1];
        pmf[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            // Update in reverse so pmf[k] still refers to the previous stage.
            for k in (0..=i + 1).rev() {
                let stay = if k <= i { pmf[k] * (1.0 - p) } else { 0.0 };
                let come = if k > 0 { pmf[k - 1] * p } else { 0.0 };
                pmf[k] = stay + come;
            }
        }
        Ok(PoissonBinomial { probs, pmf })
    }

    /// Number of indicators n.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the indicator list is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The underlying success probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// `Pr(S = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.pmf.get(k as usize).copied().unwrap_or(0.0)
    }

    /// `Pr(S ≤ k)`.
    pub fn cdf(&self, k: u64) -> f64 {
        let end = (k as usize + 1).min(self.pmf.len());
        let mut s = KahanSum::new();
        for &v in &self.pmf[..end] {
            s.add(v);
        }
        s.value().min(1.0)
    }

    /// Mean `Σ pᵢ`.
    pub fn mean(&self) -> f64 {
        let mut s = KahanSum::new();
        for &p in &self.probs {
            s.add(p);
        }
        s.value()
    }

    /// Variance `Σ pᵢ(1 − pᵢ)`.
    pub fn variance(&self) -> f64 {
        let mut s = KahanSum::new();
        for &p in &self.probs {
            s.add(p * (1.0 - p));
        }
        s.value()
    }

    /// The full probability-mass vector `[Pr(S = 0), …, Pr(S = n)]`.
    pub fn pmf_vec(&self) -> &[f64] {
        &self.pmf
    }

    /// Total-variation distance to a Poisson with the same mean — the
    /// quantity the Chen–Stein theorem bounds (Theorem 5.1, Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if the internal Poisson construction fails, which cannot
    /// happen since the mean of a Poisson binomial is finite and
    /// non-negative.
    // Invariant: the mean of a Poisson binomial is finite and
    // non-negative, so the Poisson constructor cannot fail.
    #[allow(clippy::expect_used)]
    pub fn tv_distance_to_poisson(&self) -> f64 {
        let lam = self.mean();
        let poi = crate::Poisson::new(lam).expect("mean is finite and non-negative");
        let mut acc = 0.0;
        // TV distance for integer-valued distributions: ½ Σ |p(k) − q(k)|.
        // The Poisson tail beyond n contributes its survival mass.
        for (k, &p) in self.pmf.iter().enumerate() {
            acc += (p - poi.pmf(k as u64)).abs();
        }
        acc += poi.sf(self.pmf.len() as f64 - 1.0);
        0.5 * acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_binomial_when_iid() {
        // n = 6, p = 0.3: compare with binomial coefficients.
        let d = PoissonBinomial::new(vec![0.3; 6]).unwrap();
        let choose = [1.0, 6.0, 15.0, 20.0, 15.0, 6.0, 1.0];
        for k in 0..=6u64 {
            let want = choose[k as usize] * 0.3f64.powi(k as i32) * 0.7f64.powi(6 - k as i32);
            assert!(
                (d.pmf(k) - want).abs() < 1e-14,
                "k={k} got {} want {want}",
                d.pmf(k)
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = PoissonBinomial::new(vec![0.1, 0.9, 0.5, 0.33, 0.77]).unwrap();
        let s: f64 = d.pmf_vec().iter().sum();
        assert!((s - 1.0).abs() < 1e-13);
    }

    #[test]
    fn mean_variance_formulas() {
        let ps = vec![0.2, 0.4, 0.9];
        let d = PoissonBinomial::new(ps.clone()).unwrap();
        let mean: f64 = ps.iter().sum();
        let var: f64 = ps.iter().map(|p| p * (1.0 - p)).sum();
        assert!((d.mean() - mean).abs() < 1e-15);
        assert!((d.variance() - var).abs() < 1e-15);
        // Cross-check against the pmf moments.
        let m1: f64 = d
            .pmf_vec()
            .iter()
            .enumerate()
            .map(|(k, p)| k as f64 * p)
            .sum();
        assert!((m1 - mean).abs() < 1e-13);
    }

    #[test]
    fn degenerate_probabilities() {
        let d = PoissonBinomial::new(vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        assert!((d.pmf(2) - 1.0).abs() < 1e-15);
        assert_eq!(d.cdf(1), 0.0);
        assert!((d.cdf(2) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cdf_monotone_and_saturates() {
        let d = PoissonBinomial::new(vec![0.25; 10]).unwrap();
        let mut prev = 0.0;
        for k in 0..=12u64 {
            let c = d.cdf(k);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!((d.cdf(10) - 1.0).abs() < 1e-13);
        assert!((d.cdf(999) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(PoissonBinomial::new(vec![]).is_err());
        assert!(PoissonBinomial::new(vec![1.5]).is_err());
        assert!(PoissonBinomial::new(vec![-0.1]).is_err());
        assert!(PoissonBinomial::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn tv_distance_small_for_rare_events() {
        // Le Cam: TV ≤ Σ pᵢ². With 200 indicators at p = 0.005, bound 0.005.
        let d = PoissonBinomial::new(vec![0.005; 200]).unwrap();
        let tv = d.tv_distance_to_poisson();
        assert!(tv <= 0.005 + 1e-9, "tv = {tv}");
        assert!(tv > 0.0);
    }

    #[test]
    fn tv_distance_large_for_non_rare() {
        // A single fair coin is badly approximated by Poisson(0.5).
        let d = PoissonBinomial::new(vec![0.5]).unwrap();
        assert!(d.tv_distance_to_poisson() > 0.1);
    }
}
