//! Stein's method and the Chen–Stein method — the paper's approximation-error
//! bounds (Section 5, Theorems 5.1 and 5.2).
//!
//! * [`chen_stein_bound`] is the generic Theorem 5.1: a total-variation bound
//!   for the Poisson approximation of a sum of dependent Bernoulli
//!   indicators, given dependency neighborhoods.
//! * [`chen_stein_program_bound`] is the paper's specialization (Eqs. 6–9):
//!   indicators are dynamic instructions, each instruction's neighborhood is
//!   itself and the previous instruction, block executions `e_i` replicate
//!   indicators, and `p_{αβ} = E[X_α X_β] = p_{k−1} · p^e_k` follows from the
//!   Markov error-correction model.
//! * [`stein_normal_bound`] is Theorem 5.2: a Kolmogorov bound for the normal
//!   approximation of a sum of locally dependent variables with finite fourth
//!   moments — applied to λ (Eq. 10) with `D = 2`.

use crate::kahan::KahanSum;
use crate::{Result, StatsError};

/// Result of a Chen–Stein computation: the two intermediate sums and the
/// final distance bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChenSteinBound {
    /// `b₁ = Σ_α Σ_{β ∈ B_α} p_α p_β` (Eq. 3 / Eq. 7).
    pub b1: f64,
    /// `b₂ = Σ_α Σ_{α ≠ β ∈ B_α} p_{αβ}` (Eq. 4 / Eq. 8).
    pub b2: f64,
    /// The Poisson mean `λ = Σ_α p_α`.
    pub lambda: f64,
    /// `d_TV(W, Z) ≤ min(1, 1/λ)(b₁ + b₂)` (Eq. 5); also a bound on the
    /// Kolmogorov metric since `d_K ≤ d_TV`.
    pub tv_bound: f64,
}

/// Generic Chen–Stein bound (Theorem 5.1) for indicators `p[α]` with
/// dependency neighborhoods `neighbors(α)` (which must contain `α` itself)
/// and pairwise joint success probabilities `joint(α, β) = E[X_α X_β]`.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty index set and
/// [`StatsError::InvalidParameter`] if any probability is outside `[0, 1]`.
///
/// # Example
/// ```
/// use terse_stats::stein::chen_stein_bound;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// // Independent indicators: B_α = {α}, joint never queried off-diagonal.
/// let p = vec![0.01_f64; 100];
/// let b = chen_stein_bound(&p, |a| vec![a], |_, _| 0.0)?;
/// // Le Cam-style: b1 = Σ p², b2 = 0.
/// assert!((b.b1 - 0.01).abs() < 1e-12);
/// assert_eq!(b.b2, 0.0);
/// assert!(b.tv_bound <= 0.011);
/// # Ok(())
/// # }
/// ```
pub fn chen_stein_bound(
    p: &[f64],
    neighbors: impl Fn(usize) -> Vec<usize>,
    joint: impl Fn(usize, usize) -> f64,
) -> Result<ChenSteinBound> {
    if p.is_empty() {
        return Err(StatsError::Empty { what: "indicators" });
    }
    for &pi in p {
        if !(0.0..=1.0).contains(&pi) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: pi,
                requirement: "0 <= p <= 1",
            });
        }
    }
    let mut b1 = KahanSum::new();
    let mut b2 = KahanSum::new();
    let mut lambda = KahanSum::new();
    for (alpha, &pa) in p.iter().enumerate() {
        lambda.add(pa);
        for beta in neighbors(alpha) {
            b1.add(pa * p[beta]);
            if beta != alpha {
                b2.add(joint(alpha, beta));
            }
        }
    }
    let lambda = lambda.value();
    let b1 = b1.value();
    let b2 = b2.value();
    let factor = if lambda > 1.0 { 1.0 / lambda } else { 1.0 };
    Ok(ChenSteinBound {
        b1,
        b2,
        lambda,
        tv_bound: factor * (b1 + b2),
    })
}

/// One basic block's probability chain, in one data-variation scenario —
/// the inputs to Eqs. 7, 8 and 10.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockChain {
    /// Number of executions `e_i` of this block (the replication count in
    /// Eq. 6). May carry the scaling to paper-sized instruction counts.
    pub executions: f64,
    /// Input error probability `p_i^in` (error probability of the
    /// instruction executed just before entering the block).
    pub p_in: f64,
    /// Marginal error probabilities `p_{i_k}`, k = 1..n_i.
    pub marginal: Vec<f64>,
    /// Conditional-on-error probabilities `p^e_{i_k}`, k = 1..n_i.
    pub cond_error: Vec<f64>,
}

/// The paper's program-level Chen–Stein bound (Eqs. 7–9): dependency
/// neighborhoods are adjacent instructions, `p_{αβ} = p_{k−1} p^e_k`, blocks
/// are replicated `e_i` times, and the final Kolmogorov bound is
/// `d_K(N_E, N̄_E) ≤ (b₁ + b₂)/λ` (Eq. 9, valid for λ > 1).
///
/// # Errors
///
/// Returns [`StatsError::Empty`] if no block is supplied,
/// [`StatsError::DimensionMismatch`] if a block's `marginal` and
/// `cond_error` lengths differ, and [`StatsError::InvalidParameter`] on
/// out-of-range probabilities or negative execution counts.
pub fn chen_stein_program_bound(blocks: &[BlockChain]) -> Result<ChenSteinBound> {
    if blocks.is_empty() {
        return Err(StatsError::Empty { what: "blocks" });
    }
    let mut b1 = KahanSum::new();
    let mut b2 = KahanSum::new();
    let mut lambda = KahanSum::new();
    for blk in blocks {
        if blk.marginal.len() != blk.cond_error.len() {
            return Err(StatsError::DimensionMismatch {
                context: "BlockChain probabilities",
                left: blk.marginal.len(),
                right: blk.cond_error.len(),
            });
        }
        if !(blk.executions >= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "executions",
                value: blk.executions,
                requirement: ">= 0",
            });
        }
        for &q in blk
            .marginal
            .iter()
            .chain(blk.cond_error.iter())
            .chain(std::iter::once(&blk.p_in))
        {
            if !(0.0..=1.0).contains(&q) {
                return Err(StatsError::InvalidParameter {
                    name: "probability",
                    value: q,
                    requirement: "0 <= p <= 1",
                });
            }
        }
        if blk.marginal.is_empty() {
            continue;
        }
        let e = blk.executions;
        // Eq. 7 inner sum: p_in·p_1 + Σ_{k≥2} p_{k−1} p_k, plus the diagonal
        // terms p_k² (each neighborhood B_α contains α itself, and both the
        // (k−1,k) and (k,k−1) ordered pairs appear in Σ_α Σ_{β∈B_α}).
        let mut inner1 = blk.p_in * blk.marginal[0];
        let mut inner2 = blk.p_in * blk.cond_error[0];
        for k in 0..blk.marginal.len() {
            // Diagonal term of Eq. 3 specialized: α ∈ B_α.
            inner1 += blk.marginal[k] * blk.marginal[k];
            lambda.add(e * blk.marginal[k]);
            if k > 0 {
                // Both ordered adjacent pairs contribute to b1; the paper's
                // Eq. 7 writes the chain once — we follow Eq. 7 literally
                // for the cross terms to reproduce its numbers.
                inner1 += blk.marginal[k - 1] * blk.marginal[k];
                // Eq. 8: p_{αβ} = Pr(prev errs) · Pr(cur errs | prev errs).
                inner2 += blk.marginal[k - 1] * blk.cond_error[k];
            }
        }
        b1.add(e * inner1);
        b2.add(e * inner2);
    }
    let lambda = lambda.value();
    let b1 = b1.value();
    let b2 = b2.value();
    let factor = if lambda > 1.0 { 1.0 / lambda } else { 1.0 };
    Ok(ChenSteinBound {
        b1,
        b2,
        lambda,
        tv_bound: factor * (b1 + b2),
    })
}

/// Per-variable moment inputs to [`stein_normal_bound`]: central moments of
/// each summand `X_i` (the paper computes them from discrete data-variation
/// distributions; see Section 5, after Theorem 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CentralMoments {
    /// Variance `E[(X − μ)²]`.
    pub var: f64,
    /// Absolute third central moment `E[|X − μ|³]`.
    pub abs3: f64,
    /// Fourth central moment `E[(X − μ)⁴]`.
    pub m4: f64,
}

/// Result of the Stein normal-approximation bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteinBound {
    /// `b₁ = D²/σ³ Σ E|X_i|³` (Eq. 11).
    pub b1: f64,
    /// `b₂ = √28 D^{3/2}/(√π σ²) √(Σ E[X_i⁴])` (Eq. 12).
    pub b2: f64,
    /// Standard deviation σ of the sum used in the bound.
    pub sigma: f64,
    /// The paper's Eq. 13 bound: `d_K ≤ (2/π)^{1/4} (b₁ + b₂)`
    /// (the paper prints `(z/π)^{1/4}`; `z = 2` recovers the constant of
    /// Ross's survey of Stein's method).
    pub kolmogorov: f64,
    /// The conservative Wasserstein-route variant
    /// `d_K ≤ (2/π)^{1/4} √(b₁ + b₂)`, useful when `b₁ + b₂ < 1` makes the
    /// square root the *larger* (safer) reading of the theorem.
    pub kolmogorov_sqrt: f64,
}

/// Stein's-method bound (Theorem 5.2) for the normal approximation of
/// `W = Σ X_i` with dependency-neighborhood size at most `d` and the given
/// per-variable central moments. `sigma` is the standard deviation of `W`
/// (which, unlike the per-variable moments, must account for covariances
/// inside neighborhoods — the caller computes it; for λ this is
/// [`crate::SampleRv::sd`] of the sampled sum).
///
/// # Errors
///
/// Returns [`StatsError::Empty`] with no variables,
/// [`StatsError::InvalidParameter`] if `sigma ≤ 0`, `d == 0`, or any moment
/// is negative.
pub fn stein_normal_bound(moments: &[CentralMoments], sigma: f64, d: usize) -> Result<SteinBound> {
    if moments.is_empty() {
        return Err(StatsError::Empty { what: "moments" });
    }
    if !(sigma > 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "sigma",
            value: sigma,
            requirement: "> 0",
        });
    }
    if d == 0 {
        return Err(StatsError::InvalidParameter {
            name: "d",
            value: 0.0,
            requirement: ">= 1",
        });
    }
    let mut sum3 = KahanSum::new();
    let mut sum4 = KahanSum::new();
    for m in moments {
        if m.abs3 < 0.0 || m.m4 < 0.0 || m.var < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "moment",
                value: m.abs3.min(m.m4).min(m.var),
                requirement: ">= 0",
            });
        }
        sum3.add(m.abs3);
        sum4.add(m.m4);
    }
    let df = d as f64;
    let b1 = df * df / (sigma * sigma * sigma) * sum3.value();
    let b2 = 28f64.sqrt() * df.powf(1.5) / (std::f64::consts::PI.sqrt() * sigma * sigma)
        * sum4.value().sqrt();
    let c = (2.0 / std::f64::consts::PI).powf(0.25);
    Ok(SteinBound {
        b1,
        b2,
        sigma,
        kolmogorov: (c * (b1 + b2)).min(1.0),
        kolmogorov_sqrt: (c * (b1 + b2).sqrt()).min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::kolmogorov_distance_fns;
    use crate::{Normal, Poisson, PoissonBinomial};

    #[test]
    fn chen_stein_validates_poisson_approx_on_independent_case() {
        // Ground truth: exact Poisson binomial vs Poisson; the bound must
        // dominate the true distance.
        let probs = vec![0.02_f64; 300];
        let exact = PoissonBinomial::new(probs.clone()).unwrap();
        let bound = chen_stein_bound(&probs, |a| vec![a], |_, _| 0.0).unwrap();
        let true_tv = exact.tv_distance_to_poisson();
        assert!(
            true_tv <= bound.tv_bound + 1e-12,
            "true {true_tv} bound {}",
            bound.tv_bound
        );
        // And the bound is not trivial (b1 = Σp² = 0.12, λ = 6 → 0.02).
        assert!(bound.tv_bound <= 0.02 + 1e-12);
    }

    #[test]
    fn chen_stein_kolmogorov_dominates_true_dk() {
        let probs = vec![0.01_f64; 500];
        let exact = PoissonBinomial::new(probs.clone()).unwrap();
        let lambda: f64 = probs.iter().sum();
        let poi = Poisson::new(lambda).unwrap();
        let dk = kolmogorov_distance_fns(0..30, |k| exact.cdf(k as u64), |k| poi.cdf(k as f64));
        let bound = chen_stein_bound(&probs, |a| vec![a], |_, _| 0.0).unwrap();
        assert!(dk <= bound.tv_bound, "dk={dk} bound={}", bound.tv_bound);
    }

    #[test]
    fn program_bound_single_block_matches_generic() {
        // One block, executed once, independent-ish chain with p^e = p (no
        // correction effect) reduces to the generic computation on a path
        // neighborhood.
        let marg = vec![0.01, 0.02, 0.03];
        let ce = vec![0.01, 0.02, 0.03];
        let blocks = [BlockChain {
            executions: 1.0,
            p_in: 0.0,
            marginal: marg.clone(),
            cond_error: ce,
        }];
        let b = chen_stein_program_bound(&blocks).unwrap();
        // λ = Σ p
        assert!((b.lambda - 0.06).abs() < 1e-15);
        // b1 = Σ p_k² + Σ_{k≥2} p_{k−1} p_k = (1e-4+4e-4+9e-4) + (2e-4+6e-4)
        assert!((b.b1 - (14e-4 + 8e-4)).abs() < 1e-12, "b1={}", b.b1);
        // b2 = Σ_{k≥2} p_{k−1} p^e_k = 2e-4 + 6e-4
        assert!((b.b2 - 8e-4).abs() < 1e-12, "b2={}", b.b2);
        // λ < 1 so the factor is 1.
        assert!((b.tv_bound - (b.b1 + b.b2)).abs() < 1e-15);
    }

    #[test]
    fn program_bound_scales_with_executions() {
        let mk = |e: f64| {
            chen_stein_program_bound(&[BlockChain {
                executions: e,
                p_in: 0.001,
                marginal: vec![0.001, 0.002],
                cond_error: vec![0.01, 0.02],
            }])
            .unwrap()
        };
        let b1x = mk(1.0);
        let b10x = mk(10.0);
        assert!((b10x.lambda - 10.0 * b1x.lambda).abs() < 1e-12);
        assert!((b10x.b1 - 10.0 * b1x.b1).abs() < 1e-12);
        assert!((b10x.b2 - 10.0 * b1x.b2).abs() < 1e-12);
    }

    #[test]
    fn program_bound_eq9_divides_by_lambda_when_large() {
        // Push λ above 1: the factor must switch to 1/λ.
        let b = chen_stein_program_bound(&[BlockChain {
            executions: 1e6,
            p_in: 0.0,
            marginal: vec![1e-4, 1e-4],
            cond_error: vec![1e-3, 1e-3],
        }])
        .unwrap();
        assert!(b.lambda > 1.0);
        assert!((b.tv_bound - (b.b1 + b.b2) / b.lambda).abs() < 1e-15);
    }

    #[test]
    fn program_bound_validation() {
        assert!(chen_stein_program_bound(&[]).is_err());
        assert!(chen_stein_program_bound(&[BlockChain {
            executions: 1.0,
            p_in: 0.0,
            marginal: vec![0.1],
            cond_error: vec![0.1, 0.2],
        }])
        .is_err());
        assert!(chen_stein_program_bound(&[BlockChain {
            executions: -1.0,
            p_in: 0.0,
            marginal: vec![0.1],
            cond_error: vec![0.1],
        }])
        .is_err());
        assert!(chen_stein_program_bound(&[BlockChain {
            executions: 1.0,
            p_in: 1.5,
            marginal: vec![0.1],
            cond_error: vec![0.1],
        }])
        .is_err());
    }

    #[test]
    fn stein_bound_dominates_true_error_iid_bernoulli_sum() {
        // W = Σ of n iid Bernoulli(p), standardized; compare the bound with
        // the true Kolmogorov distance to the fitted normal.
        let n = 2000usize;
        let p = 0.3f64;
        let probs = vec![p; n];
        let exact = PoissonBinomial::new(probs).unwrap();
        let mu = exact.mean();
        let sigma = exact.variance().sqrt();
        let norm = Normal::new(mu, sigma).unwrap();
        // True d_K over the integer lattice (+½ continuity probe).
        let mut dk = 0.0f64;
        for k in 0..=n as u64 {
            dk = dk.max((exact.cdf(k) - norm.cdf(k as f64 + 0.5)).abs());
            dk = dk.max((exact.cdf(k) - norm.cdf(k as f64)).abs());
        }
        let var = p * (1.0 - p);
        let m = CentralMoments {
            var,
            // E|X−p|³ for Bernoulli: p(1−p)[(1−p)²+p²] is E[(X−p)^4]? No:
            // |0−p|³(1−p) + |1−p|³ p = p³(1−p) + (1−p)³ p.
            abs3: p.powi(3) * (1.0 - p) + (1.0 - p).powi(3) * p,
            m4: p.powi(4) * (1.0 - p) + (1.0 - p).powi(4) * p,
        };
        let bound = stein_normal_bound(&vec![m; n], sigma, 1).unwrap();
        assert!(
            dk <= bound.kolmogorov + 1e-12,
            "true dk {dk} vs bound {}",
            bound.kolmogorov
        );
        // Bound should shrink like n^{-1/4}-ish but at least be < 0.3 here.
        assert!(bound.kolmogorov < 0.3, "bound = {}", bound.kolmogorov);
    }

    #[test]
    fn stein_bound_decreases_with_n() {
        let m = CentralMoments {
            var: 0.25,
            abs3: 0.125,
            m4: 0.0625,
        };
        let b_small = stein_normal_bound(&vec![m; 100], (100f64 * 0.25).sqrt(), 2).unwrap();
        let b_large = stein_normal_bound(&vec![m; 10_000], (10_000f64 * 0.25).sqrt(), 2).unwrap();
        assert!(b_large.kolmogorov < b_small.kolmogorov);
    }

    #[test]
    fn stein_bound_validation() {
        let m = CentralMoments::default();
        assert!(stein_normal_bound(&[], 1.0, 2).is_err());
        assert!(stein_normal_bound(&[m], 0.0, 2).is_err());
        assert!(stein_normal_bound(&[m], 1.0, 0).is_err());
        let bad = CentralMoments {
            var: 1.0,
            abs3: -1.0,
            m4: 1.0,
        };
        assert!(stein_normal_bound(&[bad], 1.0, 2).is_err());
    }

    #[test]
    fn stein_bound_saturates_at_one() {
        // Pathologically bad inputs must clamp to the trivial bound 1.
        let m = CentralMoments {
            var: 1.0,
            abs3: 100.0,
            m4: 100.0,
        };
        let b = stein_normal_bound(&[m], 0.1, 2).unwrap();
        assert_eq!(b.kolmogorov, 1.0);
    }
}
