//! The Eq. 14 estimator: a Poisson distribution whose mean λ is itself a
//! (normally distributed) random variable.
//!
//! The paper's final program-error-count estimate is
//!
//! ```text
//! N̄_E(k) = ∫₀^∞ e^{−λ(x)} Σ_{i=0}^{⌊k⌋} λ(x)^i / i!  dx        (Eq. 14)
//! ```
//!
//! i.e. the Poisson CDF averaged over the distribution of λ. We evaluate the
//! inner CDF through the regularized incomplete gamma function and the outer
//! average by Gauss–Hermite quadrature (truncating the normal at λ ≤ 0,
//! where the Poisson CDF degenerates to 1). Lower/upper bound CDFs realize
//! the paper's Section 6.4 recipe: shift the λ distribution by
//! ±`d_K(λ, λ̄)` *in probability* before integrating, then add/subtract
//! `d_K(N_E, N̄_E)`, clamping to `[0, 1]`.

use crate::quadrature::{gauss_hermite, gauss_legendre};
use crate::special::std_normal_quantile_clamped;
use crate::{Normal, Poisson, Result, StatsError};

/// Number of Gauss–Hermite nodes for the unshifted Eq. 14 integral.
const GH_NODES: usize = 64;
/// Number of Gauss–Legendre nodes for the probability-shifted bound
/// integrals (quantile-space integration).
const GL_NODES: usize = 96;

/// The mixture distribution `N̄_E` of Eq. 14: `X | λ ~ Poisson(λ)` with
/// `λ ~ N(μ, σ²)` truncated at zero.
///
/// # Example
/// ```
/// use terse_stats::{Normal, PoissonNormalMixture};
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let lam = Normal::new(100.0, 10.0)?;
/// let mix = PoissonNormalMixture::new(lam)?;
/// let median_ish = mix.cdf(100.0)?;
/// assert!((median_ish - 0.5).abs() < 0.05);
/// // Over-dispersion: total variance = E[λ] + Var(λ) > E[λ].
/// assert!(mix.cdf(80.0)? > 0.01 && mix.cdf(120.0)? < 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonNormalMixture {
    lambda: Normal,
}

impl PoissonNormalMixture {
    /// Creates the mixture from the λ distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the mean of λ is
    /// negative — a program cannot have a negative expected error count —
    /// or non-finite.
    pub fn new(lambda: Normal) -> Result<Self> {
        if !(lambda.mean() >= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "lambda.mean",
                value: lambda.mean(),
                requirement: ">= 0",
            });
        }
        Ok(PoissonNormalMixture { lambda })
    }

    /// The λ distribution.
    pub fn lambda(&self) -> Normal {
        self.lambda
    }

    /// Mean of the mixture: `E[N̄_E] = E[λ]` (λ truncated at 0 is treated as
    /// 0, matching the integral's `∫₀^∞`).
    pub fn mean(&self) -> f64 {
        self.lambda.mean().max(0.0)
    }

    /// Variance of the mixture by the law of total variance:
    /// `Var = E[λ] + Var(λ)` (ignoring the negligible truncation effect).
    pub fn variance(&self) -> f64 {
        self.lambda.mean().max(0.0) + self.lambda.variance()
    }

    /// The Eq. 14 CDF, `Pr(N̄_E ≤ k)`.
    ///
    /// # Errors
    ///
    /// Propagates quadrature construction errors (unreachable for the fixed
    /// internal node counts).
    pub fn cdf(&self, k: f64) -> Result<f64> {
        if k < 0.0 {
            return Ok(0.0);
        }
        if self.lambda.sd() == 0.0 {
            return Ok(poisson_cdf_safe(k, self.lambda.mean()));
        }
        let rule = gauss_hermite(GH_NODES)?;
        let sqrt2 = std::f64::consts::SQRT_2;
        let inv_sqrt_pi = 1.0 / std::f64::consts::PI.sqrt();
        let mu = self.lambda.mean();
        let sd = self.lambda.sd();
        let v = inv_sqrt_pi
            * rule.integrate(|x| {
                let lam = mu + sqrt2 * sd * x;
                poisson_cdf_safe(k, lam)
            });
        Ok(v.clamp(0.0, 1.0))
    }

    /// The Eq. 14 CDF with the λ distribution shifted in probability by
    /// `dk_lambda` (the Stein bound `d_K(λ, λ̄)`), producing an optimistic
    /// (`Shift::Up`) or pessimistic (`Shift::Down`) envelope.
    ///
    /// Shifting a CDF up by `d` is equivalent to moving `d` probability mass
    /// to the most favorable extreme; in quantile space,
    /// `F_up⁻¹(u) = F⁻¹(max(u − d, 0⁺))`, with the first `d` of mass landing
    /// on λ = 0 (where the Poisson CDF is 1). Symmetrically for `Down`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `dk_lambda ∉ [0, 1]`.
    pub fn cdf_shifted(&self, k: f64, dk_lambda: f64, shift: Shift) -> Result<f64> {
        if !(0.0..=1.0).contains(&dk_lambda) {
            return Err(StatsError::InvalidParameter {
                name: "dk_lambda",
                value: dk_lambda,
                requirement: "0 <= d <= 1",
            });
        }
        if k < 0.0 {
            return Ok(0.0);
        }
        if dk_lambda == 0.0 {
            return self.cdf(k);
        }
        if dk_lambda >= 1.0 {
            return Ok(match shift {
                Shift::Up => 1.0,
                Shift::Down => 0.0,
            });
        }
        let mu = self.lambda.mean();
        let sd = self.lambda.sd();
        let quantile = |u: f64| -> f64 {
            if sd == 0.0 {
                mu
            } else {
                (mu + sd * std_normal_quantile_clamped(u)).max(0.0)
            }
        };
        // Integrate Pr(X ≤ k | λ = Q(u')) du over u ∈ [0,1] where u' is the
        // shifted quantile level.
        let d = dk_lambda;
        let (lo, hi, edge_mass, edge_value) = match shift {
            // Mass `d` moved to λ = 0⁺ where the Poisson CDF is 1.
            Shift::Up => (d, 1.0, d, 1.0),
            // Mass `d` moved to λ = +∞ where the Poisson CDF is 0.
            Shift::Down => (0.0, 1.0 - d, d, 0.0),
        };
        let rule = gauss_legendre(GL_NODES, lo, hi)?;
        let interior = rule.integrate(|u| {
            let u_shift = match shift {
                Shift::Up => u - d,
                Shift::Down => u + d,
            };
            poisson_cdf_safe(k, quantile(u_shift.clamp(1e-12, 1.0 - 1e-12)))
        });
        Ok((interior + edge_mass * edge_value).clamp(0.0, 1.0))
    }

    /// The full Section 6.4 bound pair at `k`: probability-shift λ by
    /// `dk_lambda`, then add/subtract `dk_count` (the Chen–Stein bound
    /// `d_K(N_E, N̄_E)`), clamping to `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates [`PoissonNormalMixture::cdf_shifted`] errors;
    /// `dk_count` must lie in `[0, 1]`.
    pub fn cdf_bounds(&self, k: f64, dk_lambda: f64, dk_count: f64) -> Result<CdfBounds> {
        if !(0.0..=1.0).contains(&dk_count) {
            return Err(StatsError::InvalidParameter {
                name: "dk_count",
                value: dk_count,
                requirement: "0 <= d <= 1",
            });
        }
        let nominal = self.cdf(k)?;
        let lower = (self.cdf_shifted(k, dk_lambda, Shift::Down)? - dk_count).clamp(0.0, 1.0);
        let upper = (self.cdf_shifted(k, dk_lambda, Shift::Up)? + dk_count).clamp(0.0, 1.0);
        Ok(CdfBounds {
            lower: lower.min(nominal),
            nominal,
            upper: upper.max(nominal),
        })
    }
}

/// Direction of a probability shift of the λ distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// Favorable: CDF shifted up (fewer errors).
    Up,
    /// Unfavorable: CDF shifted down (more errors).
    Down,
}

/// A (lower, nominal, upper) CDF triple at one evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfBounds {
    /// Pessimistic envelope value.
    pub lower: f64,
    /// The Eq. 14 nominal value.
    pub nominal: f64,
    /// Optimistic envelope value.
    pub upper: f64,
}

/// Poisson CDF that tolerates non-positive λ (point mass at zero) — the
/// truncation convention for the normal λ in Eq. 14.
// Invariant: the non-positive-λ branch returns first, so the constructor
// only ever sees a positive finite λ.
#[allow(clippy::expect_used)]
fn poisson_cdf_safe(k: f64, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if k >= 0.0 { 1.0 } else { 0.0 };
    }
    Poisson::new(lambda)
        .expect("lambda is positive and finite")
        .cdf(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(mu: f64, sd: f64) -> PoissonNormalMixture {
        PoissonNormalMixture::new(Normal::new(mu, sd).unwrap()).unwrap()
    }

    #[test]
    fn degenerate_lambda_reduces_to_poisson() {
        let m = mix(20.0, 0.0);
        let p = Poisson::new(20.0).unwrap();
        for k in [0.0, 10.0, 20.0, 30.0] {
            assert!((m.cdf(k).unwrap() - p.cdf(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let m = mix(50.0, 8.0);
        let mut prev = 0.0;
        for k in (0..120).step_by(5) {
            let c = m.cdf(k as f64).unwrap();
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-9, "k={k} c={c} prev={prev}");
            prev = c;
        }
        assert!(m.cdf(200.0).unwrap() > 0.999);
        assert_eq!(m.cdf(-1.0).unwrap(), 0.0);
    }

    #[test]
    fn mixture_is_overdispersed_relative_to_poisson() {
        // With λ ~ N(100, 15²), the mixture spreads wider than Poisson(100).
        let m = mix(100.0, 15.0);
        let p = Poisson::new(100.0).unwrap();
        // Lower tail is fatter.
        assert!(m.cdf(75.0).unwrap() > p.cdf(75.0));
        // Upper tail is fatter too (CDF smaller at high k).
        assert!(m.cdf(130.0).unwrap() < p.cdf(130.0));
    }

    #[test]
    fn mixture_matches_monte_carlo() {
        let m = mix(40.0, 6.0);
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(2024);
        let n = 60_000;
        let lam_dist = Normal::new(40.0, 6.0).unwrap();
        let mut counts_le_40 = 0usize;
        for _ in 0..n {
            let lam = lam_dist.sample_with(rng.next_open01()).max(0.0);
            let x = Poisson::new(lam).unwrap().sample_with(rng.next_open01());
            if x <= 40 {
                counts_le_40 += 1;
            }
        }
        let mc = counts_le_40 as f64 / n as f64;
        let analytic = m.cdf(40.0).unwrap();
        assert!((mc - analytic).abs() < 0.01, "mc={mc} analytic={analytic}");
    }

    #[test]
    fn shifted_cdfs_order_correctly() {
        let m = mix(60.0, 10.0);
        for k in [30.0, 50.0, 60.0, 70.0, 100.0] {
            let up = m.cdf_shifted(k, 0.05, Shift::Up).unwrap();
            let nom = m.cdf(k).unwrap();
            let down = m.cdf_shifted(k, 0.05, Shift::Down).unwrap();
            assert!(
                down <= nom + 1e-6 && nom <= up + 1e-6,
                "k={k}: {down} <= {nom} <= {up}"
            );
        }
    }

    #[test]
    fn zero_shift_equals_nominal() {
        let m = mix(25.0, 4.0);
        for k in [10.0, 25.0, 40.0] {
            let a = m.cdf_shifted(k, 0.0, Shift::Up).unwrap();
            let b = m.cdf(k).unwrap();
            assert!((a - b).abs() < 1e-9, "k={k} {a} vs {b}");
        }
    }

    #[test]
    fn full_shift_saturates() {
        let m = mix(25.0, 4.0);
        assert_eq!(m.cdf_shifted(10.0, 1.0, Shift::Up).unwrap(), 1.0);
        assert_eq!(m.cdf_shifted(10.0, 1.0, Shift::Down).unwrap(), 0.0);
    }

    #[test]
    fn bounds_bracket_nominal_and_respect_count_shift() {
        let m = mix(80.0, 12.0);
        let b = m.cdf_bounds(80.0, 0.03, 0.02).unwrap();
        assert!(b.lower <= b.nominal && b.nominal <= b.upper);
        // The count shift alone must widen the envelope by at least ~0.02 on
        // each side wherever the CDF is interior.
        assert!(b.upper - b.nominal >= 0.019);
        assert!(b.nominal - b.lower >= 0.019);
    }

    #[test]
    fn bounds_clamped_to_unit_interval() {
        let m = mix(10.0, 2.0);
        let lo = m.cdf_bounds(0.0, 0.5, 0.5).unwrap();
        assert!(lo.lower >= 0.0 && lo.upper <= 1.0);
        let hi = m.cdf_bounds(1e6, 0.5, 0.5).unwrap();
        assert!((hi.upper - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PoissonNormalMixture::new(Normal::new(-5.0, 1.0).unwrap()).is_err());
        let m = mix(10.0, 1.0);
        assert!(m.cdf_shifted(5.0, -0.1, Shift::Up).is_err());
        assert!(m.cdf_shifted(5.0, 1.1, Shift::Up).is_err());
        assert!(m.cdf_bounds(5.0, 0.1, 2.0).is_err());
    }

    #[test]
    fn moments_law_of_total_variance() {
        let m = mix(100.0, 15.0);
        assert_eq!(m.mean(), 100.0);
        assert_eq!(m.variance(), 100.0 + 225.0);
    }

    #[test]
    fn large_lambda_regime() {
        // The paper's regime: λ in the millions. Check the CDF is sane and
        // centered near the mean.
        let m = mix(2.0e6, 1.5e5);
        let below = m.cdf(1.4e6).unwrap();
        let mid = m.cdf(2.0e6).unwrap();
        let above = m.cdf(2.6e6).unwrap();
        assert!(below < 0.01, "below = {below}");
        assert!((mid - 0.5).abs() < 0.02, "mid = {mid}");
        assert!(above > 0.99, "above = {above}");
    }
}
