//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the repository must be exactly reproducible, so the
//! workspace uses a small, fully specified generator (xoshiro256** seeded via
//! SplitMix64) rather than an OS entropy source. The API is deliberately
//! minimal: uniforms, ranges, Gaussians and shuffles.

/// SplitMix64 step — used to expand a single `u64` seed into a full
/// xoshiro256** state, as recommended by the xoshiro authors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256** generator: fast, 256-bit state, passes BigCrush.
///
/// # Example
/// ```
/// use terse_stats::rng::Xoshiro256;
/// let mut a = Xoshiro256::seed_from_u64(42);
/// let mut b = Xoshiro256::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second Gaussian from the Box–Muller pair.
    gauss_spare: Option<f64>,
}

impl Xoshiro256 {
    /// Seeds the generator deterministically from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 {
            s,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in the open interval `(0, 1)` — safe for inverse-CDF sampling.
    pub fn next_open01(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Unbiased via rejection.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let m = (r as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.next_f64()
    }

    /// A standard Gaussian variate (Box–Muller with caching).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(g) = self.gauss_spare.take() {
            return g;
        }
        let u1 = self.next_open01();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator (for per-subsystem streams).
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }

    /// Counter-based stream derivation: an independent generator for
    /// sub-stream `stream` of master seed `seed`.
    ///
    /// Unlike [`fork`](Self::fork), the result depends only on
    /// `(seed, stream)` — not on how many draws any other stream has made —
    /// which is what makes parallel fan-out deterministic: worker `(i, j)`
    /// seeds `seed_stream(seed, encode(i, j))` and gets the same variates no
    /// matter how many threads run or in which order cells are scheduled.
    /// The stream index is whitened through SplitMix64 before being mixed
    /// into the master seed, so numerically adjacent streams are
    /// uncorrelated.
    pub fn seed_stream(seed: u64, stream: u64) -> Xoshiro256 {
        let mut sm = stream;
        let h = splitmix64(&mut sm);
        Xoshiro256::seed_from_u64(seed ^ h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(99);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        let mut mean = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
            mean += u;
        }
        mean /= n as f64;
        assert!((mean - 0.5).abs() < 0.01);
        assert!(min < 0.001 && max > 0.999);
    }

    #[test]
    fn next_below_unbiased_small_bound() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "frac = {frac}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 200_000;
        let (mut m1, mut m2) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.next_gaussian();
            m1 += g;
            m2 += g * g;
        }
        m1 /= n as f64;
        m2 /= n as f64;
        assert!(m1.abs() < 0.01, "mean = {m1}");
        assert!((m2 - 1.0).abs() < 0.02, "var = {m2}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_stream_depends_only_on_seed_and_stream() {
        let mut a = Xoshiro256::seed_stream(42, 7);
        let mut b = Xoshiro256::seed_stream(42, 7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_stream(42, 8);
        let mut d = Xoshiro256::seed_stream(43, 7);
        let mut a = Xoshiro256::seed_stream(42, 7);
        let same_c = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        let mut a = Xoshiro256::seed_stream(42, 7);
        let same_d = (0..64).filter(|_| a.next_u64() == d.next_u64()).count();
        assert_eq!(same_c + same_d, 0);
    }

    #[test]
    fn fork_streams_are_uncorrelated_enough() {
        let mut parent = Xoshiro256::seed_from_u64(0);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
