//! Probability metrics: Kolmogorov and total-variation distances.
//!
//! The paper's accuracy guarantees are stated in the Kolmogorov metric
//! `d_K(X, Y) = sup_x |F_X(x) − F_Y(x)|` (Eqs. 9 and 13), using the fact that
//! `d_K ≤ d_TV` (Gibbs & Su \[14]) to convert the Chen–Stein total-variation
//! bound into a Kolmogorov one.

use crate::DiscreteRv;

/// Kolmogorov distance evaluated on a grid of probe points:
/// `max_k |F(k) − G(k)|` for `k` drawn from `probes`.
///
/// For integer-valued distributions, probing every integer in the combined
/// support is exact; for continuous ones this is a lower estimate that
/// converges as the grid refines.
///
/// # Example
/// ```
/// use terse_stats::metrics::kolmogorov_distance_fns;
/// let d = kolmogorov_distance_fns(0..=10, |k| (k as f64 / 10.0), |_| 0.5);
/// assert!((d - 0.5).abs() < 1e-12);
/// ```
pub fn kolmogorov_distance_fns<I, F, G>(probes: I, f: F, g: G) -> f64
where
    I: IntoIterator<Item = i64>,
    F: Fn(i64) -> f64,
    G: Fn(i64) -> f64,
{
    let mut d = 0.0f64;
    for k in probes {
        d = d.max((f(k) - g(k)).abs());
    }
    d
}

/// Kolmogorov distance on real probe points.
pub fn kolmogorov_distance_real<F, G>(probes: &[f64], f: F, g: G) -> f64
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    let mut d = 0.0f64;
    for &x in probes {
        d = d.max((f(x) - g(x)).abs());
    }
    d
}

/// Exact Kolmogorov distance between two discrete RVs (probes at every
/// support point of either distribution, where the sup is attained).
pub fn kolmogorov_distance_discrete(a: &DiscreteRv, b: &DiscreteRv) -> f64 {
    let mut d = 0.0f64;
    for &(x, _) in a.points().iter().chain(b.points().iter()) {
        d = d.max((a.cdf(x) - b.cdf(x)).abs());
    }
    d
}

/// Total-variation distance between two discrete RVs:
/// `½ Σ_x |Pr(A = x) − Pr(B = x)|` over the union support.
pub fn tv_distance_discrete(a: &DiscreteRv, b: &DiscreteRv) -> f64 {
    let mut xs: Vec<f64> = a
        .points()
        .iter()
        .chain(b.points().iter())
        .map(|&(x, _)| x)
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let mass = |rv: &DiscreteRv, x: f64| -> f64 {
        // Point mass via binary search on the sorted support.
        rv.points()
            .binary_search_by(|&(v, _)| v.total_cmp(&x))
            .map(|i| rv.points()[i].1)
            .unwrap_or(0.0)
    };
    0.5 * xs
        .iter()
        .map(|&x| (mass(a, x) - mass(b, x)).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiscreteRv;

    #[test]
    fn kolmogorov_discrete_exact() {
        let a = DiscreteRv::new(vec![(0.0, 0.5), (1.0, 0.5)]).unwrap();
        let b = DiscreteRv::new(vec![(0.0, 0.2), (1.0, 0.8)]).unwrap();
        // |F_a(0) - F_b(0)| = |0.5 - 0.2| = 0.3, at 1 both are 1.
        assert!((kolmogorov_distance_discrete(&a, &b) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn kolmogorov_identical_is_zero() {
        let a = DiscreteRv::new(vec![(0.0, 0.5), (3.0, 0.5)]).unwrap();
        assert_eq!(kolmogorov_distance_discrete(&a, &a), 0.0);
    }

    #[test]
    fn tv_distance_known_value() {
        let a = DiscreteRv::new(vec![(0.0, 0.5), (1.0, 0.5)]).unwrap();
        let b = DiscreteRv::new(vec![(1.0, 0.5), (2.0, 0.5)]).unwrap();
        // Overlap only at 1 (mass 0.5 both): TV = ½(0.5 + 0 + 0.5) = 0.5.
        assert!((tv_distance_discrete(&a, &b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn kolmogorov_bounded_by_tv() {
        // d_K ≤ d_TV (Gibbs & Su) — spot-check on several random pairs.
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(17);
        for _ in 0..20 {
            let a = DiscreteRv::new((0..5).map(|i| (i as f64, rng.next_f64() + 0.01)).collect())
                .unwrap();
            let b = DiscreteRv::new((0..5).map(|i| (i as f64, rng.next_f64() + 0.01)).collect())
                .unwrap();
            let dk = kolmogorov_distance_discrete(&a, &b);
            let tv = tv_distance_discrete(&a, &b);
            assert!(dk <= tv + 1e-12, "dk={dk} tv={tv}");
        }
    }

    #[test]
    fn disjoint_supports_have_tv_one() {
        let a = DiscreteRv::new(vec![(0.0, 1.0)]).unwrap();
        let b = DiscreteRv::new(vec![(5.0, 1.0)]).unwrap();
        assert!((tv_distance_discrete(&a, &b) - 1.0).abs() < 1e-15);
        assert!((kolmogorov_distance_discrete(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn real_probe_variant() {
        let d = kolmogorov_distance_real(&[0.0, 0.5, 1.0], |x| x, |x| x * x);
        assert!((d - 0.25).abs() < 1e-15);
    }
}
