//! # terse-stats
//!
//! Statistical substrate for the TERSE framework — a from-scratch
//! reproduction of *Accurate Estimation of Program Error Rate for
//! Timing-Speculative Processors* (Assare & Gupta, DAC 2019).
//!
//! The paper's program-error-rate estimator (its Section 5) is built on a
//! small set of applied-statistics tools that have no offline-ecosystem
//! equivalent, so this crate implements them from first principles:
//!
//! * [`special`] — special functions: `erf`/`erfc`, the normal CDF and
//!   quantile, `ln Γ`, and the regularized incomplete gamma functions used to
//!   evaluate Poisson CDFs with very large means.
//! * [`normal`], [`poisson`], [`pbd`] — the Normal, Poisson and
//!   Poisson-binomial distributions. The Poisson-binomial distribution is the
//!   *exact* law of a program's error count (a sum of non-identical Bernoulli
//!   indicators) and serves as ground truth in tests and ablations.
//! * [`discrete`] — discrete random variables with exact moment computation,
//!   used to represent data-variation distributions of error probabilities.
//! * [`samples`] — fixed-length sample-vector random variables: the
//!   data-variation propagation format used throughout the pipeline
//!   (Section 4.2 of the paper manipulates probabilities that are themselves
//!   random variables over program inputs).
//! * [`stein`] — Stein's method bound for the normal approximation of a sum
//!   of locally dependent variables (the paper's Theorem 5.2, Eqs. 11–13) and
//!   the Chen–Stein bound for the Poisson approximation (Theorem 5.1,
//!   Eqs. 3–9).
//! * [`mixture`] — the Eq. 14 estimator: the CDF of a Poisson whose mean is
//!   itself normally distributed, with Kolmogorov-shifted lower/upper bound
//!   variants.
//! * [`metrics`] — Kolmogorov and total-variation distances.
//! * [`linalg`] — dense LU/Cholesky linear algebra for the per-SCC marginal
//!   probability systems of Section 4.2.
//! * [`guard`] — numerical-degradation guards: NaN/Inf detection, nearest-PSD
//!   repair of correlation matrices, and the [`DegradationPolicy`] selector
//!   threaded through the estimation pipeline.
//! * [`quadrature`] — Gauss–Hermite and Gauss–Legendre rules for the Eq. 14
//!   integrals.
//! * [`rng`] — a small deterministic RNG (SplitMix64 / xoshiro256**) so every
//!   experiment in the repository is reproducible without external crates.
//!
//! # Example
//!
//! Approximate a Poisson-binomial error count with a Poisson distribution and
//! bound the approximation error exactly as the paper does:
//!
//! ```
//! use terse_stats::pbd::PoissonBinomial;
//! use terse_stats::poisson::Poisson;
//! use terse_stats::metrics::kolmogorov_distance_fns;
//!
//! # fn main() -> Result<(), terse_stats::StatsError> {
//! let probs = vec![0.01, 0.02, 0.005, 0.03, 0.015];
//! let exact = PoissonBinomial::new(probs.clone())?;
//! let approx = Poisson::new(probs.iter().sum())?;
//! let dk = kolmogorov_distance_fns(0..=5, |k| exact.cdf(k as u64), |k| {
//!     approx.cdf(k as f64)
//! });
//! assert!(dk < 0.01);
//! # Ok(())
//! # }
//! ```

// Numeric-kernel idioms used intentionally throughout this crate:
// `!(x >= 0.0)` rejects NaN along with negatives, and index loops run over
// several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]
#![warn(missing_docs)]
pub mod discrete;
pub mod guard;
pub mod kahan;
pub mod linalg;
pub mod metrics;
pub mod mixture;
pub mod normal;
pub mod pbd;
pub mod poisson;
pub mod quadrature;
pub mod rng;
pub mod samples;
pub mod special;
pub mod stein;

pub use discrete::DiscreteRv;
pub use guard::DegradationPolicy;
pub use linalg::Matrix;
pub use mixture::PoissonNormalMixture;
pub use normal::Normal;
pub use pbd::PoissonBinomial;
pub use poisson::Poisson;
pub use samples::SampleRv;

use std::fmt;

/// Error type for every fallible constructor and operation in this crate.
///
/// The `Display` form is a lowercase description without trailing
/// punctuation, per the Rust API guidelines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A parameter was outside its mathematical domain (e.g. a negative
    /// variance or a probability outside `[0, 1]`).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was rejected.
        value: f64,
        /// What the parameter must satisfy.
        requirement: &'static str,
    },
    /// Two operands had mismatched dimensions (sample counts, matrix sizes).
    DimensionMismatch {
        /// Human-readable description of the operation.
        context: &'static str,
        /// Left-hand dimension.
        left: usize,
        /// Right-hand dimension.
        right: usize,
    },
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// Which routine failed.
        routine: &'static str,
    },
    /// A matrix was singular (or numerically singular) during factorization.
    SingularMatrix,
    /// An empty collection was supplied where at least one element is needed.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// A value that must be finite was NaN or ±∞.
    NonFinite {
        /// Where the non-finite value was observed.
        context: &'static str,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
    /// A symmetric matrix expected to be positive definite was not (Cholesky
    /// found a non-positive pivot).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "parameter `{name}` = {value} must satisfy {requirement}"),
            StatsError::DimensionMismatch {
                context,
                left,
                right,
            } => write!(f, "dimension mismatch in {context}: {left} vs {right}"),
            StatsError::NoConvergence { routine } => {
                write!(f, "numerical routine `{routine}` failed to converge")
            }
            StatsError::SingularMatrix => write!(f, "matrix is singular to working precision"),
            StatsError::Empty { what } => write!(f, "{what} must not be empty"),
            StatsError::NonFinite { context, value } => {
                write!(f, "non-finite value {value} in {context}")
            }
            StatsError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T, E = StatsError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_without_period() {
        let e = StatsError::SingularMatrix;
        let s = e.to_string();
        assert!(s.starts_with(|c: char| c.is_lowercase()));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
