//! Special functions: `erf`, `erfc`, normal CDF/quantile, `ln Γ`, and the
//! regularized incomplete gamma functions.
//!
//! The Eq. 14 estimator needs Poisson CDFs at means up to ~10⁷ (a billion
//! instructions at a 1 % error rate), which are evaluated through the
//! regularized upper incomplete gamma function `Q(k + 1, λ)`. The series and
//! continued-fraction evaluations below converge in `O(√a)` iterations near
//! the transition `x ≈ a`, which keeps even λ ~ 10⁷ affordable.

use crate::{Result, StatsError};

/// `1/√(2π)`, the normalization constant of the standard normal density.
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to ~1 ulp of `f64` over the whole real line (computed through
/// [`erfc`] for |x| where cancellation would matter).
///
/// # Example
/// ```
/// let e = terse_stats::special::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-14);
/// ```
pub fn erf(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 - erfc(x)
    } else {
        erfc(-x) - 1.0
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the W. J. Cody-style rational expansion in three ranges; relative
/// error below ~1e-15 for `x ≥ 0`, and the reflection `erfc(−x) = 2 − erfc(x)`
/// otherwise.
///
/// # Example
/// ```
/// assert!((terse_stats::special::erfc(0.0) - 1.0).abs() < 1e-15);
/// assert!(terse_stats::special::erfc(30.0) < 1e-300);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 0.5 {
        // Series for erf in the small-argument range: relative accuracy and
        // no cancellation since erf(x) ≈ x there.
        return 1.0 - erf_series(x);
    }
    // Continued-fraction/Laplace style evaluation via the scaled function
    // erfcx(x) = e^{x²} erfc(x), computed with a Chebyshev-like rational fit
    // (Numerical-Recipes erfc_cheb coefficients, accurate to ~1.2e-16
    // fractional error for all x ≥ 0).
    let z = x;
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0_f64;
    let mut dd = 0.0_f64;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp()
}

/// Maclaurin series for `erf` on `[0, 0.5]` (converges in < 12 terms there).
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < sum.abs() * 1e-17 || n > 40 {
            break;
        }
    }
    std::f64::consts::FRAC_2_SQRT_PI * sum
}

/// The standard normal cumulative distribution function
/// `Φ(x) = ½ erfc(−x/√2)`.
///
/// # Example
/// ```
/// use terse_stats::special::std_normal_cdf;
/// assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((std_normal_cdf(1.959963984540054) - 0.975).abs() < 1e-12);
/// ```
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// The standard normal probability density function `φ(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// The standard normal quantile function `Φ⁻¹(p)`.
///
/// Acklam's rational approximation refined with one Halley step against
/// [`std_normal_cdf`], giving roughly full `f64` accuracy on `(0, 1)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] unless `0 < p < 1`
/// (the endpoints map to ±∞ which is almost never what a caller wants;
/// use [`std_normal_quantile_clamped`] for saturating behaviour).
///
/// # Example
/// ```
/// use terse_stats::special::{std_normal_cdf, std_normal_quantile};
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let z = std_normal_quantile(0.975)?;
/// assert!((std_normal_cdf(z) - 0.975).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn std_normal_quantile(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "p",
            value: p,
            requirement: "0 < p < 1",
        });
    }
    Ok(std_normal_quantile_unchecked(p))
}

/// Like [`std_normal_quantile`] but saturating: `p ≤ 0` yields `-∞` and
/// `p ≥ 1` yields `+∞` instead of an error.
pub fn std_normal_quantile_clamped(p: f64) -> f64 {
    if p <= 0.0 {
        f64::NEG_INFINITY
    } else if p >= 1.0 {
        f64::INFINITY
    } else {
        std_normal_quantile_unchecked(p)
    }
}

fn std_normal_quantile_unchecked(p: f64) -> f64 {
    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        138.357_751_867_269,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Natural logarithm of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients), accurate to ~1e-13
/// relative over `x > 0`.
///
/// # Panics
///
/// Panics in debug builds if `x ≤ 0` (non-positive arguments are outside
/// every use in this crate).
///
/// # Example
/// ```
/// use terse_stats::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-13);           // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885,
        -1_259.139_216_722_400_8,
        771.323_428_777_653,
        -176.615_029_162_141,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x ≥ 0`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `a ≤ 0` or `x < 0`, and
/// [`StatsError::NoConvergence`] if the series/continued fraction fails to
/// converge (practically unreachable for finite inputs).
///
/// # Example
/// ```
/// use terse_stats::special::reg_gamma_p;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// // P(1, x) = 1 - e^{-x}
/// let p = reg_gamma_p(1.0, 2.0)?;
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn reg_gamma_p(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        Ok(1.0 - gamma_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma function
/// `Q(a, x) = 1 − P(a, x)`.
///
/// The Poisson CDF is `Pr(X ≤ k) = Q(k + 1, λ)`, which is how
/// [`crate::poisson::Poisson::cdf`] evaluates it.
///
/// # Errors
///
/// Same as [`reg_gamma_p`].
pub fn reg_gamma_q(a: f64, x: f64) -> Result<f64> {
    check_gamma_args(a, x)?;
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series(a, x)?)
    } else {
        gamma_cf(a, x)
    }
}

fn check_gamma_args(a: f64, x: f64) -> Result<()> {
    if !(a > 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            requirement: "a > 0",
        });
    }
    if !(x >= 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: x,
            requirement: "x >= 0",
        });
    }
    Ok(())
}

/// Maximum iterations for the incomplete-gamma routines, scaled so the
/// `x ≈ a` transition region (which needs `O(√a)` terms) always converges.
fn gamma_itmax(a: f64) -> usize {
    2_000 + (20.0 * a.sqrt()) as usize
}

/// Series representation of `P(a, x)`; converges fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> Result<f64> {
    let itmax = gamma_itmax(a);
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..itmax {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            let logv = -x + a * x.ln() - gln;
            return Ok((sum * logv.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_series",
    })
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz);
/// converges fast for `x ≥ a + 1`.
fn gamma_cf(a: f64, x: f64) -> Result<f64> {
    const FPMIN: f64 = f64::MIN_POSITIVE / f64::EPSILON;
    let itmax = gamma_itmax(a);
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=itmax {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            let logv = -x + a * x.ln() - gln;
            return Ok((h * logv.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_cf",
    })
}

/// `ln(n!)` computed through [`ln_gamma`]; exact for the small factorials.
pub fn ln_factorial(n: u64) -> f64 {
    // Table the first values: exact and fast, and the common case in tests.
    const TABLE: [f64; 11] = [
        0.0, 0.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0, 40320.0, 362880.0, 3628800.0,
    ];
    if n <= 10 {
        TABLE[n as usize].max(1.0).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from standard tables (Abramowitz & Stegun / mpmath).
    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.1, 0.1124629160182849),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (-1.0, -0.8427007929497149),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-13,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_reference_values() {
        let cases = [
            (0.5, 0.4795001221869535),
            (1.0, 0.1572992070502851),
            (2.0, 0.004677734981063127),
            (4.0, 1.541725790028002e-8),
            (6.0, 2.1519736712498913e-17),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-10,
                "erfc({x}) = {got} want {want}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for i in 0..100 {
            let x = -3.0 + 0.06 * i as f64;
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-13);
        }
    }

    #[test]
    fn normal_cdf_tail_values() {
        // Φ(-6) from tables.
        let want = 9.865876450376946e-10;
        let got = std_normal_cdf(-6.0);
        assert!(((got - want) / want).abs() < 1e-10, "got {got}");
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let z = std_normal_quantile(p).unwrap();
            assert!(
                (std_normal_cdf(z) - p).abs() < 1e-13,
                "p = {p}, z = {z}, cdf = {}",
                std_normal_cdf(z)
            );
        }
    }

    #[test]
    fn normal_quantile_extreme_tails() {
        let z = std_normal_quantile(1e-12).unwrap();
        assert!((std_normal_cdf(z) / 1e-12 - 1.0).abs() < 1e-6);
        assert!(std_normal_quantile(0.0).is_err());
        assert!(std_normal_quantile(1.0).is_err());
        assert_eq!(std_normal_quantile_clamped(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile_clamped(1.0), f64::INFINITY);
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            let got = ln_gamma(n as f64);
            assert!(
                (got - fact.ln()).abs() < 1e-11 * fact.ln().abs().max(1.0),
                "lnΓ({n}) = {got} want {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
        // Γ(3/2) = √π/2
        let want = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - want).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for x in [0.0f64, 0.1, 1.0, 5.0, 20.0] {
            let want = 1.0 - (-x).exp();
            let got = reg_gamma_p(1.0, x).unwrap();
            assert!((got - want).abs() < 1e-13, "P(1,{x}) = {got} want {want}");
        }
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for a in [0.5, 1.0, 3.7, 10.0, 100.0] {
            for x in [0.01, 0.5, 1.0, 3.0, 9.9, 100.0, 150.0] {
                let p = reg_gamma_p(a, x).unwrap();
                let q = reg_gamma_q(a, x).unwrap();
                assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x} p+q={}", p + q);
            }
        }
    }

    #[test]
    fn incomplete_gamma_median_large_a() {
        // For large a, P(a, a) → 1/2 (median of Gamma(a) ≈ a - 1/3).
        for a in [1e3, 1e5, 1e7] {
            let p = reg_gamma_p(a, a).unwrap();
            assert!(
                (p - 0.5).abs() < 0.2 / a.sqrt().min(100.0),
                "P({a},{a}) = {p}"
            );
            // Tighter: P(a, a - 1/3) ≈ 1/2 within O(1/a).
            let pm = reg_gamma_p(a, a - 1.0 / 3.0).unwrap();
            assert!((pm - 0.5).abs() < 1e-2, "P(a, a-1/3) = {pm}");
        }
    }

    #[test]
    fn incomplete_gamma_rejects_bad_args() {
        assert!(reg_gamma_p(0.0, 1.0).is_err());
        assert!(reg_gamma_p(-1.0, 1.0).is_err());
        assert!(reg_gamma_p(1.0, -0.5).is_err());
    }

    #[test]
    fn ln_factorial_matches_direct() {
        let mut f = 1.0f64;
        for n in 1..=20u64 {
            f *= n as f64;
            assert!((ln_factorial(n) - f.ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn std_normal_pdf_peak() {
        assert!((std_normal_pdf(0.0) - FRAC_1_SQRT_2PI).abs() < 1e-16);
    }
}
