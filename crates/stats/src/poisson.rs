//! The Poisson distribution.
//!
//! The law of rare events (Poisson limit theorem, Le Cam \[20] in the paper)
//! approximates the program error count — a sum of many Bernoulli indicators
//! with small success probabilities — by a Poisson distribution (`N̄_E` in
//! Section 5). Its CDF is evaluated through the regularized upper incomplete
//! gamma function so that means up to ~10⁷ (billions of instructions at
//! sub-percent error rates) remain tractable.

use crate::special::{ln_gamma, reg_gamma_q};
use crate::{Result, StatsError};

/// A Poisson distribution with mean (and variance) `λ > 0`.
///
/// # Example
/// ```
/// use terse_stats::Poisson;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let p = Poisson::new(3.0)?;
/// // Pr(X = 0) = e^{-3}
/// assert!((p.pmf(0) - (-3.0f64).exp()).abs() < 1e-14);
/// assert!((p.cdf(1000.0) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `λ` is finite and
    /// `λ ≥ 0`. `λ = 0` is the point mass at zero.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda >= 0.0) || !lambda.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "lambda",
                value: lambda,
                requirement: "finite and >= 0",
            });
        }
        Ok(Poisson { lambda })
    }

    /// The mean λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The mean (equal to λ).
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// The variance (equal to λ).
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Probability mass `Pr(X = k)`, computed in log space to avoid overflow
    /// for large `k` and `λ`.
    pub fn pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        let kf = k as f64;
        (kf * self.lambda.ln() - self.lambda - ln_gamma(kf + 1.0)).exp()
    }

    /// Cumulative distribution function `Pr(X ≤ k)` for real `k`
    /// (fractional `k` floors, matching the paper's `⌊k⌋` in Eq. 14).
    ///
    /// Evaluated as `Q(⌊k⌋ + 1, λ)`, the regularized upper incomplete gamma
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if the incomplete-gamma evaluation fails to converge, which is
    /// unreachable for finite `λ ≥ 0` (the iteration budget scales with
    /// `√λ`).
    // Invariant: the iteration budget of `reg_gamma_q` scales with √λ, so
    // it converges for every finite λ ≥ 0 the constructor admits.
    #[allow(clippy::expect_used)]
    pub fn cdf(&self, k: f64) -> f64 {
        if k < 0.0 {
            return 0.0;
        }
        if self.lambda == 0.0 {
            return 1.0;
        }
        let kfl = k.floor();
        reg_gamma_q(kfl + 1.0, self.lambda).expect("incomplete gamma converges for finite lambda")
    }

    /// Survival function `Pr(X > k)`.
    // Invariant: same convergence argument as `cdf`.
    #[allow(clippy::expect_used)]
    pub fn sf(&self, k: f64) -> f64 {
        if k < 0.0 {
            return 1.0;
        }
        if self.lambda == 0.0 {
            return 0.0;
        }
        let kfl = k.floor();
        crate::special::reg_gamma_p(kfl + 1.0, self.lambda)
            .expect("incomplete gamma converges for finite lambda")
    }

    /// Smallest `k` with `Pr(X ≤ k) ≥ p`, found by bisection on the CDF.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<u64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: p,
                requirement: "0 < p < 1",
            });
        }
        if self.lambda == 0.0 {
            return Ok(0);
        }
        // Bracket using the normal approximation then bisect.
        let guess =
            self.lambda + crate::special::std_normal_quantile_clamped(p) * self.lambda.sqrt();
        let mut lo = 0u64;
        let mut hi = (guess.max(self.lambda) * 2.0 + 20.0) as u64;
        while self.cdf(hi as f64) < p {
            lo = hi;
            hi = hi.saturating_mul(2).max(hi + 16);
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid as f64) >= p {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(lo)
    }

    /// Draws one sample using the supplied uniform variate `u ∈ (0, 1)`.
    ///
    /// Inversion by sequential search for small λ; normal approximation with
    /// a local CDF search for large λ. Deterministic given `u`.
    pub fn sample_with(&self, u: f64) -> u64 {
        let u = u.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 50.0 {
            // Sequential inversion.
            let mut k = 0u64;
            let mut p = (-self.lambda).exp();
            let mut cum = p;
            while cum < u && k < 10_000 {
                k += 1;
                p *= self.lambda / k as f64;
                cum += p;
            }
            k
        } else {
            self.quantile(u).unwrap_or(self.lambda as u64)
        }
    }
}

impl std::fmt::Display for Poisson {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Poisson({})", self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pmf_sums_to_one_small_lambda() {
        let p = Poisson::new(4.2).unwrap();
        let total: f64 = (0..200).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let p = Poisson::new(7.7).unwrap();
        let mut cum = 0.0;
        for k in 0..40u64 {
            cum += p.pmf(k);
            let cdf = p.cdf(k as f64);
            assert!((cdf - cum).abs() < 1e-11, "k={k} cdf={cdf} cum={cum}");
        }
    }

    #[test]
    fn cdf_floors_fractional_k() {
        let p = Poisson::new(2.0).unwrap();
        assert_eq!(p.cdf(3.999), p.cdf(3.0));
        assert!(p.cdf(4.0) > p.cdf(3.999));
    }

    #[test]
    fn cdf_large_lambda_median() {
        // Median of Poisson(λ) ≈ λ + 1/3 − 0.02/λ; CDF at λ is close to 1/2.
        for lam in [1e3, 1e5, 1e6] {
            let p = Poisson::new(lam).unwrap();
            let c = p.cdf(lam);
            assert!((c - 0.5).abs() < 0.01, "λ={lam} cdf(λ)={c}");
        }
    }

    #[test]
    fn cdf_sf_complement() {
        let p = Poisson::new(123.4).unwrap();
        for k in [0.0, 50.0, 123.0, 200.0, 400.0] {
            assert!((p.cdf(k) + p.sf(k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_is_cdf_inverse() {
        let p = Poisson::new(31.0).unwrap();
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let k = p.quantile(q).unwrap();
            assert!(p.cdf(k as f64) >= q);
            if k > 0 {
                assert!(p.cdf(k as f64 - 1.0) < q);
            }
        }
    }

    #[test]
    fn zero_lambda_point_mass() {
        let p = Poisson::new(0.0).unwrap();
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(3), 0.0);
        assert_eq!(p.cdf(0.0), 1.0);
        assert_eq!(p.sample_with(0.9), 0);
    }

    #[test]
    fn sampling_mean_converges() {
        let p = Poisson::new(9.0).unwrap();
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64; // stratified uniforms
            sum += p.sample_with(u) as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 9.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn sampling_large_lambda() {
        let p = Poisson::new(1e4).unwrap();
        let s = p.sample_with(0.5);
        assert!((s as f64 - 1e4).abs() < 50.0);
    }
}
