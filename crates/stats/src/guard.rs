//! Numerical-degradation guards for long-running estimation campaigns.
//!
//! The pipeline's failure modes are statistical, not logical: a NaN escaping
//! a quadrature, a correlation matrix pushed off the PSD cone by rounding, a
//! fixed-point iteration that circles instead of contracting. On a
//! multi-hour Monte Carlo sweep any of these used to cost the whole run.
//! This module centralizes the three defenses:
//!
//! 1. **Detection** — [`ensure_all_finite`] / [`sanitize_probability`] turn
//!    silent NaN/Inf propagation into typed [`StatsError`]s at the point of
//!    first contact.
//! 2. **Repair** — [`nearest_psd_correlation`] projects an almost-PSD
//!    correlation matrix back onto the cone by shrinking toward the
//!    identity (Ledoit–Wolf-style `(1−α)·Σ + α·I`), reporting how much
//!    shrinkage was needed so callers can log the degradation.
//! 3. **Policy** — [`DegradationPolicy`] selects between failing fast
//!    ([`DegradationPolicy::Strict`], the default: any anomaly is an error)
//!    and bounded, documented fallbacks ([`DegradationPolicy::Repair`]).
//!    The policy is threaded from `terse::FrameworkBuilder` down to the
//!    marginal solver; every repair is *bounded* (clamping, capped
//!    iteration counts, capped shrinkage) so Repair mode can degrade
//!    accuracy but never diverge or fabricate probabilities outside
//!    `[0, 1]`.

use crate::{Matrix, Result, StatsError};

/// How the pipeline responds to numerical anomalies.
///
/// Threaded from `terse::FrameworkBuilder::degradation` through the marginal
/// solver and correlation handling. `Strict` is the default and preserves
/// the historical fail-fast behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Fail fast: any NaN/Inf, non-PSD matrix, or non-convergent iteration
    /// surfaces as a typed error immediately.
    #[default]
    Strict,
    /// Degrade gracefully: apply bounded, documented fallbacks (clamping to
    /// `[0, 1]`, nearest-PSD shrinkage, damped capped iteration) and only
    /// error when no bounded repair exists (e.g. NaN, which carries no
    /// information to repair from).
    Repair,
}

impl DegradationPolicy {
    /// Whether bounded fallbacks are allowed.
    pub fn is_repair(self) -> bool {
        matches!(self, DegradationPolicy::Repair)
    }
}

/// Verifies every value is finite.
///
/// # Errors
///
/// Returns [`StatsError::NonFinite`] naming `context` at the first NaN/±∞.
pub fn ensure_all_finite(context: &'static str, values: &[f64]) -> Result<()> {
    for &v in values {
        if !v.is_finite() {
            return Err(StatsError::NonFinite { context, value: v });
        }
    }
    Ok(())
}

/// Slack beyond `[0, 1]` accepted as pure floating-point noise in `Strict`
/// mode (matches the marginal solver's historical validation tolerance).
pub const PROB_TOLERANCE: f64 = 1e-9;

/// Validates (and under [`DegradationPolicy::Repair`], clamps) a
/// probability.
///
/// * Non-finite values are an error under **both** policies — NaN carries no
///   information to repair from, so "repairing" it would fabricate data.
/// * `Strict`: values outside `[−PROB_TOLERANCE, 1 + PROB_TOLERANCE]` are an
///   error; values within the tolerance band are clamped to `[0, 1]`.
/// * `Repair`: any finite value is clamped to `[0, 1]`.
///
/// # Errors
///
/// [`StatsError::NonFinite`] or [`StatsError::InvalidParameter`] as above.
pub fn sanitize_probability(
    policy: DegradationPolicy,
    context: &'static str,
    p: f64,
) -> Result<f64> {
    if !p.is_finite() {
        return Err(StatsError::NonFinite { context, value: p });
    }
    if !policy.is_repair() && !(-PROB_TOLERANCE..=1.0 + PROB_TOLERANCE).contains(&p) {
        return Err(StatsError::InvalidParameter {
            name: "probability",
            value: p,
            requirement: "within [0, 1] (Strict degradation policy)",
        });
    }
    Ok(p.clamp(0.0, 1.0))
}

/// Outcome of a nearest-PSD repair.
#[derive(Debug, Clone)]
pub struct PsdRepair {
    /// The repaired (positive-definite) correlation matrix.
    pub matrix: Matrix,
    /// Shrinkage intensity applied: `0` means the input was already usable,
    /// `α` means the result is `(1−α)·Σ + α·I`.
    pub alpha: f64,
}

/// Smallest diagonal loading accepted by the repair — keeps the repaired
/// matrix comfortably factorizable instead of sitting on the cone boundary.
const MIN_JITTER: f64 = 1e-12;

/// Projects a symmetric correlation-like matrix onto the positive-definite
/// cone by shrinking toward the identity.
///
/// Finds (by 64-step bisection on the shrinkage intensity `α ∈ [0, 1]`,
/// using Cholesky as the feasibility oracle) a near-minimal `α` such that
/// `(1−α)·Σ + α·I` factorizes, then returns that matrix. Shrinking toward
/// `I` preserves the unit diagonal and symmetry, never increases any
/// |off-diagonal| entry, and always succeeds for `α = 1`, so the repair is
/// total over finite symmetric inputs with unit diagonal. The returned
/// [`PsdRepair::alpha`] quantifies the information lost — callers in
/// `Repair` mode should surface it in diagnostics.
///
/// # Errors
///
/// * [`StatsError::DimensionMismatch`] — non-square input.
/// * [`StatsError::NonFinite`] — any NaN/±∞ entry (no bounded repair).
/// * [`StatsError::InvalidParameter`] — diagonal entries that are not 1
///   within `1e-9`, or asymmetry beyond `1e-9` (the input is then not a
///   correlation matrix at all, which is a logic bug upstream, not noise).
pub fn nearest_psd_correlation(sigma: &Matrix) -> Result<PsdRepair> {
    let n = sigma.rows();
    if n != sigma.cols() {
        return Err(StatsError::DimensionMismatch {
            context: "guard::nearest_psd_correlation",
            left: n,
            right: sigma.cols(),
        });
    }
    for i in 0..n {
        for j in 0..n {
            let v = sigma[(i, j)];
            if !v.is_finite() {
                return Err(StatsError::NonFinite {
                    context: "guard::nearest_psd_correlation",
                    value: v,
                });
            }
            if i == j && (v - 1.0).abs() > 1e-9 {
                return Err(StatsError::InvalidParameter {
                    name: "diagonal",
                    value: v,
                    requirement: "correlation diagonal must be 1",
                });
            }
            if (v - sigma[(j, i)]).abs() > 1e-9 {
                return Err(StatsError::InvalidParameter {
                    name: "asymmetry",
                    value: v - sigma[(j, i)],
                    requirement: "correlation matrix must be symmetric",
                });
            }
        }
    }
    let shrunk = |alpha: f64| -> Result<Matrix> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            for j in 0..n {
                let id = if i == j { 1.0 } else { 0.0 };
                m[(i, j)] = (1.0 - alpha) * sigma[(i, j)] + alpha * id;
            }
        }
        Ok(m)
    };
    // Fast path: already comfortably positive definite.
    if shrunk(MIN_JITTER)?.cholesky().is_ok() {
        return Ok(PsdRepair {
            matrix: sigma.clone(),
            alpha: 0.0,
        });
    }
    // Bisect the smallest feasible shrinkage. α = 1 gives the identity,
    // which always factorizes, so `hi` is a valid upper bound throughout.
    let (mut lo, mut hi) = (MIN_JITTER, 1.0);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if shrunk(mid)?.cholesky().is_ok() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // Step slightly inside the feasible region so downstream Cholesky calls
    // are not at the mercy of their own rounding.
    let alpha = (hi * (1.0 + 1e-6) + MIN_JITTER).min(1.0);
    Ok(PsdRepair {
        matrix: shrunk(alpha)?,
        alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_default_is_strict() {
        assert_eq!(DegradationPolicy::default(), DegradationPolicy::Strict);
        assert!(!DegradationPolicy::Strict.is_repair());
        assert!(DegradationPolicy::Repair.is_repair());
    }

    #[test]
    fn finite_checks() {
        assert!(ensure_all_finite("t", &[0.0, 1.0, -3.5]).is_ok());
        assert!(matches!(
            ensure_all_finite("t", &[0.0, f64::NAN]),
            Err(StatsError::NonFinite { context: "t", .. })
        ));
        assert!(ensure_all_finite("t", &[f64::INFINITY]).is_err());
    }

    #[test]
    fn sanitize_probability_policies() {
        use DegradationPolicy::{Repair, Strict};
        // In-range values pass untouched under both policies.
        assert_eq!(sanitize_probability(Strict, "t", 0.25).unwrap(), 0.25);
        assert_eq!(sanitize_probability(Repair, "t", 0.25).unwrap(), 0.25);
        // Noise within tolerance is clamped even under Strict.
        assert_eq!(sanitize_probability(Strict, "t", -1e-12).unwrap(), 0.0);
        assert_eq!(sanitize_probability(Strict, "t", 1.0 + 1e-12).unwrap(), 1.0);
        // Gross violations: Strict errors, Repair clamps.
        assert!(sanitize_probability(Strict, "t", 1.5).is_err());
        assert_eq!(sanitize_probability(Repair, "t", 1.5).unwrap(), 1.0);
        assert_eq!(sanitize_probability(Repair, "t", -7.0).unwrap(), 0.0);
        // NaN is unrepairable under both.
        assert!(sanitize_probability(Repair, "t", f64::NAN).is_err());
        assert!(sanitize_probability(Strict, "t", f64::INFINITY).is_err());
    }

    #[test]
    fn psd_repair_leaves_valid_matrix_untouched() {
        let m = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 1.0]]).unwrap();
        let r = nearest_psd_correlation(&m).unwrap();
        assert_eq!(r.alpha, 0.0);
        assert_eq!(r.matrix, m);
    }

    #[test]
    fn psd_repair_fixes_non_psd_correlation() {
        // Pairwise ρ = −0.9 among three variables cannot be jointly
        // realized: eigenvalues are {1.9, 1.9, −0.8}.
        let m = Matrix::from_rows(&[&[1.0, -0.9, -0.9], &[-0.9, 1.0, -0.9], &[-0.9, -0.9, 1.0]])
            .unwrap();
        assert!(m.cholesky().is_err());
        let r = nearest_psd_correlation(&m).unwrap();
        assert!(r.matrix.cholesky().is_ok(), "repair must be factorizable");
        assert!(r.alpha > 0.0 && r.alpha < 1.0, "alpha = {}", r.alpha);
        // Minimal shrinkage: α* = 1 − 1/|λmin-scaled|… for this matrix the
        // feasibility boundary is at α = 1 − 1/1.8 ≈ 0.4444.
        assert!((r.alpha - (1.0 - 1.0 / 1.8)).abs() < 1e-3, "{}", r.alpha);
        for i in 0..3 {
            assert!((r.matrix[(i, i)] - 1.0).abs() < 1e-12, "unit diagonal");
        }
        assert!(r.matrix[(0, 1)].abs() < 0.9, "shrinkage reduces |ρ|");
    }

    #[test]
    fn psd_repair_rejects_garbage() {
        let nan = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 1.0]]).unwrap();
        assert!(matches!(
            nearest_psd_correlation(&nan),
            Err(StatsError::NonFinite { .. })
        ));
        let bad_diag = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert!(nearest_psd_correlation(&bad_diag).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 0.5], &[-0.5, 1.0]]).unwrap();
        assert!(nearest_psd_correlation(&asym).is_err());
        let rect = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
        assert!(nearest_psd_correlation(&rect).is_err());
    }
}
