//! Dense linear algebra: matrices and LU factorization with partial pivoting.
//!
//! Section 4.2 of the paper assembles, for every strongly connected component
//! of the CFG, "a system of linear equations … in which edge activation
//! probabilities form the coefficient matrix and instruction error
//! probabilities are the unknowns". Those systems are small and dense, so a
//! classical LU with partial pivoting (plus one step of iterative refinement)
//! is the right tool — and the offline registry carries no linear-algebra
//! crate, so we provide it here.

use crate::{Result, StatsError};

/// A dense row-major matrix of `f64`.
///
/// # Example
/// ```
/// use terse_stats::Matrix;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(StatsError::InvalidParameter {
                name: "dims",
                value: (rows.min(cols)) as f64,
                requirement: "rows > 0 and cols > 0",
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// The identity matrix of order `n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `n == 0`.
    pub fn identity(n: usize) -> Result<Self> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for no rows and
    /// [`StatsError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(StatsError::Empty { what: "rows" });
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(StatsError::Empty { what: "columns" });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(StatsError::DimensionMismatch {
                    context: "Matrix::from_rows",
                    left: ncols,
                    right: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::mul_vec",
                left: self.cols,
                right: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut s = crate::kahan::KahanSum::new();
            for (a, &b) in row.iter().zip(x) {
                s.add(a * b);
            }
            y[i] = s.value();
        }
        Ok(y)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for non-square matrices and
    /// [`StatsError::SingularMatrix`] if a pivot vanishes to working
    /// precision.
    pub fn lu(&self) -> Result<Lu> {
        failpoints::fail_point!("stats::lu", |_| Err(StatsError::SingularMatrix));
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::lu",
                left: self.rows,
                right: self.cols,
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0f64;
        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(StatsError::SingularMatrix);
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[k * n + k];
            for i in k + 1..n {
                let f = lu[i * n + k] / pivot;
                lu[i * n + k] = f;
                for j in k + 1..n {
                    lu[i * n + j] -= f * lu[k * n + j];
                }
            }
        }
        Ok(Lu {
            n,
            lu,
            piv,
            sign,
            original: self.clone(),
        })
    }

    /// Solves `A·x = b` (LU + one iterative-refinement step).
    ///
    /// # Errors
    ///
    /// Propagates [`Matrix::lu`] errors and dimension mismatches.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular factor `L` (entries above the
    /// diagonal are zero).
    ///
    /// Only the lower triangle of `self` is read, so a symmetric matrix may
    /// be supplied with an arbitrary (even non-finite-free) upper triangle.
    /// This is the feasibility test behind [`crate::guard`]'s nearest-PSD
    /// repair: a correlation matrix is usable iff its Cholesky succeeds.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for non-square input,
    /// [`StatsError::NonFinite`] if a non-finite value enters the
    /// factorization, and [`StatsError::NotPositiveDefinite`] if a pivot is
    /// not strictly positive.
    pub fn cholesky(&self) -> Result<Matrix> {
        failpoints::fail_point!("stats::cholesky", |_| Err(
            StatsError::NotPositiveDefinite { pivot: 0 }
        ));
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::cholesky",
                left: self.rows,
                right: self.cols,
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n)?;
        for i in 0..n {
            for j in 0..=i {
                let mut s = crate::kahan::KahanSum::new();
                s.add(self[(i, j)]);
                for k in 0..j {
                    s.add(-l[(i, k)] * l[(j, k)]);
                }
                let v = s.value();
                if !v.is_finite() {
                    return Err(StatsError::NonFinite {
                        context: "Matrix::cholesky",
                        value: v,
                    });
                }
                if i == j {
                    if v <= 0.0 {
                        return Err(StatsError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = v.sqrt();
                } else {
                    l[(i, j)] = v / l[(j, j)];
                }
            }
        }
        Ok(l)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// An LU factorization `P·A = L·U`, reusable across right-hand sides —
/// exactly the pattern of the per-SCC systems, which are solved once per
/// data-variation sample.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
    sign: f64,
    original: Matrix,
}

impl Lu {
    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for k in 0..self.n {
            d *= self.lu[k * self.n + k];
        }
        d
    }

    /// Solves `A·x = b` with one step of iterative refinement.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `b.len() != order`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(StatsError::DimensionMismatch {
                context: "Lu::solve",
                left: self.n,
                right: b.len(),
            });
        }
        let mut x = self.solve_raw(b);
        // One refinement step: r = b − A·x, x ← x + A⁻¹ r.
        let ax = self.original.mul_vec(&x)?;
        let r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        let dx = self.solve_raw(&r);
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        Ok(x)
    }

    fn solve_raw(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        // Apply permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s / self.lu[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4).unwrap();
        let b = [1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn known_2x2_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0], &[1.0, 4.0]]).unwrap();
        // Solution of 3x+2y=7, x+4y=9 is x=1, y=2.
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-13);
        assert!((x[1] - 2.0).abs() < 1e-13);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(
            a.solve(&[1.0, 2.0]).unwrap_err(),
            StatsError::SingularMatrix
        );
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((a.lu().unwrap().det() - 6.0).abs() < 1e-13);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((b.lu().unwrap().det() + 1.0).abs() < 1e-13);
    }

    #[test]
    fn residual_small_on_random_systems() {
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(42);
        for n in [1usize, 2, 5, 12, 30] {
            let mut a = Matrix::zeros(n, n).unwrap();
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.next_range(-1.0, 1.0);
                }
                a[(i, i)] += n as f64; // diagonally dominant → well conditioned
            }
            let b: Vec<f64> = (0..n).map(|_| rng.next_range(-10.0, 10.0)).collect();
            let x = a.solve(&b).unwrap();
            let ax = a.mul_vec(&x).unwrap();
            for (axi, bi) in ax.iter().zip(&b) {
                assert!((axi - bi).abs() < 1e-10, "n={n} residual too large");
            }
        }
    }

    #[test]
    fn lu_reuse_across_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]).unwrap();
        let lu = a.lu().unwrap();
        let x1 = lu.solve(&[5.0, 5.0]).unwrap();
        let x2 = lu.solve(&[9.0, 13.0]).unwrap();
        assert!((x1[0] - 1.0).abs() < 1e-13 && (x1[1] - 1.0).abs() < 1e-13);
        assert!((x2[0] - 1.4).abs() < 1e-13 && (x2[1] - 3.4).abs() < 1e-13);
    }

    #[test]
    fn dimension_errors() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(a.lu().is_err()); // non-square
        let sq = Matrix::identity(2).unwrap();
        assert!(sq.solve(&[1.0]).is_err());
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 2.0, 0.5], &[0.6, 0.5, 1.0]]).unwrap();
        let l = a.cholesky().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-12, "({i},{j})");
                if j > i {
                    assert_eq!(l[(i, j)], 0.0, "upper triangle must be zero");
                }
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite_and_nonfinite() {
        // ρ = 1.2 is outside the PSD cone for a 2×2 correlation matrix.
        let a = Matrix::from_rows(&[&[1.0, 1.2], &[1.2, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky().unwrap_err(),
            StatsError::NotPositiveDefinite { pivot: 1 }
        ));
        let b = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 1.0]]).unwrap();
        assert!(matches!(
            b.cholesky().unwrap_err(),
            StatsError::NonFinite { .. }
        ));
        let c = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(c.cholesky().is_err()); // non-square
    }

    #[test]
    fn mul_vec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }
}
