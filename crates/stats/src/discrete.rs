//! Discrete random variables with exact moments.
//!
//! The paper represents error-probability distributions "as discrete random
//! variables" whose third and fourth moments feed the Stein bound
//! (Section 5, after Theorem 5.2). [`DiscreteRv`] is that representation:
//! a finite support with probability weights, deduplicated and sorted.

use crate::kahan::KahanSum;
use crate::{Result, StatsError};

/// A finitely supported random variable `Pr(X = xᵢ) = wᵢ`.
///
/// # Example
/// ```
/// use terse_stats::DiscreteRv;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let d = DiscreteRv::new(vec![(0.0, 0.25), (1.0, 0.75)])?;
/// assert!((d.mean() - 0.75).abs() < 1e-15);
/// assert!((d.variance() - 0.1875).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteRv {
    /// Sorted, deduplicated support with positive normalized weights.
    points: Vec<(f64, f64)>,
}

impl DiscreteRv {
    /// Builds a discrete RV from `(value, weight)` pairs. Weights are
    /// normalized to sum to 1; duplicate values are merged; zero-weight
    /// points are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] if no point has positive weight, and
    /// [`StatsError::InvalidParameter`] on negative or non-finite weights or
    /// non-finite values.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        for (x, w) in points {
            if !x.is_finite() {
                return Err(StatsError::InvalidParameter {
                    name: "value",
                    value: x,
                    requirement: "finite",
                });
            }
            if !(w >= 0.0) || !w.is_finite() {
                return Err(StatsError::InvalidParameter {
                    name: "weight",
                    value: w,
                    requirement: "finite and >= 0",
                });
            }
            if w > 0.0 {
                pts.push((x, w));
            }
        }
        if pts.is_empty() {
            return Err(StatsError::Empty {
                what: "positively weighted support",
            });
        }
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Merge duplicates.
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for (x, w) in pts {
            match merged.last_mut() {
                Some((px, pw)) if *px == x => *pw += w,
                _ => merged.push((x, w)),
            }
        }
        let total: f64 = merged.iter().map(|&(_, w)| w).sum();
        for p in &mut merged {
            p.1 /= total;
        }
        Ok(DiscreteRv { points: merged })
    }

    /// A point mass at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn point_mass(x: f64) -> Self {
        assert!(x.is_finite(), "point mass requires a finite value");
        DiscreteRv {
            points: vec![(x, 1.0)],
        }
    }

    /// The empirical distribution of a sample set (each sample weight `1/n`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Empty`] for an empty sample set and
    /// [`StatsError::InvalidParameter`] for non-finite samples.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        DiscreteRv::new(samples.iter().map(|&x| (x, 1.0)).collect())
    }

    /// The `(value, probability)` support points, sorted by value.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of distinct support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the support is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Expectation of an arbitrary function, `E[f(X)]`.
    pub fn expect(&self, f: impl Fn(f64) -> f64) -> f64 {
        let mut s = KahanSum::new();
        for &(x, w) in &self.points {
            s.add(w * f(x));
        }
        s.value()
    }

    /// The mean `E[X]`.
    pub fn mean(&self) -> f64 {
        self.expect(|x| x)
    }

    /// The variance `E[(X − μ)²]`.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.expect(|x| (x - m) * (x - m)).max(0.0)
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Raw moment `E[X^k]`.
    pub fn raw_moment(&self, k: u32) -> f64 {
        self.expect(|x| x.powi(k as i32))
    }

    /// Central moment `E[(X − μ)^k]`.
    pub fn central_moment(&self, k: u32) -> f64 {
        let m = self.mean();
        self.expect(|x| (x - m).powi(k as i32))
    }

    /// Absolute central moment `E[|X − μ|^k]`.
    pub fn abs_central_moment(&self, k: u32) -> f64 {
        let m = self.mean();
        self.expect(|x| (x - m).abs().powi(k as i32))
    }

    /// CDF `Pr(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let mut s = KahanSum::new();
        for &(v, w) in &self.points {
            if v <= x {
                s.add(w);
            } else {
                break;
            }
        }
        s.value().min(1.0)
    }

    /// Smallest support value `q` with `Pr(X ≤ q) ≥ p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    // Invariant: construction guarantees a non-empty support.
    #[allow(clippy::expect_used)]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile level must be in [0,1]");
        let mut cum = 0.0;
        for &(v, w) in &self.points {
            cum += w;
            if cum >= p - 1e-15 {
                return v;
            }
        }
        self.points.last().expect("support is non-empty").0
    }

    /// Applies a deterministic transformation `Y = f(X)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces non-finite values.
    // Invariant: mapping a valid support by a finite function yields a
    // valid support (same weights, finite values).
    #[allow(clippy::expect_used)]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DiscreteRv {
        DiscreteRv::new(self.points.iter().map(|&(x, w)| (f(x), w)).collect())
            .expect("mapping a valid support stays valid for finite f")
    }

    /// The distribution of `X + Y` for **independent** `X`, `Y` (full
    /// support convolution, O(|X|·|Y|)).
    // Invariant: the product of two valid supports is non-empty with
    // finite values and positive weights.
    #[allow(clippy::expect_used)]
    pub fn convolve(&self, other: &DiscreteRv) -> DiscreteRv {
        let mut pts = Vec::with_capacity(self.len() * other.len());
        for &(x, wx) in &self.points {
            for &(y, wy) in &other.points {
                pts.push((x + y, wx * wy));
            }
        }
        DiscreteRv::new(pts).expect("product of valid supports is valid")
    }

    /// Reduces the support to at most `max_points` by merging adjacent
    /// points, preserving total mass and (approximately) the mean.
    // Invariant: compression merges adjacent points of a valid support,
    // preserving total mass, so the result is a valid support.
    #[allow(clippy::expect_used)]
    pub fn compress(&self, max_points: usize) -> DiscreteRv {
        if self.len() <= max_points || max_points == 0 {
            return self.clone();
        }
        // Greedy: bucket the support into `max_points` equal-mass groups and
        // replace each group by its conditional mean.
        let target = 1.0 / max_points as f64;
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(max_points);
        let mut acc_w = 0.0;
        let mut acc_xw = 0.0;
        for &(x, w) in &self.points {
            acc_w += w;
            acc_xw += x * w;
            if acc_w >= target {
                out.push((acc_xw / acc_w, acc_w));
                acc_w = 0.0;
                acc_xw = 0.0;
            }
        }
        if acc_w > 0.0 {
            out.push((acc_xw / acc_w, acc_w));
        }
        DiscreteRv::new(out).expect("compression preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_and_merges() {
        let d = DiscreteRv::new(vec![(1.0, 2.0), (1.0, 2.0), (2.0, 4.0)]).unwrap();
        assert_eq!(d.len(), 2);
        assert!((d.points()[0].1 - 0.5).abs() < 1e-15);
        assert!((d.points()[1].1 - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rejects_invalid() {
        assert!(DiscreteRv::new(vec![]).is_err());
        assert!(DiscreteRv::new(vec![(1.0, -0.5)]).is_err());
        assert!(DiscreteRv::new(vec![(f64::NAN, 1.0)]).is_err());
        assert!(DiscreteRv::new(vec![(1.0, 0.0)]).is_err()); // all-zero mass
    }

    #[test]
    fn bernoulli_moments() {
        let p = 0.3;
        let d = DiscreteRv::new(vec![(0.0, 1.0 - p), (1.0, p)]).unwrap();
        assert!((d.mean() - p).abs() < 1e-15);
        assert!((d.variance() - p * (1.0 - p)).abs() < 1e-15);
        // E[(X-p)^3] = p(1-p)(1-2p)
        assert!((d.central_moment(3) - p * (1.0 - p) * (1.0 - 2.0 * p)).abs() < 1e-15);
    }

    #[test]
    fn cdf_and_quantile_are_consistent() {
        let d = DiscreteRv::new(vec![(1.0, 0.2), (2.0, 0.3), (3.0, 0.5)]).unwrap();
        assert!((d.cdf(1.0) - 0.2).abs() < 1e-15);
        assert!((d.cdf(2.5) - 0.5).abs() < 1e-15);
        assert_eq!(d.quantile(0.1), 1.0);
        assert_eq!(d.quantile(0.2), 1.0);
        assert_eq!(d.quantile(0.21), 2.0);
        assert_eq!(d.quantile(1.0), 3.0);
    }

    #[test]
    fn convolution_of_bernoullis_is_binomial() {
        let b = DiscreteRv::new(vec![(0.0, 0.5), (1.0, 0.5)]).unwrap();
        let s = b.convolve(&b).convolve(&b);
        // Binomial(3, 1/2): 1/8, 3/8, 3/8, 1/8.
        let want = [0.125, 0.375, 0.375, 0.125];
        for (i, &(x, w)) in s.points().iter().enumerate() {
            assert_eq!(x, i as f64);
            assert!((w - want[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn map_transforms_support() {
        let d = DiscreteRv::new(vec![(1.0, 0.5), (2.0, 0.5)]).unwrap();
        let sq = d.map(|x| x * x);
        assert_eq!(sq.points()[0].0, 1.0);
        assert_eq!(sq.points()[1].0, 4.0);
        // Map that collapses support merges mass.
        let c = d.map(|_| 7.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.points()[0], (7.0, 1.0));
    }

    #[test]
    fn compress_preserves_mass_and_mean() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.0)).collect();
        let d = DiscreteRv::new(pts).unwrap();
        let c = d.compress(10);
        assert!(c.len() <= 11);
        let mass: f64 = c.points().iter().map(|&(_, w)| w).sum();
        assert!((mass - 1.0).abs() < 1e-12);
        assert!((c.mean() - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn from_samples_empirical() {
        let d = DiscreteRv::from_samples(&[1.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(d.len(), 3);
        assert!((d.cdf(1.0) - 0.5).abs() < 1e-15);
        assert!((d.mean() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn point_mass_properties() {
        let d = DiscreteRv::point_mass(3.5);
        assert_eq!(d.mean(), 3.5);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.quantile(0.5), 3.5);
    }

    #[test]
    fn expect_arbitrary_function() {
        let d = DiscreteRv::new(vec![(0.0, 0.5), (2.0, 0.5)]).unwrap();
        assert!((d.expect(|x| x.exp()) - (1.0 + 2.0f64.exp()) / 2.0).abs() < 1e-14);
    }
}
