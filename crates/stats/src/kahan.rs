//! Compensated (Kahan–Babuška–Neumaier) summation.
//!
//! The estimator sums error probabilities over billions of weighted dynamic
//! instructions (Eq. 10); naive accumulation loses the small addends long
//! before the sum is finished. Every long accumulation in the workspace goes
//! through [`KahanSum`].

/// A running compensated sum (Neumaier variant, which also handles addends
/// larger than the running sum).
///
/// # Example
/// ```
/// use terse_stats::kahan::KahanSum;
/// let mut s = KahanSum::new();
/// for _ in 0..10_000_000 {
///     s.add(0.1);
/// }
/// assert!((s.value() - 1_000_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated value of the sum.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = KahanSum::new();
        s.extend(iter);
        s
    }
}

/// Compensated sum of a slice.
///
/// # Example
/// ```
/// let xs = [1e16, 1.0, -1e16];
/// assert_eq!(terse_stats::kahan::sum(&xs), 1.0);
/// ```
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<KahanSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancellation() {
        // Naive summation returns 0 here; Neumaier recovers the 1.0.
        let naive: f64 = [1e16, 1.0, -1e16].iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(sum(&[1e16, 1.0, -1e16]), 1.0);
    }

    #[test]
    fn many_small_terms() {
        let mut s = KahanSum::new();
        let n = 1_000_000;
        for _ in 0..n {
            s.add(1e-10);
        }
        let want = n as f64 * 1e-10;
        assert!(((s.value() - want) / want).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_matches_manual() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let a: KahanSum = xs.iter().copied().collect();
        let mut b = KahanSum::new();
        for &x in &xs {
            b.add(x);
        }
        assert_eq!(a.value(), b.value());
    }
}
