//! Gaussian quadrature rules.
//!
//! Eq. 14 integrates a Poisson CDF against the (normal) density of λ.
//! Gauss–Hermite handles the unshifted mixture; Gauss–Legendre handles the
//! probability-shifted bound integrals over a finite quantile interval.

use crate::{Result, StatsError};

/// A quadrature rule: nodes and weights.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadratureRule {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl QuadratureRule {
    /// The node locations.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// The node weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the rule has no nodes (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluates `Σ wᵢ f(xᵢ)`.
    pub fn integrate(&self, f: impl Fn(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

/// Gauss–Hermite rule with physicists' weight `e^{−x²}`:
/// `∫ f(x) e^{−x²} dx ≈ Σ wᵢ f(xᵢ)`.
///
/// Newton iteration on the Hermite recurrence (the classical `gauher`
/// construction); exact for polynomials up to degree `2n − 1`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `n == 0` or `n > 256`, and
/// [`StatsError::NoConvergence`] if a root fails to converge (unreachable for
/// supported `n`).
///
/// # Example
/// ```
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let rule = terse_stats::quadrature::gauss_hermite(32)?;
/// // ∫ e^{-x²} dx = √π
/// let total = rule.integrate(|_| 1.0);
/// assert!((total - std::f64::consts::PI.sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn gauss_hermite(n: usize) -> Result<QuadratureRule> {
    if n == 0 || n > 256 {
        return Err(StatsError::InvalidParameter {
            name: "n",
            value: n as f64,
            requirement: "1 <= n <= 256",
        });
    }
    const PIM4: f64 = 0.751_125_544_464_943; // π^{-1/4}
    const MAXIT: usize = 64;
    let mut nodes = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    let m = n.div_ceil(2);
    let nf = n as f64;
    let mut z = 0.0f64;
    for i in 0..m {
        // Initial guesses (NR).
        z = match i {
            0 => (2.0 * nf + 1.0).sqrt() - 1.85575 * (2.0 * nf + 1.0).powf(-0.16667),
            1 => z - 1.14 * nf.powf(0.426) / z,
            2 => 1.86 * z - 0.86 * nodes[0],
            3 => 1.91 * z - 0.91 * nodes[1],
            _ => 2.0 * z - nodes[i - 2],
        };
        let mut pp = 0.0;
        let mut converged = false;
        for _ in 0..MAXIT {
            let mut p1 = PIM4;
            let mut p2 = 0.0f64;
            for j in 0..n {
                let p3 = p2;
                p2 = p1;
                p1 = z * (2.0 / (j as f64 + 1.0)).sqrt() * p2
                    - (j as f64 / (j as f64 + 1.0)).sqrt() * p3;
            }
            pp = (2.0 * nf).sqrt() * p2;
            let z1 = z;
            z = z1 - p1 / pp;
            if (z - z1).abs() <= 1e-14 {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(StatsError::NoConvergence {
                routine: "gauss_hermite",
            });
        }
        nodes[i] = z;
        nodes[n - 1 - i] = -z;
        weights[i] = 2.0 / (pp * pp);
        weights[n - 1 - i] = weights[i];
    }
    // Sort ascending for caller convenience.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| nodes[a].total_cmp(&nodes[b]));
    let nodes_sorted: Vec<f64> = idx.iter().map(|&i| nodes[i]).collect();
    let weights_sorted: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
    Ok(QuadratureRule {
        nodes: nodes_sorted,
        weights: weights_sorted,
    })
}

/// Expectation of `f` under `N(mean, sd²)` using an `n`-point Gauss–Hermite
/// rule: `E[f(X)] = (1/√π) Σ wᵢ f(μ + √2 σ xᵢ)`.
///
/// # Errors
///
/// Same as [`gauss_hermite`].
pub fn normal_expectation(mean: f64, sd: f64, n: usize, f: impl Fn(f64) -> f64) -> Result<f64> {
    let rule = gauss_hermite(n)?;
    let sqrt2 = std::f64::consts::SQRT_2;
    let inv_sqrt_pi = 1.0 / std::f64::consts::PI.sqrt();
    Ok(inv_sqrt_pi * rule.integrate(|x| f(mean + sqrt2 * sd * x)))
}

/// Gauss–Legendre rule on `[a, b]`:
/// `∫ₐᵇ f(x) dx ≈ Σ wᵢ f(xᵢ)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `n == 0`, `n > 512`, or
/// `a ≥ b`, and [`StatsError::NoConvergence`] if a root iteration fails
/// (unreachable for supported `n`).
///
/// # Example
/// ```
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let rule = terse_stats::quadrature::gauss_legendre(16, 0.0, 1.0)?;
/// let integral = rule.integrate(|x| x * x);
/// assert!((integral - 1.0 / 3.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn gauss_legendre(n: usize, a: f64, b: f64) -> Result<QuadratureRule> {
    if n == 0 || n > 512 {
        return Err(StatsError::InvalidParameter {
            name: "n",
            value: n as f64,
            requirement: "1 <= n <= 512",
        });
    }
    if !(a < b) {
        return Err(StatsError::InvalidParameter {
            name: "a",
            value: a,
            requirement: "a < b",
        });
    }
    let m = n.div_ceil(2);
    let xm = 0.5 * (b + a);
    let xl = 0.5 * (b - a);
    let mut nodes = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    for i in 0..m {
        let mut z = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut pp;
        let mut it = 0;
        loop {
            let mut p1 = 1.0f64;
            let mut p2 = 0.0f64;
            for j in 0..n {
                let p3 = p2;
                p2 = p1;
                p1 = ((2.0 * j as f64 + 1.0) * z * p2 - j as f64 * p3) / (j as f64 + 1.0);
            }
            pp = n as f64 * (z * p1 - p2) / (z * z - 1.0);
            let z1 = z;
            z = z1 - p1 / pp;
            if (z - z1).abs() < 1e-15 {
                break;
            }
            it += 1;
            if it > 100 {
                return Err(StatsError::NoConvergence {
                    routine: "gauss_legendre",
                });
            }
        }
        nodes[i] = xm - xl * z;
        nodes[n - 1 - i] = xm + xl * z;
        weights[i] = 2.0 * xl / ((1.0 - z * z) * pp * pp);
        weights[n - 1 - i] = weights[i];
    }
    Ok(QuadratureRule { nodes, weights })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermite_polynomial_exactness() {
        // ∫ x² e^{-x²} dx = √π / 2
        let rule = gauss_hermite(8).unwrap();
        let got = rule.integrate(|x| x * x);
        let want = std::f64::consts::PI.sqrt() / 2.0;
        assert!((got - want).abs() < 1e-13);
        // Odd moments vanish by symmetry.
        assert!(rule.integrate(|x| x * x * x).abs() < 1e-12);
    }

    #[test]
    fn normal_expectation_of_identity_and_square() {
        let mu = 3.0;
        let sd = 1.7;
        let m1 = normal_expectation(mu, sd, 32, |x| x).unwrap();
        let m2 = normal_expectation(mu, sd, 32, |x| x * x).unwrap();
        assert!((m1 - mu).abs() < 1e-12);
        assert!((m2 - (mu * mu + sd * sd)).abs() < 1e-11);
    }

    #[test]
    fn normal_expectation_of_indicator_matches_cdf() {
        // E[1{X ≤ t}] = Φ((t-μ)/σ); smooth-ish check with many nodes.
        let mu = 0.0;
        let sd = 1.0;
        let t = 0.5;
        let got = normal_expectation(mu, sd, 128, |x| if x <= t { 1.0 } else { 0.0 }).unwrap();
        let want = crate::special::std_normal_cdf(t);
        assert!((got - want).abs() < 0.02, "got {got} want {want}");
    }

    #[test]
    fn legendre_exactness_and_interval_mapping() {
        let rule = gauss_legendre(10, -2.0, 3.0).unwrap();
        // ∫_{-2}^{3} x³ dx = (81 - 16)/4
        let got = rule.integrate(|x| x * x * x);
        assert!((got - 65.0 / 4.0).abs() < 1e-11);
        // Weights sum to the interval length.
        let total: f64 = rule.weights().iter().sum();
        assert!((total - 5.0).abs() < 1e-12);
    }

    #[test]
    fn legendre_sin_integral() {
        let rule = gauss_legendre(24, 0.0, std::f64::consts::PI).unwrap();
        assert!((rule.integrate(f64::sin) - 2.0).abs() < 1e-13);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(gauss_hermite(0).is_err());
        assert!(gauss_hermite(257).is_err());
        assert!(gauss_legendre(0, 0.0, 1.0).is_err());
        assert!(gauss_legendre(4, 1.0, 1.0).is_err());
        assert!(gauss_legendre(4, 2.0, 1.0).is_err());
    }

    #[test]
    fn hermite_nodes_sorted_and_symmetric() {
        let rule = gauss_hermite(9).unwrap();
        for w in rule.nodes().windows(2) {
            assert!(w[0] < w[1]);
        }
        let n = rule.len();
        for i in 0..n / 2 {
            assert!((rule.nodes()[i] + rule.nodes()[n - 1 - i]).abs() < 1e-12);
        }
    }
}
