//! The Normal (Gaussian) distribution.
//!
//! Used for the central-limit-theorem approximation of the Poisson parameter
//! λ (the paper's `λ̄`, Section 5) and throughout the SSTA machinery where
//! dynamic timing slack is Gaussian under the canonical first-order model.

use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};
use crate::{Result, StatsError};

/// A normal distribution `N(μ, σ²)`.
///
/// # Example
/// ```
/// use terse_stats::Normal;
/// # fn main() -> Result<(), terse_stats::StatsError> {
/// let n = Normal::new(10.0, 2.0)?;
/// assert!((n.cdf(10.0) - 0.5).abs() < 1e-15);
/// assert!((n.quantile(n.cdf(12.3))? - 12.3).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates `N(mean, sd²)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sd < 0` or either
    /// argument is non-finite. A zero standard deviation is allowed and
    /// represents a point mass (its CDF is a step function).
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                requirement: "finite",
            });
        }
        if !(sd >= 0.0) || !sd.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "sd",
                value: sd,
                requirement: "finite and >= 0",
            });
        }
        Ok(Normal { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// The mean μ.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation σ.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// The variance σ².
    pub fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    /// Probability density at `x`. Zero-σ point masses return `f64::INFINITY`
    /// at the mean and `0` elsewhere.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        std_normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    /// Cumulative distribution function `Pr(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        std_normal_cdf((x - self.mean) / self.sd)
    }

    /// Survival function `Pr(X > x)`, computed without cancellation in the
    /// upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            return if x >= self.mean { 0.0 } else { 1.0 };
        }
        std_normal_cdf((self.mean - x) / self.sd)
    }

    /// Quantile (inverse CDF).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        Ok(self.mean + self.sd * std_normal_quantile(p)?)
    }

    /// Probability that this variable is negative, `Pr(X < 0)`.
    ///
    /// This is the *instruction error probability* primitive of the paper's
    /// Section 4.1: an instruction whose DTS ~ `N(μ, σ²)` fails with
    /// probability `Φ(−μ/σ)`.
    pub fn prob_negative(&self) -> f64 {
        self.cdf(0.0)
    }

    /// Draws one sample using the given uniform variate `u ∈ (0, 1)`.
    ///
    /// Inverse-CDF sampling keeps the crate decoupled from any RNG trait;
    /// callers supply uniforms from [`crate::rng::Xoshiro256`].
    pub fn sample_with(&self, u: f64) -> f64 {
        if self.sd == 0.0 {
            return self.mean;
        }
        self.mean + self.sd * crate::special::std_normal_quantile_clamped(u)
    }
}

impl Default for Normal {
    fn default() -> Self {
        Normal::standard()
    }
}

impl std::fmt::Display for Normal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N({}, {}²)", self.mean, self.sd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_sd() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn point_mass_semantics() {
        let n = Normal::new(3.0, 0.0).unwrap();
        assert_eq!(n.cdf(2.999), 0.0);
        assert_eq!(n.cdf(3.0), 1.0);
        assert_eq!(n.sf(3.0), 0.0);
        assert_eq!(n.sample_with(0.77), 3.0);
    }

    #[test]
    fn cdf_sf_complementarity() {
        let n = Normal::new(1.0, 2.5).unwrap();
        for i in -10..=10 {
            let x = i as f64;
            assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn prob_negative_matches_phi() {
        let n = Normal::new(1.0, 1.0).unwrap();
        // Pr(N(1,1) < 0) = Φ(-1)
        assert!((n.prob_negative() - 0.15865525393145707).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(-4.0, 0.37).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn display_nonempty() {
        assert!(!Normal::standard().to_string().is_empty());
    }

    #[test]
    fn standard_and_default_agree() {
        assert_eq!(Normal::standard(), Normal::default());
    }
}
