//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use terse_stats::metrics::{kolmogorov_distance_discrete, tv_distance_discrete};
use terse_stats::special::{reg_gamma_p, reg_gamma_q, std_normal_cdf};
use terse_stats::{DiscreteRv, Matrix, Normal, Poisson, PoissonBinomial, SampleRv};

fn prob_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 1..max_len)
}

proptest! {
    #[test]
    fn normal_cdf_monotone(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-15);
    }

    #[test]
    fn normal_quantile_roundtrip(p in 1e-9f64..=0.999_999_999) {
        let n = Normal::new(3.0, 2.0).unwrap();
        let x = n.quantile(p).unwrap();
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn incomplete_gamma_complement(a in 0.1f64..500.0, x in 0.0f64..1000.0) {
        let p = reg_gamma_p(a, x).unwrap();
        let q = reg_gamma_q(a, x).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_monotone_in_x(a in 0.1f64..100.0, x in 0.0f64..200.0, dx in 0.0f64..10.0) {
        let p1 = reg_gamma_p(a, x).unwrap();
        let p2 = reg_gamma_p(a, x + dx).unwrap();
        prop_assert!(p2 >= p1 - 1e-12);
    }

    #[test]
    fn poisson_cdf_monotone(lambda in 0.0f64..1e4, k in 0u64..20_000) {
        let p = Poisson::new(lambda).unwrap();
        prop_assert!(p.cdf(k as f64) <= p.cdf(k as f64 + 1.0) + 1e-12);
    }

    #[test]
    fn pbd_mean_equals_sum(ps in prob_vec(40)) {
        let d = PoissonBinomial::new(ps.clone()).unwrap();
        let want: f64 = ps.iter().sum();
        prop_assert!((d.mean() - want).abs() < 1e-9);
        // pmf sums to one.
        let total: f64 = d.pmf_vec().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pbd_le_cam_bound(ps in prop::collection::vec(0.0f64..=0.2, 1..60)) {
        // Le Cam's theorem: d_TV(PBD, Poisson(Σp)) ≤ Σ p².
        let d = PoissonBinomial::new(ps.clone()).unwrap();
        let lecam: f64 = ps.iter().map(|p| p * p).sum();
        prop_assert!(d.tv_distance_to_poisson() <= lecam + 1e-9);
    }

    #[test]
    fn discrete_rv_moments_consistent(xs in prop::collection::vec(-10.0f64..10.0, 1..30)) {
        let d = DiscreteRv::from_samples(&xs).unwrap();
        // Var = E[X²] − E[X]².
        let var_via_raw = d.raw_moment(2) - d.mean() * d.mean();
        prop_assert!((d.variance() - var_via_raw).abs() < 1e-9);
        // |E[(X−μ)³]| ≤ E[|X−μ|³].
        prop_assert!(d.central_moment(3).abs() <= d.abs_central_moment(3) + 1e-12);
    }

    #[test]
    fn discrete_cdf_monotone(xs in prop::collection::vec(-5.0f64..5.0, 1..20), probe in -6.0f64..6.0) {
        let d = DiscreteRv::from_samples(&xs).unwrap();
        prop_assert!(d.cdf(probe) <= d.cdf(probe + 0.5) + 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d.cdf(probe)));
    }

    #[test]
    fn metric_properties(
        xs in prop::collection::vec(0.0f64..4.0, 1..10),
        ys in prop::collection::vec(0.0f64..4.0, 1..10),
    ) {
        let a = DiscreteRv::from_samples(&xs).unwrap();
        let b = DiscreteRv::from_samples(&ys).unwrap();
        let dk = kolmogorov_distance_discrete(&a, &b);
        let tv = tv_distance_discrete(&a, &b);
        // Symmetry, identity, domination d_K ≤ d_TV, range.
        prop_assert!((dk - kolmogorov_distance_discrete(&b, &a)).abs() < 1e-12);
        prop_assert!(kolmogorov_distance_discrete(&a, &a) == 0.0);
        prop_assert!(dk <= tv + 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tv));
    }

    #[test]
    fn sample_rv_linearity(
        xs in prop::collection::vec(-100.0f64..100.0, 2..40),
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
    ) {
        let x = SampleRv::new(xs).unwrap();
        let y = &(&x * a) + b;
        prop_assert!((y.mean() - (a * x.mean() + b)).abs() < 1e-7);
        prop_assert!((y.variance() - a * a * x.variance()).abs() < 1e-6 * (1.0 + x.variance()));
    }

    #[test]
    fn lu_solves_diagonally_dominant(seed in 0u64..5000, n in 1usize..12) {
        let mut rng = terse_stats::rng::Xoshiro256::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = rng.next_range(-1.0, 1.0);
            }
            m[(i, i)] += 2.0 * n as f64;
        }
        let b: Vec<f64> = (0..n).map(|_| rng.next_range(-5.0, 5.0)).collect();
        let x = m.solve(&b).unwrap();
        let ax = m.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn mixture_cdf_in_unit_interval(mu in 0.5f64..500.0, sd_frac in 0.0f64..0.5, k in 0.0f64..1000.0) {
        let mix = terse_stats::PoissonNormalMixture::new(
            Normal::new(mu, mu * sd_frac).unwrap(),
        ).unwrap();
        let c = mix.cdf(k).unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
    }
}
