//! Property-based tests for the netlist substrate: generated circuits
//! compute the arithmetic they claim, and activation is exactly "output
//! toggled".

use proptest::prelude::*;
use terse_netlist::builder::NetlistBuilder;
use terse_netlist::circuits::{
    array_multiplier_low, barrel_shifter, equality, logic_unit, ripple_carry_adder, subtractor,
};
use terse_netlist::netlist::EndpointClass;
use terse_netlist::{GateId, Netlist, Simulator};

/// Builds a 1-stage netlist around a combinational block and evaluates it.
fn eval_block(
    widths: &[(&str, usize)],
    inputs: &[(&str, u64)],
    out_name: &str,
    build: impl FnOnce(&mut NetlistBuilder, &[Vec<GateId>]) -> Vec<GateId>,
) -> u64 {
    let mut b = NetlistBuilder::new(1);
    let ins: Vec<Vec<GateId>> = widths
        .iter()
        .map(|(name, w)| b.input_bus(name, *w, 0).unwrap())
        .collect();
    let out = build(&mut b, &ins);
    let ffs = b
        .flip_flop_bus(out_name, out.len(), EndpointClass::Data, 0)
        .unwrap();
    for (ff, src) in ffs.iter().zip(&out) {
        b.connect_ff_input(*ff, *src).unwrap();
    }
    let n: Netlist = b.finish().unwrap();
    let mut sim = Simulator::new(&n);
    for (name, v) in inputs {
        sim.set_input_bus(name, *v).unwrap();
    }
    sim.step();
    sim.step();
    sim.bus_value(out_name).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adder_is_addition(a in any::<u32>(), b in any::<u32>()) {
        let got = eval_block(&[("a", 32), ("b", 32)], &[("a", a as u64), ("b", b as u64)], "sum", |bld, ins| {
            let zero = bld.tie(false, 0).unwrap();
            ripple_carry_adder(bld, 0, &ins[0], &ins[1], zero).unwrap().0
        });
        prop_assert_eq!(got as u32, a.wrapping_add(b));
    }

    #[test]
    fn subtractor_is_subtraction(a in any::<u32>(), b in any::<u32>()) {
        let got = eval_block(&[("a", 32), ("b", 32)], &[("a", a as u64), ("b", b as u64)], "diff", |bld, ins| {
            subtractor(bld, 0, &ins[0], &ins[1]).unwrap().0
        });
        prop_assert_eq!(got as u32, a.wrapping_sub(b));
    }

    #[test]
    fn multiplier_is_low_product(a in any::<u16>(), b in any::<u16>()) {
        let got = eval_block(&[("a", 16), ("b", 16)], &[("a", a as u64), ("b", b as u64)], "p", |bld, ins| {
            array_multiplier_low(bld, 0, &ins[0], &ins[1]).unwrap()
        });
        prop_assert_eq!(got as u16, a.wrapping_mul(b));
    }

    #[test]
    fn shifter_matches_rust_shifts(v in any::<u32>(), amt in 0u64..32, right in any::<bool>(), arith in any::<bool>()) {
        let got = eval_block(
            &[("v", 32), ("amt", 5), ("r", 1), ("ar", 1)],
            &[("v", v as u64), ("amt", amt), ("r", right as u64), ("ar", arith as u64)],
            "out",
            |bld, ins| {
                barrel_shifter(bld, 0, &ins[0], &ins[1], ins[2][0], ins[3][0]).unwrap()
            },
        ) as u32;
        let want = match (right, arith) {
            (false, _) => v << amt,
            (true, false) => v >> amt,
            (true, true) => ((v as i32) >> amt) as u32,
        };
        prop_assert_eq!(got, want);
    }

    #[test]
    fn logic_unit_matches(a in any::<u32>(), b in any::<u32>(), op in 0u64..4) {
        let got = eval_block(
            &[("a", 32), ("b", 32), ("op", 2)],
            &[("a", a as u64), ("b", b as u64), ("op", op)],
            "out",
            |bld, ins| logic_unit(bld, 0, &ins[0], &ins[1], ins[2][0], ins[2][1]).unwrap(),
        ) as u32;
        let want = match op {
            0 => a & b,
            1 => a | b,
            2 => a ^ b,
            _ => b,
        };
        prop_assert_eq!(got, want);
    }

    #[test]
    fn equality_matches(a in any::<u16>(), b in any::<u16>(), force_equal in any::<bool>()) {
        let b = if force_equal { a } else { b };
        let got = eval_block(
            &[("a", 16), ("b", 16)],
            &[("a", a as u64), ("b", b as u64)],
            "eq",
            |bld, ins| vec![equality(bld, 0, &ins[0], &ins[1]).unwrap()],
        );
        prop_assert_eq!(got == 1, a == b);
    }

    #[test]
    fn activation_is_exactly_toggling(a1 in any::<u16>(), a2 in any::<u16>()) {
        // Drive an adder with two consecutive values; the activated set at
        // the second step must be precisely the gates whose outputs changed.
        let mut b = NetlistBuilder::new(1);
        let xs = b.input_bus("x", 16, 0).unwrap();
        let zero = b.tie(false, 0).unwrap();
        let ys = b.input_bus("y", 16, 0).unwrap();
        let (sum, _) = ripple_carry_adder(&mut b, 0, &xs, &ys, zero).unwrap();
        let ffs = b.flip_flop_bus("s", 16, EndpointClass::Data, 0).unwrap();
        for (ff, src) in ffs.iter().zip(&sum) {
            b.connect_ff_input(*ff, *src).unwrap();
        }
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n);
        sim.set_input_bus("x", a1 as u64).unwrap();
        sim.set_input_bus("y", 1).unwrap();
        sim.step();
        // Snapshot values, apply the second vector.
        let before: Vec<bool> = n.gate_ids().map(|g| sim.value(g)).collect();
        sim.set_input_bus("x", a2 as u64).unwrap();
        let act = sim.step();
        for g in n.gate_ids() {
            let toggled = sim.value(g) != before[g.index()];
            prop_assert_eq!(
                act.contains(g.index()),
                toggled,
                "gate {} activation mismatch", g
            );
        }
    }
}
