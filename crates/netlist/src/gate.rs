//! Gate kinds and boolean evaluation.

/// Identifier of a gate within a [`crate::Netlist`].
///
/// Gate ids are dense indices assigned in creation order; they index the
/// per-gate vectors of the netlist and the per-cycle activation bit sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The dense index of this gate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `GateId` from a dense index.
    ///
    /// Prefer obtaining ids from the netlist; this exists for serialization
    /// and test helpers.
    pub fn from_index(index: usize) -> Self {
        // terse-analyze: allow(AZ005): ids are dense creation-order indices < 2^32.
        GateId(index as u32)
    }
}

impl std::fmt::Display for GateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The boolean function of a gate.
///
/// The cell library is deliberately small (the 45 nm standard-cell subset a
/// synthesis tool would map arithmetic onto): inverter/buffer, the 2-input
/// basic gates, a 2:1 mux, constants, primary inputs and flip-flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// A primary input port, driven by the testbench/co-simulator.
    Input,
    /// A constant driver.
    Tie(bool),
    /// Buffer (identity). Also used for fanout trees.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 multiplexer: inputs are `[sel, a, b]`, output `sel ? b : a`.
    Mux,
    /// A D flip-flop *endpoint*. Its single input is the D pin; its output
    /// is the captured Q value, updated at the clock edge.
    FlipFlop,
}

impl GateKind {
    /// Number of inputs this kind requires (`None` for [`GateKind::FlipFlop`]
    /// whose D input is connected after creation).
    pub fn fanin_count(self) -> Option<usize> {
        match self {
            GateKind::Input | GateKind::Tie(_) => Some(0),
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => Some(2),
            GateKind::Mux => Some(3),
            GateKind::FlipFlop => None,
        }
    }

    /// Whether this kind is a sequential element or port (i.e. a path
    /// *endpoint* in the paper's Definition 3.1 sense).
    pub fn is_endpoint(self) -> bool {
        matches!(
            self,
            GateKind::Input | GateKind::FlipFlop | GateKind::Tie(_)
        )
    }

    /// Evaluates the boolean function on the input values.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `inputs` has the wrong arity. Flip-flops
    /// and inputs are not evaluated combinationally and return `false`;
    /// the simulator handles them separately.
    #[inline]
    pub fn eval(self, inputs: &[bool]) -> bool {
        debug_assert!(
            self.fanin_count().is_none_or(|n| n == inputs.len()),
            "gate {self:?} arity mismatch: {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Input | GateKind::FlipFlop => false,
            GateKind::Tie(v) => v,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs[0] & inputs[1],
            GateKind::Or => inputs[0] | inputs[1],
            GateKind::Nand => !(inputs[0] & inputs[1]),
            GateKind::Nor => !(inputs[0] | inputs[1]),
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// A short cell-library style name (`INV`, `ND2`, …).
    pub fn cell_name(self) -> &'static str {
        match self {
            GateKind::Input => "PORT",
            GateKind::Tie(false) => "TIE0",
            GateKind::Tie(true) => "TIE1",
            GateKind::Buf => "BUF",
            GateKind::Not => "INV",
            GateKind::And => "AN2",
            GateKind::Or => "OR2",
            GateKind::Nand => "ND2",
            GateKind::Nor => "NR2",
            GateKind::Xor => "XO2",
            GateKind::Xnor => "XN2",
            GateKind::Mux => "MX2",
            GateKind::FlipFlop => "DFF",
        }
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.cell_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        let cases2: [(GateKind, [bool; 4]); 6] = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, table) in cases2 {
            for (i, want) in table.into_iter().enumerate() {
                let a = i & 2 != 0;
                let b = i & 1 != 0;
                assert_eq!(kind.eval(&[a, b]), want, "{kind} ({a},{b})");
            }
        }
        assert!(GateKind::Not.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Tie(true).eval(&[]));
        assert!(!GateKind::Tie(false).eval(&[]));
    }

    #[test]
    fn mux_selects() {
        // [sel, a, b] -> sel ? b : a
        assert!(!GateKind::Mux.eval(&[false, false, true]));
        assert!(GateKind::Mux.eval(&[true, false, true]));
        assert!(GateKind::Mux.eval(&[false, true, false]));
    }

    #[test]
    fn endpoint_classification() {
        assert!(GateKind::FlipFlop.is_endpoint());
        assert!(GateKind::Input.is_endpoint());
        assert!(!GateKind::And.is_endpoint());
    }

    #[test]
    fn arity_matches_kind() {
        assert_eq!(GateKind::Mux.fanin_count(), Some(3));
        assert_eq!(GateKind::And.fanin_count(), Some(2));
        assert_eq!(GateKind::Not.fanin_count(), Some(1));
        assert_eq!(GateKind::Input.fanin_count(), Some(0));
        assert_eq!(GateKind::FlipFlop.fanin_count(), None);
    }

    #[test]
    fn id_roundtrip_and_display() {
        let id = GateId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "g42");
        assert_eq!(GateKind::Nand.to_string(), "ND2");
    }
}
