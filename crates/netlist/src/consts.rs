//! Three-valued (0 / 1 / unknown) constant propagation over a netlist.
//!
//! The DTA error-immunity pre-screen needs to know which gates can
//! *never toggle* given what is statically known about the values the
//! sequential elements and primary inputs can take: a gate whose output
//! is the same known constant on every cycle launches no transition, so
//! every path through it is dead for dynamic timing purposes.
//!
//! [`stable_values`] computes a sound per-gate abstraction of the set
//! of values each gate can carry across **all** cycles of any
//! execution, given per-gate constraints on flip-flop/input values. It
//! runs a Kleene iteration of the one-cycle abstract transformer:
//!
//! ```text
//! Q⁰(ff)    = Zero ⊔ C(ff)          (reset state joins the constraint)
//! Qᵏ⁺¹(ff)  = Q⁰(ff) ⊔ Dᵏ(ff)       (a cycle may also capture D)
//! ```
//!
//! where `Dᵏ` is the three-valued combinational evaluation under `Qᵏ`.
//! The chain is increasing on a finite lattice, so it terminates; at
//! the fixpoint, induction over cycles shows `Q` covers every reachable
//! value (cycle 0 is the all-zero reset; each later cycle either holds
//! a constrained/forced value or captures the D input, both covered).
//!
//! Callers that know a flip-flop is forced to program-derived values on
//! *every* relevant cycle (the co-simulation's bank forcing) can
//! instead evaluate one combinational pass via [`eval_with`] with those
//! tighter assumptions.

use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Three-valued abstraction of a wire: constant-0, constant-1, or
/// possibly varying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// The wire is 0 on every cycle under consideration.
    Zero,
    /// The wire is 1 on every cycle under consideration.
    One,
    /// The wire may take either value (or is unconstrained).
    Unknown,
}

impl Tri {
    /// Lattice join: agreeing constants stay, anything else is unknown.
    pub fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Unknown
        }
    }

    /// Whether the value is a known constant.
    pub fn is_known(self) -> bool {
        self != Tri::Unknown
    }

    /// Constant from a boolean.
    pub fn of(b: bool) -> Tri {
        if b {
            Tri::One
        } else {
            Tri::Zero
        }
    }

    fn not(self) -> Tri {
        match self {
            Tri::Zero => Tri::One,
            Tri::One => Tri::Zero,
            Tri::Unknown => Tri::Unknown,
        }
    }

    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Zero, _) | (_, Tri::Zero) => Tri::Zero,
            (Tri::One, Tri::One) => Tri::One,
            _ => Tri::Unknown,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::One, _) | (_, Tri::One) => Tri::One,
            (Tri::Zero, Tri::Zero) => Tri::Zero,
            _ => Tri::Unknown,
        }
    }

    fn xor(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Unknown, _) | (_, Tri::Unknown) => Tri::Unknown,
            (a, b) => Tri::of(a != b),
        }
    }
}

/// One three-valued combinational evaluation pass in topological order.
///
/// `assumptions` gives the abstract value of every sequential element
/// and primary input (`FlipFlop` / `Input` gates; other entries are
/// ignored). Returns the abstract value of every gate: combinational
/// outputs are derived, `Tie` gates are their constant, flip-flops and
/// inputs echo their assumption.
pub fn eval_with(netlist: &Netlist, assumptions: &[Tri]) -> Vec<Tri> {
    let n = netlist.gate_count();
    let mut vals = vec![Tri::Unknown; n];
    // `topo_order` lists only combinational gates; seed the sequential
    // elements, primary inputs and constant ties first.
    for g in netlist.gate_ids() {
        match netlist.kind(g) {
            GateKind::Input | GateKind::FlipFlop => {
                vals[g.index()] = assumptions.get(g.index()).copied().unwrap_or(Tri::Unknown);
            }
            GateKind::Tie(b) => vals[g.index()] = Tri::of(b),
            _ => {}
        }
    }
    let at = |vals: &[Tri], id: GateId| vals[id.index()];
    for &g in netlist.topo_order() {
        let fanin = netlist.fanin(g);
        let v = match netlist.kind(g) {
            GateKind::Input | GateKind::FlipFlop => vals[g.index()],
            GateKind::Tie(b) => Tri::of(b),
            GateKind::Buf => at(&vals, fanin[0]),
            GateKind::Not => at(&vals, fanin[0]).not(),
            GateKind::And => at(&vals, fanin[0]).and(at(&vals, fanin[1])),
            GateKind::Or => at(&vals, fanin[0]).or(at(&vals, fanin[1])),
            GateKind::Nand => at(&vals, fanin[0]).and(at(&vals, fanin[1])).not(),
            GateKind::Nor => at(&vals, fanin[0]).or(at(&vals, fanin[1])).not(),
            GateKind::Xor => at(&vals, fanin[0]).xor(at(&vals, fanin[1])),
            GateKind::Xnor => at(&vals, fanin[0]).xor(at(&vals, fanin[1])).not(),
            GateKind::Mux => {
                // fanin = [sel, a, b], output = sel ? b : a
                let sel = at(&vals, fanin[0]);
                let a = at(&vals, fanin[1]);
                let b = at(&vals, fanin[2]);
                match sel {
                    Tri::Zero => a,
                    Tri::One => b,
                    Tri::Unknown => {
                        if a == b {
                            a
                        } else {
                            Tri::Unknown
                        }
                    }
                }
            }
        };
        vals[g.index()] = v;
    }
    vals
}

/// Sound all-cycle abstraction of every gate's value set.
///
/// `constraint[g]` (length `gate_count`) describes external driving of
/// gate `g`:
///
/// * `FlipFlop` — `Some(c)`: on cycles where the testbench forces the
///   flip-flop, the forced value is covered by `c`; `None`: never
///   forced. Either way the reset state (zero) and D-capture on
///   unforced cycles are added by this function.
/// * `Input` — `Some(c)`: every externally driven value is covered by
///   `c` (the pre-drive default of zero is joined in); `None`: driven
///   by an unknown source, i.e. `Unknown`.
///
/// Entries for combinational gates are ignored.
pub fn stable_values(netlist: &Netlist, constraint: &[Option<Tri>]) -> Vec<Tri> {
    let mut c = ValueConstraints::new(netlist.gate_count());
    let k = constraint.len().min(c.cover.len());
    c.cover[..k].copy_from_slice(&constraint[..k]);
    stable_values_with(netlist, &c)
}

/// Constraints for [`stable_values_with`], split by strength.
///
/// `cover[g]` has the [`stable_values`] semantics: it bounds the values
/// a testbench *forces/drives* onto the element, and the reset state
/// plus D-capture on unforced cycles are joined in by the fixpoint.
///
/// `pinned[g] = Some(t)` is a caller-supplied **invariant**: the caller
/// asserts — on external grounds the bit-level abstraction cannot see,
/// e.g. an arithmetic bound on the program counter — that gate `g`
/// holds values covered by `t` on *every* cycle, captures included. A
/// pinned element takes no capture join (the reset/undriven zero is
/// still joined in, so `t` need not cover it explicitly). An unsound
/// pin yields unsound results; pin only what is externally proven.
/// `pinned` takes precedence over `cover` for the same gate.
#[derive(Debug, Clone)]
pub struct ValueConstraints {
    /// Forced/driven-value cover per gate (see [`stable_values`]).
    pub cover: Vec<Option<Tri>>,
    /// Caller-asserted all-cycle invariants per gate.
    pub pinned: Vec<Option<Tri>>,
}

impl ValueConstraints {
    /// No constraints on any of `n` gates.
    pub fn new(n: usize) -> Self {
        ValueConstraints {
            cover: vec![None; n],
            pinned: vec![None; n],
        }
    }
}

/// [`stable_values`] with pinned invariants (see [`ValueConstraints`]).
pub fn stable_values_with(netlist: &Netlist, constraints: &ValueConstraints) -> Vec<Tri> {
    let n = netlist.gate_count();
    let mut q = vec![Tri::Unknown; n];
    let mut is_pinned = vec![false; n];
    for g in netlist.gate_ids() {
        let gi = g.index();
        let pin = constraints.pinned.get(gi).copied().unwrap_or(None);
        let c = constraints.cover.get(gi).copied().unwrap_or(None);
        q[gi] = match netlist.kind(g) {
            GateKind::FlipFlop => {
                if let Some(p) = pin {
                    is_pinned[gi] = true;
                    Tri::Zero.join(p)
                } else {
                    // Reset state is all-zero, so Zero is always in a
                    // flip-flop's value set; capture is added
                    // iteratively.
                    c.map_or(Tri::Zero, |c| Tri::Zero.join(c))
                }
            }
            GateKind::Input => {
                if let Some(p) = pin {
                    is_pinned[gi] = true;
                    Tri::Zero.join(p)
                } else {
                    c.map_or(Tri::Unknown, |c| Tri::Zero.join(c))
                }
            }
            _ => Tri::Unknown,
        };
    }
    loop {
        let d = eval_with(netlist, &q);
        let mut changed = false;
        for g in netlist.gate_ids() {
            let gi = g.index();
            if is_pinned[gi] || !matches!(netlist.kind(g), GateKind::FlipFlop) {
                continue;
            }
            if let Ok(src) = netlist.ff_input(g) {
                let next = q[gi].join(d[src.index()]);
                if next != q[gi] {
                    q[gi] = next;
                    changed = true;
                }
            }
        }
        if !changed {
            return eval_with(netlist, &q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::netlist::EndpointClass;

    #[test]
    fn tri_algebra() {
        assert_eq!(Tri::Zero.and(Tri::Unknown), Tri::Zero);
        assert_eq!(Tri::One.or(Tri::Unknown), Tri::One);
        assert_eq!(Tri::One.xor(Tri::One), Tri::Zero);
        assert_eq!(Tri::Unknown.xor(Tri::Zero), Tri::Unknown);
        assert_eq!(Tri::Zero.join(Tri::Zero), Tri::Zero);
        assert_eq!(Tri::Zero.join(Tri::One), Tri::Unknown);
    }

    fn two_input_net() -> (Netlist, GateId, GateId, GateId, GateId, GateId) {
        // in0, in1 -> a = in0 & in1, x = a ^ in0, ff captures x.
        let mut b = NetlistBuilder::new(1);
        let i0 = b.input("in0", 0).expect("input");
        let i1 = b.input("in1", 0).expect("input");
        let a = b.gate(GateKind::And, &[i0, i1], 0).expect("and");
        let x = b.gate(GateKind::Xor, &[a, i0], 0).expect("xor");
        let ff = b.flip_flop("q", EndpointClass::Data, 0).expect("flip-flop");
        b.connect_ff_input(ff, x).expect("connect");
        (b.finish().expect("valid netlist"), i0, i1, a, x, ff)
    }

    #[test]
    fn combinational_masking_through_and() {
        // in1 pinned to zero makes the AND constant even though in0
        // varies; the XOR still sees in0.
        let (nl, _i0, i1, a, x, _ff) = two_input_net();
        let mut c = vec![None; nl.gate_count()];
        c[i1.index()] = Some(Tri::Zero);
        let vals = stable_values(&nl, &c);
        assert_eq!(vals[a.index()], Tri::Zero, "AND with constant-0 input");
        assert_eq!(vals[x.index()], Tri::Unknown, "XOR still sees in0");
    }

    #[test]
    fn unconstrained_ff_reaches_unknown_via_capture() {
        // A flip-flop fed by varying logic must not be reported
        // constant just because reset is zero.
        let (nl, _i0, _i1, _a, _x, ff) = two_input_net();
        let c = vec![None; nl.gate_count()];
        let vals = stable_values(&nl, &c);
        assert_eq!(vals[ff.index()], Tri::Unknown);
    }

    #[test]
    fn pinned_invariant_skips_capture_join() {
        // The flip-flop's D input varies, so the plain fixpoint widens
        // it to Unknown; a caller-asserted pin holds it at the claimed
        // invariant regardless.
        let (nl, _i0, _i1, _a, _x, ff) = two_input_net();
        let mut c = ValueConstraints::new(nl.gate_count());
        c.pinned[ff.index()] = Some(Tri::Zero);
        let vals = stable_values_with(&nl, &c);
        assert_eq!(vals[ff.index()], Tri::Zero);
        // Cover-only constraint on the same gate still widens.
        let mut c2 = ValueConstraints::new(nl.gate_count());
        c2.cover[ff.index()] = Some(Tri::Zero);
        let vals2 = stable_values_with(&nl, &c2);
        assert_eq!(vals2[ff.index()], Tri::Unknown);
    }

    #[test]
    fn zero_driven_ff_stays_zero() {
        // Both inputs zero force the whole cone (and the capture) to a
        // constant: x = (0 & 0) ^ 0 = 0, matching the reset state.
        let (nl, i0, i1, _a, x, ff) = two_input_net();
        let mut c = vec![None; nl.gate_count()];
        c[i0.index()] = Some(Tri::Zero);
        c[i1.index()] = Some(Tri::Zero);
        let vals = stable_values(&nl, &c);
        assert_eq!(vals[x.index()], Tri::Zero);
        assert_eq!(vals[ff.index()], Tri::Zero);
    }
}
