//! Incremental netlist construction with validation.

use crate::gate::{GateId, GateKind};
use crate::netlist::{EndpointClass, GateData, Netlist, Point};
use crate::{NetlistError, Result};
use std::collections::HashMap;

/// Builds a [`Netlist`] gate by gate, validating arity and acyclicity.
///
/// Placement: the builder maintains a *current region*; every gate created
/// while a region is active receives a deterministic pseudo-random position
/// inside it. Structural generators set one region per functional unit so
/// that spatially correlated process variation affects whole units together,
/// as it does on a real die.
///
/// # Example
/// ```
/// use terse_netlist::builder::NetlistBuilder;
/// use terse_netlist::gate::GateKind;
/// use terse_netlist::netlist::EndpointClass;
///
/// # fn main() -> Result<(), terse_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(1);
/// let a = b.input("a", 0)?;
/// let ff = b.flip_flop("q", EndpointClass::Data, 0)?;
/// let inv = b.gate(GateKind::Not, &[a], 0)?;
/// b.connect_ff_input(ff, inv)?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.gate_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    gates: Vec<GateData>,
    names: HashMap<String, Vec<GateId>>,
    ff_input: Vec<Option<GateId>>,
    stage_count: usize,
    region: (Point, Point),
    /// Small LCG for deterministic placement jitter.
    place_state: u64,
}

/// Packs a stage index into the per-gate `u16` field. Stage counts are
/// fixed at builder construction (single digits for the reference
/// pipeline) and never approach `u16::MAX`.
fn stage_u16(stage: usize) -> u16 {
    // terse-analyze: allow(AZ005): stage indices are small, builder-validated counts.
    stage as u16
}

impl NetlistBuilder {
    /// Creates a builder for a netlist with `stage_count` pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics if `stage_count == 0`.
    pub fn new(stage_count: usize) -> Self {
        assert!(stage_count > 0, "a netlist needs at least one stage");
        NetlistBuilder {
            gates: Vec::new(),
            names: HashMap::new(),
            ff_input: Vec::new(),
            stage_count,
            region: (Point { x: 0.0, y: 0.0 }, Point { x: 1.0, y: 1.0 }),
            place_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Sets the placement region for subsequently created gates
    /// (normalized die coordinates).
    pub fn set_region(&mut self, x0: f32, y0: f32, x1: f32, y1: f32) {
        self.region = (Point { x: x0, y: y0 }, Point { x: x1, y: y1 });
    }

    fn next_pos(&mut self) -> Point {
        // SplitMix-style step, two outputs for x and y jitter.
        let step = |s: &mut u64| {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*s >> 33) as f32) / (u32::MAX >> 1) as f32
        };
        let (lo, hi) = self.region;
        let u = step(&mut self.place_state).clamp(0.0, 1.0);
        let v = step(&mut self.place_state).clamp(0.0, 1.0);
        Point {
            x: lo.x + (hi.x - lo.x) * u,
            y: lo.y + (hi.y - lo.y) * v,
        }
    }

    fn check_stage(&self, stage: usize) -> Result<()> {
        if stage >= self.stage_count {
            return Err(NetlistError::BadStage {
                stage,
                stages: self.stage_count,
            });
        }
        Ok(())
    }

    fn check_ids(&self, fanin: &[GateId]) -> Result<()> {
        for f in fanin {
            if f.index() >= self.gates.len() {
                return Err(NetlistError::UnknownGate { id: f.0 });
            }
        }
        Ok(())
    }

    fn push(&mut self, data: GateData) -> GateId {
        let id = GateId::from_index(self.gates.len());
        self.gates.push(data);
        self.ff_input.push(None);
        id
    }

    /// Creates a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadFaninCount`] on arity mismatch,
    /// [`NetlistError::UnknownGate`] on dangling fanin, and
    /// [`NetlistError::BadStage`] on an out-of-range stage.
    pub fn gate(&mut self, kind: GateKind, fanin: &[GateId], stage: usize) -> Result<GateId> {
        self.check_stage(stage)?;
        self.check_ids(fanin)?;
        match kind.fanin_count() {
            Some(n) if n == fanin.len() => {}
            Some(n) => {
                return Err(NetlistError::BadFaninCount {
                    kind: kind.cell_name(),
                    expected: n,
                    got: fanin.len(),
                })
            }
            None => {
                return Err(NetlistError::BadFaninCount {
                    kind: kind.cell_name(),
                    expected: 1,
                    got: fanin.len(),
                })
            }
        }
        let pos = self.next_pos();
        Ok(self.push(GateData {
            kind,
            fanin: fanin.to_vec(),
            stage: stage_u16(stage),
            pos,
            endpoint: None,
        }))
    }

    /// Creates a named 1-bit primary input in the given stage.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] or [`NetlistError::BadStage`].
    pub fn input(&mut self, name: &str, stage: usize) -> Result<GateId> {
        let ids = self.input_bus(name, 1, stage)?;
        Ok(ids[0])
    }

    /// Creates a named bus of `width` primary inputs (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] or [`NetlistError::BadStage`].
    pub fn input_bus(&mut self, name: &str, width: usize, stage: usize) -> Result<Vec<GateId>> {
        self.check_stage(stage)?;
        let mut ids = Vec::with_capacity(width);
        for _ in 0..width {
            let pos = self.next_pos();
            ids.push(self.push(GateData {
                kind: GateKind::Input,
                fanin: Vec::new(),
                stage: stage_u16(stage),
                pos,
                endpoint: None,
            }));
        }
        self.register(name, ids.clone())?;
        Ok(ids)
    }

    /// Creates a named flip-flop endpoint capturing stage `capture_stage`
    /// logic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] or [`NetlistError::BadStage`].
    pub fn flip_flop(
        &mut self,
        name: &str,
        class: EndpointClass,
        capture_stage: usize,
    ) -> Result<GateId> {
        let ids = self.flip_flop_bus(name, 1, class, capture_stage)?;
        Ok(ids[0])
    }

    /// Creates a named bus of flip-flop endpoints (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] or [`NetlistError::BadStage`].
    pub fn flip_flop_bus(
        &mut self,
        name: &str,
        width: usize,
        class: EndpointClass,
        capture_stage: usize,
    ) -> Result<Vec<GateId>> {
        self.check_stage(capture_stage)?;
        let mut ids = Vec::with_capacity(width);
        for _ in 0..width {
            let pos = self.next_pos();
            ids.push(self.push(GateData {
                kind: GateKind::FlipFlop,
                fanin: Vec::new(),
                stage: stage_u16(capture_stage),
                pos,
                endpoint: Some(class),
            }));
        }
        self.register(name, ids.clone())?;
        Ok(ids)
    }

    /// Creates a constant driver.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadStage`] on an out-of-range stage.
    pub fn tie(&mut self, value: bool, stage: usize) -> Result<GateId> {
        self.check_stage(stage)?;
        let pos = self.next_pos();
        Ok(self.push(GateData {
            kind: GateKind::Tie(value),
            fanin: Vec::new(),
            stage: stage_u16(stage),
            pos,
            endpoint: None,
        }))
    }

    /// Connects the D input of flip-flop `ff` to `driver`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownGate`] for dangling ids or if `ff` is
    /// not a flip-flop.
    pub fn connect_ff_input(&mut self, ff: GateId, driver: GateId) -> Result<()> {
        self.check_ids(&[ff, driver])?;
        if self.gates[ff.index()].kind != GateKind::FlipFlop {
            return Err(NetlistError::UnknownGate { id: ff.0 });
        }
        self.gates[ff.index()].fanin = vec![driver];
        self.ff_input[ff.index()] = Some(driver);
        Ok(())
    }

    /// Replaces the fanin of an existing gate **without** arity or
    /// acyclicity checks.
    ///
    /// This exists for one purpose: constructing intentionally ill-formed
    /// netlists (combinational cycles, arity violations) as ground-truth
    /// negative fixtures for `terse-analyze`. Production construction goes
    /// through [`NetlistBuilder::gate`] / [`NetlistBuilder::finish`], which
    /// reject these shapes. Pair with [`NetlistBuilder::finish_unchecked`];
    /// [`NetlistBuilder::finish`] will still reject the resulting cycle.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownGate`] on dangling ids.
    pub fn rewire_fanin(&mut self, gate: GateId, fanin: &[GateId]) -> Result<()> {
        self.check_ids(&[gate])?;
        self.check_ids(fanin)?;
        self.gates[gate.index()].fanin = fanin.to_vec();
        Ok(())
    }

    /// Appends an *additional* D driver to a flip-flop, creating a
    /// multi-driver conflict.
    ///
    /// Like [`NetlistBuilder::rewire_fanin`], this is a fixture-injection
    /// API for `terse-analyze`: real designs have exactly one driver per
    /// net, and [`NetlistBuilder::connect_ff_input`] enforces that by
    /// overwriting. The first connected driver remains the one reported by
    /// [`Netlist::ff_input`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownGate`] for dangling ids or if `ff` is
    /// not a flip-flop.
    pub fn add_ff_driver(&mut self, ff: GateId, driver: GateId) -> Result<()> {
        self.check_ids(&[ff, driver])?;
        if self.gates[ff.index()].kind != GateKind::FlipFlop {
            return Err(NetlistError::UnknownGate { id: ff.0 });
        }
        self.gates[ff.index()].fanin.push(driver);
        if self.ff_input[ff.index()].is_none() {
            self.ff_input[ff.index()] = Some(driver);
        }
        Ok(())
    }

    /// Registers an additional bus name for existing gates.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name exists or
    /// [`NetlistError::UnknownGate`] on dangling ids.
    pub fn name_bus(&mut self, name: &str, ids: &[GateId]) -> Result<()> {
        self.check_ids(ids)?;
        self.register(name, ids.to_vec())
    }

    fn register(&mut self, name: &str, ids: Vec<GateId>) -> Result<()> {
        if self.names.contains_key(name) {
            return Err(NetlistError::DuplicateName {
                name: name.to_owned(),
            });
        }
        self.names.insert(name.to_owned(), ids);
        Ok(())
    }

    /// Number of gates created so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Looks up an already registered bus during construction (structural
    /// generators reference earlier stages' banks by name).
    pub fn peek_bus(&self, name: &str) -> Option<Vec<GateId>> {
        self.names.get(name).cloned()
    }

    /// Validates and freezes the netlist: checks every flip-flop is
    /// connected, builds fanout lists, and topologically orders the
    /// combinational gates.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnconnectedFlipFlop`] or
    /// [`NetlistError::CombinationalCycle`].
    pub fn finish(self) -> Result<Netlist> {
        failpoints::fail_point!("netlist::finish", |_| Err(NetlistError::CombinationalCycle));
        let n = self.gates.len();
        // Every FF must have a D driver.
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind == GateKind::FlipFlop && self.ff_input[i].is_none() {
                // terse-analyze: allow(AZ005): gate index, dense and < 2^32 by construction.
                return Err(NetlistError::UnconnectedFlipFlop { id: i as u32 });
            }
        }
        // Fanout adjacency.
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            for f in &g.fanin {
                fanout[f.index()].push(GateId::from_index(i));
            }
        }
        // Kahn topological sort over combinational gates (endpoints and
        // ports are sources; FF D-edges terminate at the FF which is not
        // itself propagated combinationally).
        let mut indeg = vec![0usize; n];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_endpoint() {
                continue;
            }
            indeg[i] = g
                .fanin
                .iter()
                .filter(|f| !self.gates[f.index()].kind.is_endpoint())
                .count();
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.gates[i].kind.is_endpoint() && indeg[i] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(GateId::from_index(u));
            for v in &fanout[u] {
                let vi = v.index();
                if self.gates[vi].kind.is_endpoint() {
                    continue;
                }
                indeg[vi] -= 1;
                if indeg[vi] == 0 {
                    queue.push(vi);
                }
            }
        }
        let comb_count = self.gates.iter().filter(|g| !g.kind.is_endpoint()).count();
        if topo.len() != comb_count {
            return Err(NetlistError::CombinationalCycle);
        }
        // Endpoint lists per capture stage.
        let mut endpoints_by_stage: Vec<Vec<GateId>> = vec![Vec::new(); self.stage_count];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind == GateKind::FlipFlop {
                endpoints_by_stage[g.stage as usize].push(GateId::from_index(i));
            }
        }
        Ok(Netlist {
            gates: self.gates,
            fanout,
            topo,
            stage_count: self.stage_count,
            endpoints_by_stage,
            names: self.names,
            ff_input: self.ff_input,
        })
    }

    /// Freezes the netlist **without** validation: unconnected flip-flops
    /// are kept, and on a combinational cycle the topological order is the
    /// partial (acyclic-prefix) order — cycle members are simply absent
    /// from [`Netlist::topo_order`].
    ///
    /// The only consumer is `terse-analyze`'s negative-fixture path: the
    /// structural passes must be able to *hold* an ill-formed netlist to
    /// diagnose it. Never feed the result to the simulator, STA, or DTA —
    /// those layers assume [`NetlistBuilder::finish`]'s invariants.
    pub fn finish_unchecked(self) -> Netlist {
        let n = self.gates.len();
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            for f in &g.fanin {
                fanout[f.index()].push(GateId::from_index(i));
            }
        }
        // Same Kahn sweep as `finish`, but a short count (cycle) is
        // tolerated: the partial order covers the acyclic prefix only.
        let mut indeg = vec![0usize; n];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_endpoint() {
                continue;
            }
            indeg[i] = g
                .fanin
                .iter()
                .filter(|f| !self.gates[f.index()].kind.is_endpoint())
                .count();
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.gates[i].kind.is_endpoint() && indeg[i] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(GateId::from_index(u));
            for v in &fanout[u] {
                let vi = v.index();
                if self.gates[vi].kind.is_endpoint() {
                    continue;
                }
                indeg[vi] -= 1;
                if indeg[vi] == 0 {
                    queue.push(vi);
                }
            }
        }
        let mut endpoints_by_stage: Vec<Vec<GateId>> = vec![Vec::new(); self.stage_count];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind == GateKind::FlipFlop {
                let s = (g.stage as usize).min(self.stage_count - 1);
                endpoints_by_stage[s].push(GateId::from_index(i));
            }
        }
        Netlist {
            gates: self.gates,
            fanout,
            topo,
            stage_count: self.stage_count,
            endpoints_by_stage,
            names: self.names,
            ff_input: self.ff_input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_validation() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        assert!(matches!(
            b.gate(GateKind::And, &[a], 0),
            Err(NetlistError::BadFaninCount { .. })
        ));
        assert!(matches!(
            b.gate(GateKind::Not, &[a, a], 0),
            Err(NetlistError::BadFaninCount { .. })
        ));
        assert!(b.gate(GateKind::Not, &[a], 0).is_ok());
    }

    #[test]
    fn dangling_fanin_rejected() {
        let mut b = NetlistBuilder::new(1);
        let bogus = GateId::from_index(99);
        assert!(matches!(
            b.gate(GateKind::Not, &[bogus], 0),
            Err(NetlistError::UnknownGate { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetlistBuilder::new(1);
        b.input("x", 0).unwrap();
        assert!(matches!(
            b.input("x", 0),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn unconnected_ff_rejected() {
        let mut b = NetlistBuilder::new(1);
        b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        assert!(matches!(
            b.finish(),
            Err(NetlistError::UnconnectedFlipFlop { .. })
        ));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let g1 = b.gate(GateKind::And, &[a, a], 0).unwrap();
        let g2 = b.gate(GateKind::Or, &[g1, g1], 0).unwrap();
        // Manually create a cycle by rebuilding g1's fanin — emulate via a
        // second gate pair that feeds back.
        let g3 = b.gate(GateKind::And, &[g2, g2], 0).unwrap();
        // There is no public API to create a cycle (fanin fixed at creation),
        // which is itself the guarantee; assert finish succeeds.
        let _ = g3;
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rewired_cycle_rejected_by_finish_but_kept_unchecked() {
        let build = || {
            let mut b = NetlistBuilder::new(1);
            let a = b.input("a", 0).unwrap();
            let g1 = b.gate(GateKind::And, &[a, a], 0).unwrap();
            let g2 = b.gate(GateKind::Or, &[g1, g1], 0).unwrap();
            // Close the loop g1 -> g2 -> g1 through the injection API.
            b.rewire_fanin(g1, &[a, g2]).unwrap();
            let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
            b.connect_ff_input(ff, g2).unwrap();
            b
        };
        assert!(matches!(
            build().finish(),
            Err(NetlistError::CombinationalCycle)
        ));
        let n = build().finish_unchecked();
        assert_eq!(n.gate_count(), 4);
        // Both cycle members are missing from the partial topo order.
        assert!(n.topo_order().is_empty());
        // Fanout still reflects the rewired edges.
        let g2 = GateId::from_index(2);
        assert!(n.fanout(g2).contains(&GateId::from_index(1)));
    }

    #[test]
    fn add_ff_driver_creates_multidriver() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let inv = b.gate(GateKind::Not, &[a], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, inv).unwrap();
        b.add_ff_driver(ff, a).unwrap();
        let n = b.finish_unchecked();
        assert_eq!(n.fanin(ff).len(), 2);
        // The first connected driver stays the canonical D input.
        assert_eq!(n.ff_input(ff).unwrap(), inv);
    }

    #[test]
    fn finish_unchecked_keeps_undriven_ff() {
        let mut b = NetlistBuilder::new(1);
        b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        let n = b.finish_unchecked();
        let ff = n.bus("q").unwrap()[0];
        assert!(n.ff_input(ff).is_err());
        assert_eq!(n.endpoints(0).unwrap().len(), 1);
    }

    #[test]
    fn bad_stage_rejected() {
        let mut b = NetlistBuilder::new(2);
        assert!(matches!(
            b.input("a", 2),
            Err(NetlistError::BadStage { .. })
        ));
    }

    #[test]
    fn placement_respects_region() {
        let mut b = NetlistBuilder::new(1);
        b.set_region(0.25, 0.5, 0.5, 0.75);
        let bus = b.input_bus("v", 64, 0).unwrap();
        let b2 = {
            let mut nb = b;
            let ff = nb.flip_flop("q", EndpointClass::Data, 0).unwrap();
            nb.connect_ff_input(ff, bus[0]).unwrap();
            nb.finish().unwrap()
        };
        for &g in b2.bus("v").unwrap() {
            let p = b2.position(g);
            assert!((0.25..=0.5).contains(&p.x), "x = {}", p.x);
            assert!((0.5..=0.75).contains(&p.y), "y = {}", p.y);
        }
    }

    #[test]
    fn name_bus_aliases_existing_gates() {
        let mut b = NetlistBuilder::new(1);
        let xs = b.input_bus("x", 4, 0).unwrap();
        b.name_bus("alias", &xs[0..2]).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Control, 0).unwrap();
        b.connect_ff_input(ff, xs[0]).unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.bus("alias").unwrap().len(), 2);
    }

    #[test]
    fn deterministic_construction() {
        let build = || {
            let mut b = NetlistBuilder::new(1);
            let xs = b.input_bus("x", 8, 0).unwrap();
            let g = b.gate(GateKind::Xor, &[xs[0], xs[1]], 0).unwrap();
            let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
            b.connect_ff_input(ff, g).unwrap();
            b.finish().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.gate_count(), b.gate_count());
        for id in a.gate_ids() {
            assert_eq!(a.position(id).x, b.position(id).x);
        }
    }
}
