//! # terse-netlist
//!
//! Gate-level netlist substrate for the TERSE framework.
//!
//! The paper analyzes the synthesized netlist of the LEON3 integer unit; that
//! netlist (and the Synopsys flow that produces it) is unobtainable, so this
//! crate builds the closest synthetic equivalent: a *real* gate-level netlist
//! of a 6-stage in-order integer pipeline, generated structurally from
//! textbook arithmetic circuits. Every gate carries an actual boolean
//! function, so the paper's notion of *activation* (Definition 3.2 — a gate
//! is activated in a cycle if its output net changes value) is computed by
//! genuinely simulating the circuit, cycle by cycle. This is what produces
//! value-dependent critical paths: an `add` with a long carry propagation
//! activates a long path through the ripple-carry chain, a short one does
//! not.
//!
//! Contents:
//!
//! * [`bitset`] — a compact bit set used for per-cycle activation sets (the
//!   `VCD(t)` of the paper's Algorithm 1).
//! * [`gate`] — gate kinds and boolean evaluation.
//! * [`netlist`] — the netlist graph: gates, fanin/fanout, flip-flop
//!   *endpoints* (classified control vs data, Section 4 of the paper),
//!   levelization, named buses, and 2-D placement for the spatial-correlation
//!   model.
//! * [`builder`] — incremental netlist construction.
//! * [`circuits`] — structural generators: ripple-carry adder/subtractor,
//!   barrel shifter, logic unit, comparators, array multiplier, mux trees,
//!   decoders and pseudo-random control clouds.
//! * [`pipeline`] — the 6-stage integer pipeline netlist (the LEON3
//!   substitute) with named stage input banks for co-simulation.
//! * [`sim`] — the cycle-accurate boolean simulator producing
//!   [`activity::ActivityTrace`]s (the VCD substitute).
//!
//! # Example
//!
//! ```
//! use terse_netlist::builder::NetlistBuilder;
//! use terse_netlist::gate::GateKind;
//! use terse_netlist::sim::Simulator;
//!
//! # fn main() -> Result<(), terse_netlist::NetlistError> {
//! // A 1-bit toggling circuit: ff feeds an inverter feeding the ff.
//! let mut b = NetlistBuilder::new(1);
//! let ff = b.flip_flop("state", terse_netlist::netlist::EndpointClass::Data, 0)?;
//! let inv = b.gate(GateKind::Not, &[ff], 0)?;
//! b.connect_ff_input(ff, inv)?;
//! let netlist = b.finish()?;
//! let mut sim = Simulator::new(&netlist);
//! sim.step(); // q: 0 -> comb computes 1
//! sim.step(); // q captures 1, comb computes 0
//! assert!(sim.value(inv) == false);
//! # Ok(())
//! # }
//! ```

// Numeric-kernel idioms used intentionally throughout this crate:
// `!(x >= 0.0)` rejects NaN along with negatives, and index loops run over
// several parallel arrays at once.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]
#![warn(missing_docs)]
pub mod activity;
pub mod bitset;
pub mod builder;
pub mod circuits;
pub mod consts;
pub mod gate;
pub mod netlist;
pub mod packed;
pub mod pipeline;
pub mod signature;
pub mod sim;
pub mod tape;

pub use activity::ActivityTrace;
pub use bitset::BitSet;
pub use builder::NetlistBuilder;
pub use consts::{eval_with, stable_values, stable_values_with, Tri, ValueConstraints};
pub use gate::{GateId, GateKind};
pub use netlist::{EndpointClass, Netlist};
pub use packed::PackedSimulator;
pub use pipeline::{PipelineConfig, PipelineNetlist};
pub use sim::{SimStrategy, Simulator};
pub use tape::{CompiledTape, Op, OpKind};

use std::fmt;

/// Error type for netlist construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A referenced gate id does not exist.
    UnknownGate {
        /// The offending id value.
        id: u32,
    },
    /// A named bus or port was not found.
    UnknownName {
        /// The name that failed to resolve.
        name: String,
    },
    /// A bus name was registered twice.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A gate received the wrong number of inputs for its kind.
    BadFaninCount {
        /// The gate kind.
        kind: &'static str,
        /// Expected input count.
        expected: usize,
        /// Provided input count.
        got: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle,
    /// A stage index was out of range.
    BadStage {
        /// The offending stage.
        stage: usize,
        /// Number of stages in the netlist.
        stages: usize,
    },
    /// A flip-flop was left without a D input connection.
    UnconnectedFlipFlop {
        /// The flip-flop id.
        id: u32,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownGate { id } => write!(f, "unknown gate id {id}"),
            NetlistError::UnknownName { name } => write!(f, "unknown bus or port name `{name}`"),
            NetlistError::DuplicateName { name } => write!(f, "duplicate bus name `{name}`"),
            NetlistError::BadFaninCount {
                kind,
                expected,
                got,
            } => write!(f, "gate kind {kind} expects {expected} inputs, got {got}"),
            NetlistError::CombinationalCycle => {
                write!(f, "combinational logic contains a cycle")
            }
            NetlistError::BadStage { stage, stages } => {
                write!(f, "stage {stage} out of range for {stages}-stage netlist")
            }
            NetlistError::UnconnectedFlipFlop { id } => {
                write!(f, "flip-flop {id} has no D input connected")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Crate-wide result alias.
pub type Result<T, E = NetlistError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_displayable_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
        let e = NetlistError::CombinationalCycle;
        assert!(!e.to_string().is_empty());
    }
}
