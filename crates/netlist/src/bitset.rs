//! A compact, fixed-capacity bit set.
//!
//! Activation sets (`VCD(t)` in the paper's Algorithm 1) contain one bit per
//! gate and are produced for every simulated cycle, so they must be cheap to
//! allocate, test and clear.

/// A fixed-capacity bit set over `u64` words.
///
/// # Example
/// ```
/// use terse_netlist::BitSet;
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3) && s.contains(64) && !s.contains(4));
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

/// `splitmix64` finalizer — the word mixer behind [`BitSet::fingerprint`].
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BitSet {
    /// Creates an empty set with room for `capacity` elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity (exclusive upper bound on element values).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Creates a set from raw little-endian words: word `i` holds elements
    /// `64·i .. 64·i+63`. Missing trailing words are zero; bits at or above
    /// `capacity` are cleared. This is the cheap bulk constructor for
    /// word-shaped data (e.g. per-instruction operand toggle masks), exactly
    /// equivalent to inserting each set bit individually.
    pub fn from_words(words: &[u64], capacity: usize) -> Self {
        let n = capacity.div_ceil(64);
        let mut out = vec![0u64; n];
        for (dst, &src) in out.iter_mut().zip(words) {
            *dst = src;
        }
        if !capacity.is_multiple_of(64) {
            if let Some(last) = out.last_mut() {
                *last &= (1u64 << (capacity % 64)) - 1;
            }
        }
        BitSet {
            words: out,
            capacity,
        }
    }

    /// Overwrites the set's content from raw little-endian words, in place
    /// (the allocation-free counterpart of [`BitSet::from_words`] for
    /// per-cycle scratch sets). Missing trailing words are zeroed; bits at
    /// or above the capacity are cleared.
    pub fn copy_from_words(&mut self, words: &[u64]) {
        for (i, dst) in self.words.iter_mut().enumerate() {
            *dst = words.get(i).copied().unwrap_or(0);
        }
        if !self.capacity.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.capacity % 64)) - 1;
            }
        }
    }

    /// Inserts `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.capacity, "bitset index {i} out of capacity");
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Removes `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.capacity, "bitset index {i} out of capacity");
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Membership test. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements (retains capacity).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Returns `self ∧ mask` as a new set.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn masked(&self, mask: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.intersect_with(mask);
        s
    }

    /// A 64-bit activation signature: a content hash of the set, stable
    /// across runs and platforms. Equal sets always hash equal; unequal sets
    /// collide only with ~2⁻⁶⁴ probability, so callers that need *proof* of
    /// equality (the DTA memo cache does) must still compare the stored set
    /// bit-for-bit.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(self.capacity as u64 ^ 0x9e37_79b9_7f4a_7c15);
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                h ^= mix(w ^ mix(i as u64));
            }
        }
        h
    }

    /// [`BitSet::fingerprint`] of `self ∧ mask`, without allocating the
    /// intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn masked_fingerprint(&self, mask: &BitSet) -> u64 {
        assert_eq!(self.capacity, mask.capacity, "bitset capacity mismatch");
        let mut h = mix(self.capacity as u64 ^ 0x9e37_79b9_7f4a_7c15);
        for (i, (&a, &b)) in self.words.iter().zip(&mask.words).enumerate() {
            let w = a & b;
            if w != 0 {
                h ^= mix(w ^ mix(i as u64));
            }
        }
        h
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set elements; see [`BitSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx << 6) | bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the maximum element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 8);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn iteration_in_order() {
        let mut s = BitSet::new(200);
        let elems = [5usize, 17, 63, 64, 100, 199];
        for &e in &elems {
            s.insert(e);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, elems);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(2);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![65]);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(9);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn fingerprint_tracks_content_not_history() {
        let mut a = BitSet::new(300);
        let mut b = BitSet::new(300);
        for i in [7usize, 64, 130, 299] {
            a.insert(i);
        }
        for i in [299usize, 130, 64, 7] {
            b.insert(i); // different insertion order
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.remove(64);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Capacity participates: an empty 10-set and empty 11-set differ.
        assert_ne!(BitSet::new(10).fingerprint(), BitSet::new(11).fingerprint());
    }

    #[test]
    fn masked_fingerprint_matches_materialized_intersection() {
        let mut s = BitSet::new(200);
        let mut m = BitSet::new(200);
        for i in (0..200).step_by(3) {
            s.insert(i);
        }
        for i in (0..200).step_by(5) {
            m.insert(i);
        }
        assert_eq!(s.masked_fingerprint(&m), s.masked(&m).fingerprint());
        assert_eq!(s.masked(&m).iter().count(), (0..200).step_by(15).count());
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3usize, 9, 6].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 6, 9]);
    }
}
