//! Cycle-accurate boolean simulation with toggle tracking — the VCD
//! substitute.
//!
//! The paper obtains `VCD(t)` (the set of gates activated in cycle `t`,
//! Definition 3.2) from a gate-level simulation of the synthesized netlist.
//! [`Simulator`] does exactly that on our netlist: each [`Simulator::step`]
//! advances one clock cycle — flip-flop outputs update, combinational logic
//! propagates in topological order, and every gate whose output value changed
//! relative to the previous cycle is recorded as activated.

use crate::activity::ActivityTrace;
use crate::bitset::BitSet;
use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// A cycle-accurate simulator over a [`Netlist`].
///
/// Primary inputs are driven with [`Simulator::set_input`]; flip-flops
/// normally capture their D input at each clock edge but can be *forced*
/// (co-simulation drives pipeline banks directly from architectural state).
///
/// # Example
/// ```
/// use terse_netlist::builder::NetlistBuilder;
/// use terse_netlist::gate::GateKind;
/// use terse_netlist::netlist::EndpointClass;
/// use terse_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), terse_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(1);
/// let a = b.input("a", 0)?;
/// let q = b.flip_flop("q", EndpointClass::Data, 0)?;
/// let g = b.gate(GateKind::Not, &[a], 0)?;
/// b.connect_ff_input(q, g)?;
/// let n = b.finish()?;
///
/// let mut sim = Simulator::new(&n);
/// sim.set_input(a, true);
/// let act = sim.step();
/// assert!(!sim.value(g));            // NOT(1) = 0... and a toggled 0→1
/// assert!(act.contains(a.index()));  // the input toggled, so it activated
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    /// Current output value of every gate.
    values: Vec<bool>,
    /// Captured D values waiting to appear on Q at the next edge.
    ff_next: Vec<bool>,
    /// Pending forced Q overrides (consumed at the next edge).
    forced: Vec<Option<bool>>,
    cycle: u64,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator with all nets initially low.
    pub fn new(netlist: &'n Netlist) -> Self {
        let n = netlist.gate_count();
        let mut sim = Simulator {
            netlist,
            values: vec![false; n],
            ff_next: vec![false; n],
            forced: vec![None; n],
            cycle: 0,
        };
        // Constants drive their value from time zero.
        for id in netlist.gate_ids() {
            if let GateKind::Tie(v) = netlist.kind(id) {
                sim.values[id.index()] = v;
            }
        }
        sim
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current output value of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: GateId) -> bool {
        self.values[id.index()]
    }

    /// Reads a named bus as an integer (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    pub fn bus_value(&self, name: &str) -> crate::Result<u64> {
        let ids = self.netlist.bus(name)?;
        let mut v = 0u64;
        for (i, &g) in ids.iter().enumerate().take(64) {
            if self.value(g) {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    /// Drives a primary input. Takes effect at the next [`Simulator::step`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an [`GateKind::Input`] gate.
    pub fn set_input(&mut self, id: GateId, value: bool) {
        assert_eq!(
            self.netlist.kind(id),
            GateKind::Input,
            "set_input requires an input port"
        );
        self.forced[id.index()] = Some(value);
    }

    /// Drives a named input bus from an integer (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    ///
    /// # Panics
    ///
    /// Panics if any bus bit is not an input port.
    pub fn set_input_bus(&mut self, name: &str, value: u64) -> crate::Result<()> {
        let ids: Vec<GateId> = self.netlist.bus(name)?.to_vec();
        for (i, g) in ids.into_iter().enumerate() {
            self.set_input(g, (value >> i.min(63)) & 1 == 1 && i < 64);
        }
        Ok(())
    }

    /// Forces a flip-flop's Q output for the next cycle (overrides capture).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a flip-flop.
    pub fn force_ff(&mut self, id: GateId, value: bool) {
        assert_eq!(
            self.netlist.kind(id),
            GateKind::FlipFlop,
            "force_ff requires a flip-flop"
        );
        self.forced[id.index()] = Some(value);
    }

    /// Forces a named flip-flop bank from an integer (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    ///
    /// # Panics
    ///
    /// Panics if any bus bit is not a flip-flop.
    pub fn force_ff_bus(&mut self, name: &str, value: u64) -> crate::Result<()> {
        let ids: Vec<GateId> = self.netlist.bus(name)?.to_vec();
        for (i, g) in ids.into_iter().enumerate() {
            self.force_ff(g, i < 64 && (value >> i) & 1 == 1);
        }
        Ok(())
    }

    /// Advances one clock cycle and returns the activation set `VCD(t)`:
    /// every gate (including endpoints) whose output changed this cycle.
    // Invariant: `Netlist::validate` rejects unconnected flip-flops, and the
    // simulator only wraps validated netlists, so `ff_input` cannot fail.
    #[allow(clippy::expect_used)]
    pub fn step(&mut self) -> BitSet {
        let n = self.netlist.gate_count();
        let mut activated = BitSet::new(n);
        // 1. Clock edge: flip-flop Q outputs update (captured D or forced),
        //    primary inputs take their driven values.
        for id in self.netlist.gate_ids() {
            let i = id.index();
            match self.netlist.kind(id) {
                GateKind::FlipFlop => {
                    let new = self.forced[i].take().unwrap_or(self.ff_next[i]);
                    if new != self.values[i] {
                        activated.insert(i);
                    }
                    self.values[i] = new;
                }
                GateKind::Input => {
                    if let Some(new) = self.forced[i].take() {
                        if new != self.values[i] {
                            activated.insert(i);
                        }
                        self.values[i] = new;
                    }
                }
                _ => {}
            }
        }
        // 2. Combinational propagation in topological order.
        let mut inbuf = [false; 3];
        for &g in self.netlist.topo_order() {
            let gi = g.index();
            let fanin = self.netlist.fanin(g);
            for (slot, f) in inbuf.iter_mut().zip(fanin) {
                *slot = self.values[f.index()];
            }
            let new = self.netlist.kind(g).eval(&inbuf[..fanin.len()]);
            if new != self.values[gi] {
                activated.insert(gi);
                self.values[gi] = new;
            }
        }
        // 3. Capture D pins for the next edge.
        for id in self.netlist.gate_ids() {
            if self.netlist.kind(id) == GateKind::FlipFlop {
                let d = self
                    .netlist
                    .ff_input(id)
                    .expect("validated netlist has connected flip-flops");
                self.ff_next[id.index()] = self.values[d.index()];
            }
        }
        self.cycle += 1;
        activated
    }

    /// Runs `cycles` steps, collecting the activity trace.
    pub fn run(&mut self, cycles: usize) -> ActivityTrace {
        let mut trace = ActivityTrace::new(self.netlist.gate_count());
        for _ in 0..cycles {
            let act = self.step();
            trace.push(act);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::netlist::EndpointClass;

    /// 2-bit counter: q0 toggles every cycle, q1 toggles when q0 is 1.
    fn counter() -> Netlist {
        let mut b = NetlistBuilder::new(1);
        let q0 = b.flip_flop("q0", EndpointClass::Control, 0).unwrap();
        let q1 = b.flip_flop("q1", EndpointClass::Control, 0).unwrap();
        let n0 = b.gate(GateKind::Not, &[q0], 0).unwrap();
        let t1 = b.gate(GateKind::Xor, &[q1, q0], 0).unwrap();
        b.connect_ff_input(q0, n0).unwrap();
        b.connect_ff_input(q1, t1).unwrap();
        b.name_bus("count", &[q0, q1]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let mut seen = Vec::new();
        for _ in 0..5 {
            sim.step();
            seen.push(sim.bus_value("count").unwrap());
        }
        // Cycle 1: Q still 00 (capture of initial comb values happens at the
        // end of cycle 0's step); sequence settles into 0,1,2,3,0...
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn activation_reflects_toggles() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let q0 = n.bus("q0").unwrap()[0];
        let q1 = n.bus("q1").unwrap()[0];
        sim.step(); // count 0 -> comb set up
        let a2 = sim.step(); // count becomes 1: q0 toggles, q1 stays
        assert!(a2.contains(q0.index()));
        assert!(!a2.contains(q1.index()));
        let a3 = sim.step(); // count becomes 2: both toggle
        assert!(a3.contains(q0.index()));
        assert!(a3.contains(q1.index()));
    }

    #[test]
    fn forcing_overrides_capture() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let q0 = n.bus("q0").unwrap()[0];
        sim.step();
        sim.force_ff(q0, false); // hold q0 at 0 regardless of its D pin
        sim.step();
        assert!(!sim.value(q0));
    }

    #[test]
    fn input_driving() {
        let mut b = NetlistBuilder::new(1);
        let xs = b.input_bus("x", 8, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, xs[0]).unwrap();
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n);
        sim.set_input_bus("x", 0xA5).unwrap();
        sim.step();
        assert_eq!(sim.bus_value("x").unwrap(), 0xA5);
        // Unchanged inputs do not activate on the next cycle.
        let act = sim.step();
        for &g in n.bus("x").unwrap() {
            assert!(!act.contains(g.index()));
        }
    }

    #[test]
    fn run_collects_trace() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let trace = sim.run(8);
        assert_eq!(trace.len(), 8);
        assert_eq!(sim.cycle(), 8);
        // q0 toggles every cycle from cycle 1 onward.
        let q0 = n.bus("q0").unwrap()[0];
        let toggles = (1..8)
            .filter(|&t| trace.cycle(t).contains(q0.index()))
            .count();
        assert_eq!(toggles, 7);
    }

    #[test]
    fn tie_cells_hold_value() {
        let mut b = NetlistBuilder::new(1);
        let one = b.tie(true, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Control, 0).unwrap();
        b.connect_ff_input(ff, one).unwrap();
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n);
        assert!(sim.value(one));
        sim.step();
        sim.step();
        assert!(sim.value(ff)); // captured the constant
    }
}
