//! Cycle-accurate boolean simulation with toggle tracking — the VCD
//! substitute.
//!
//! The paper obtains `VCD(t)` (the set of gates activated in cycle `t`,
//! Definition 3.2) from a gate-level simulation of the synthesized netlist.
//! [`Simulator`] does exactly that on our netlist: each [`Simulator::step`]
//! advances one clock cycle — flip-flop outputs update, combinational logic
//! propagates in topological order, and every gate whose output value changed
//! relative to the previous cycle is recorded as activated.

use crate::activity::ActivityTrace;
use crate::bitset::BitSet;
use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;
use crate::packed::PackedSimulator;

/// How [`Simulator::step`] propagates values through combinational logic.
///
/// All four strategies produce bit-identical activation sets and values;
/// they differ only in how much work each cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimStrategy {
    /// Dirty-set worklist propagation: only gates whose fan-in toggled this
    /// cycle are re-evaluated, in topological order. Produces bit-identical
    /// activation sets to [`SimStrategy::FullScan`] (a gate whose inputs did
    /// not change cannot change output), at a fraction of the per-cycle work
    /// on real programs, whose toggle activity is sparse.
    #[default]
    EventDriven,
    /// Re-evaluate every combinational gate every cycle — the reference
    /// semantics. Kept for differential testing and benchmarking.
    FullScan,
    /// Execute the pre-compiled flat op tape end to end every cycle
    /// ([`crate::tape::CompiledTape`]): full-scan semantics with no per-gate
    /// `GateKind` dispatch and no fan-in `Vec` chasing.
    CompiledTape,
    /// The bit-parallel backend ([`PackedSimulator`], here with one live
    /// lane): compiled tape plus event-driven dirty-span skipping — the
    /// fastest single-instance mode.
    Packed,
}

/// A cycle-accurate simulator over a [`Netlist`].
///
/// Primary inputs are driven with [`Simulator::set_input`]; flip-flops
/// normally capture their D input at each clock edge but can be *forced*
/// (co-simulation drives pipeline banks directly from architectural state).
///
/// # Example
/// ```
/// use terse_netlist::builder::NetlistBuilder;
/// use terse_netlist::gate::GateKind;
/// use terse_netlist::netlist::EndpointClass;
/// use terse_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), terse_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(1);
/// let a = b.input("a", 0)?;
/// let q = b.flip_flop("q", EndpointClass::Data, 0)?;
/// let g = b.gate(GateKind::Not, &[a], 0)?;
/// b.connect_ff_input(q, g)?;
/// let n = b.finish()?;
///
/// let mut sim = Simulator::new(&n);
/// sim.set_input(a, true);
/// let act = sim.step();
/// assert!(!sim.value(g));            // NOT(1) = 0... and a toggled 0→1
/// assert!(act.contains(a.index()));  // the input toggled, so it activated
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    /// Current output value of every gate.
    values: Vec<bool>,
    /// Captured D values waiting to appear on Q at the next edge.
    ff_next: Vec<bool>,
    /// Pending forced Q overrides (consumed at the next edge).
    forced: Vec<Option<bool>>,
    cycle: u64,
    strategy: SimStrategy,
    /// Topological position of each combinational gate (`u32::MAX` for
    /// sources and flip-flops, which never appear on the worklist).
    topo_pos: Vec<u32>,
    /// Dirty bitmap over topological positions — the event worklist. Bits
    /// are drained in ascending position order (lowest set bit first), and
    /// event insertions always land at strictly larger positions, so each
    /// gate is evaluated at most once per cycle.
    dirty_pos: Vec<u64>,
    /// Sequential elements updated at the clock edge (flip-flops and
    /// primary inputs), precomputed so the edge does not scan every gate.
    seq: Vec<GateId>,
    /// Flip-flops only, for D-pin recapture.
    ffs: Vec<GateId>,
    /// Whether a full combinational propagation has run at least once, so
    /// `values`/`ff_next` are consistent and incremental steps are sound.
    settled: bool,
    /// Cumulative number of combinational gate evaluations performed.
    evaluated: u64,
    /// Cumulative number of compiled-tape ops skipped by the dirty-span
    /// bitmap (0 under scalar strategies and full tape sweeps).
    tape_skipped: u64,
    /// Lazily built single-lane packed core backing the
    /// [`SimStrategy::CompiledTape`] and [`SimStrategy::Packed`] strategies.
    /// `None` while a scalar strategy is active (or before the first tape
    /// step); `values` is kept in sync after every tape step so `value()`
    /// and strategy switches stay sound.
    packed: Option<Box<PackedSimulator<'n>>>,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator with all nets initially low, using the default
    /// [`SimStrategy::EventDriven`] propagation.
    pub fn new(netlist: &'n Netlist) -> Self {
        Self::with_strategy(netlist, SimStrategy::default())
    }

    /// Creates a simulator with an explicit propagation strategy.
    pub fn with_strategy(netlist: &'n Netlist, strategy: SimStrategy) -> Self {
        let n = netlist.gate_count();
        let mut topo_pos = vec![u32::MAX; n];
        for (pos, &g) in netlist.topo_order().iter().enumerate() {
            // terse-analyze: allow(AZ005): topo position < gate count, which fits u32.
            topo_pos[g.index()] = pos as u32;
        }
        let seq: Vec<GateId> = netlist
            .gate_ids()
            .filter(|&g| matches!(netlist.kind(g), GateKind::FlipFlop | GateKind::Input))
            .collect();
        let ffs: Vec<GateId> = seq
            .iter()
            .copied()
            .filter(|&g| netlist.kind(g) == GateKind::FlipFlop)
            .collect();
        let mut sim = Simulator {
            netlist,
            values: vec![false; n],
            ff_next: vec![false; n],
            forced: vec![None; n],
            cycle: 0,
            strategy,
            topo_pos,
            dirty_pos: vec![0u64; netlist.topo_order().len().div_ceil(64)],
            seq,
            ffs,
            settled: false,
            evaluated: 0,
            tape_skipped: 0,
            packed: None,
        };
        // Constants drive their value from time zero.
        for id in netlist.gate_ids() {
            if let GateKind::Tie(v) = netlist.kind(id) {
                sim.values[id.index()] = v;
            }
        }
        sim
    }

    /// The propagation strategy in use.
    pub fn strategy(&self) -> SimStrategy {
        self.strategy
    }

    /// Switches the propagation strategy. Safe at any cycle boundary: the
    /// first event-driven step after construction performs one full sweep to
    /// settle initial values, after which all strategies maintain the same
    /// state invariants. Switching between the scalar and tape-backed
    /// strategies transfers the simulation state across representations.
    pub fn set_strategy(&mut self, strategy: SimStrategy) {
        // If a packed core is live, fold its state back into the scalar
        // mirror and drop it; the next tape-strategy step rebuilds it from
        // there. (Scalar-to-scalar switches find no core — a no-op.)
        if let Some(core) = self.packed.take() {
            self.settled = core.to_scalar_state(&mut self.values, &mut self.ff_next);
        }
        self.strategy = strategy;
    }

    /// Cumulative number of combinational gate evaluations across all steps —
    /// the work metric the event-driven strategy reduces.
    pub fn gates_evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Cumulative number of compiled-tape ops the dirty-span bitmap skipped
    /// — nonzero only under [`SimStrategy::Packed`]; the full-sweep
    /// [`SimStrategy::CompiledTape`] and the scalar strategies never skip.
    pub fn tape_ops_skipped(&self) -> u64 {
        self.tape_skipped
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current output value of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: GateId) -> bool {
        self.values[id.index()]
    }

    /// Reads a named bus as an integer (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    pub fn bus_value(&self, name: &str) -> crate::Result<u64> {
        let ids = self.netlist.bus(name)?;
        let mut v = 0u64;
        for (i, &g) in ids.iter().enumerate().take(64) {
            if self.value(g) {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    /// Drives a primary input. Takes effect at the next [`Simulator::step`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an [`GateKind::Input`] gate.
    pub fn set_input(&mut self, id: GateId, value: bool) {
        assert_eq!(
            self.netlist.kind(id),
            GateKind::Input,
            "set_input requires an input port"
        );
        self.forced[id.index()] = Some(value);
    }

    /// Drives a named input bus from an integer (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    ///
    /// # Panics
    ///
    /// Panics if any bus bit is not an input port.
    pub fn set_input_bus(&mut self, name: &str, value: u64) -> crate::Result<()> {
        let ids: Vec<GateId> = self.netlist.bus(name)?.to_vec();
        for (i, g) in ids.into_iter().enumerate() {
            self.set_input(g, (value >> i.min(63)) & 1 == 1 && i < 64);
        }
        Ok(())
    }

    /// Forces a flip-flop's Q output for the next cycle (overrides capture).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a flip-flop.
    pub fn force_ff(&mut self, id: GateId, value: bool) {
        assert_eq!(
            self.netlist.kind(id),
            GateKind::FlipFlop,
            "force_ff requires a flip-flop"
        );
        self.forced[id.index()] = Some(value);
    }

    /// Forces a named flip-flop bank from an integer (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    ///
    /// # Panics
    ///
    /// Panics if any bus bit is not a flip-flop.
    pub fn force_ff_bus(&mut self, name: &str, value: u64) -> crate::Result<()> {
        let ids: Vec<GateId> = self.netlist.bus(name)?.to_vec();
        for (i, g) in ids.into_iter().enumerate() {
            self.force_ff(g, i < 64 && (value >> i) & 1 == 1);
        }
        Ok(())
    }

    /// Advances one clock cycle and returns the activation set `VCD(t)`:
    /// every gate (including endpoints) whose output changed this cycle.
    ///
    /// Both strategies produce bit-identical activation sets; see
    /// [`SimStrategy`].
    pub fn step(&mut self) -> BitSet {
        match self.strategy {
            SimStrategy::FullScan => self.step_full(),
            SimStrategy::EventDriven => self.step_event(),
            SimStrategy::CompiledTape => self.step_tape(false),
            SimStrategy::Packed => self.step_tape(true),
        }
    }

    /// Tape-backed step: delegate to a single-lane [`PackedSimulator`]
    /// (built lazily from the current scalar state), then mirror toggled
    /// values back so `value()`/`bus_value()` and strategy switches stay
    /// consistent.
    fn step_tape(&mut self, event_driven: bool) -> BitSet {
        if self.packed.is_none() {
            self.packed = Some(Box::new(PackedSimulator::from_scalar_state(
                self.netlist,
                event_driven,
                &self.values,
                &self.ff_next,
                self.settled,
            )));
        }
        let mut activated = BitSet::new(self.netlist.gate_count());
        if let Some(core) = self.packed.as_mut() {
            // Hand pending forces/inputs to the core's lane 0.
            for k in 0..self.seq.len() {
                let id = self.seq[k];
                if let Some(v) = self.forced[id.index()].take() {
                    if self.netlist.kind(id) == GateKind::FlipFlop {
                        core.force_ff(id, 0, v);
                    } else {
                        core.set_input(id, 0, v);
                    }
                }
            }
            let ops_before = core.ops_executed();
            let skipped_before = core.ops_skipped();
            core.step();
            self.evaluated += core.ops_executed() - ops_before;
            self.tape_skipped += core.ops_skipped() - skipped_before;
            for &s in core.touched_slots() {
                let i = s as usize;
                if core.toggle_word(GateId::from_index(i)) & 1 == 1 {
                    activated.insert(i);
                    self.values[i] = core.value_word(GateId::from_index(i)) & 1 == 1;
                }
            }
        }
        self.cycle += 1;
        activated
    }

    /// Clock edge: flip-flop Q outputs update (captured D or forced), primary
    /// inputs take their driven values. Toggled sources are recorded in
    /// `activated` and returned for dirty-marking.
    fn clock_edge(&mut self, activated: &mut BitSet) -> Vec<GateId> {
        let mut toggled = Vec::new();
        for k in 0..self.seq.len() {
            let id = self.seq[k];
            let i = id.index();
            let new = if self.netlist.kind(id) == GateKind::FlipFlop {
                self.forced[i].take().unwrap_or(self.ff_next[i])
            } else {
                match self.forced[i].take() {
                    Some(v) => v,
                    None => continue,
                }
            };
            if new != self.values[i] {
                activated.insert(i);
                toggled.push(id);
            }
            self.values[i] = new;
        }
        toggled
    }

    /// Re-captures every flip-flop's D pin — the reference phase-3 semantics.
    /// (`Netlist::validate` rejects unconnected flip-flops, so every entry in
    /// `ffs` has a driver.)
    fn capture_all(&mut self) {
        for k in 0..self.ffs.len() {
            let i = self.ffs[k].index();
            if let Some(d) = self.netlist.ff_input[i] {
                self.ff_next[i] = self.values[d.index()];
            }
        }
    }

    /// Reference full-scan step: evaluate every combinational gate in
    /// topological order, then re-capture every D pin.
    fn step_full(&mut self) -> BitSet {
        let n = self.netlist.gate_count();
        let mut activated = BitSet::new(n);
        self.clock_edge(&mut activated);
        // Combinational propagation in topological order.
        let mut inbuf = [false; 3];
        for &g in self.netlist.topo_order() {
            let gi = g.index();
            let fanin = self.netlist.fanin(g);
            for (slot, f) in inbuf.iter_mut().zip(fanin) {
                *slot = self.values[f.index()];
            }
            self.evaluated += 1;
            let new = self.netlist.kind(g).eval(&inbuf[..fanin.len()]);
            if new != self.values[gi] {
                activated.insert(gi);
                self.values[gi] = new;
            }
        }
        self.capture_all();
        self.settled = true;
        self.cycle += 1;
        activated
    }

    /// Marks the combinational fanout of a toggled gate dirty and forwards
    /// the new value to any flip-flop D pin the gate drives. This is the
    /// event propagation rule: value changes travel only along real edges.
    fn touch_fanout(&mut self, g: GateId) {
        let nl = self.netlist;
        let v = self.values[g.index()];
        for &f in nl.fanout(g) {
            let fi = f.index();
            let pos = self.topo_pos[fi];
            if pos != u32::MAX {
                self.dirty_pos[(pos >> 6) as usize] |= 1 << (pos & 63);
            } else if nl.ff_input[fi] == Some(g) {
                // D-input edge: maintain the captured value incrementally.
                self.ff_next[fi] = v;
            }
        }
    }

    /// Event-driven step. The very first step performs one full sweep (the
    /// all-low initial state is not a fixed point of the netlist functions —
    /// e.g. `NAND(0,0) = 1` — and the reference records that settlement as
    /// cycle-1 activity); afterwards only gates downstream of an actual
    /// toggle are re-evaluated, which provably yields the same activation
    /// sets: a gate none of whose fan-ins changed cannot change output.
    fn step_event(&mut self) -> BitSet {
        let n = self.netlist.gate_count();
        let mut activated = BitSet::new(n);
        let toggled = self.clock_edge(&mut activated);
        let first = !self.settled;
        let topo_len = self.netlist.topo_order().len();
        if first {
            for w in &mut self.dirty_pos {
                *w = u64::MAX;
            }
            let tail = topo_len % 64;
            if tail != 0 {
                if let Some(last) = self.dirty_pos.last_mut() {
                    *last = (1u64 << tail) - 1;
                }
            }
        } else {
            for g in toggled {
                self.touch_fanout(g);
            }
        }
        // Drain the dirty bitmap in increasing topological position (lowest
        // set bit of the lowest non-zero word). Event insertions land at
        // strictly larger positions than the gate being evaluated — same
        // word, higher bit, or a later word — so re-reading the current word
        // after each evaluation sees them and each gate runs at most once per
        // cycle, after all its fan-ins settled.
        let mut inbuf = [false; 3];
        let mut wi = 0;
        while wi < self.dirty_pos.len() {
            let w = self.dirty_pos[wi];
            if w == 0 {
                wi += 1;
                continue;
            }
            self.dirty_pos[wi] = w & (w - 1); // clear the lowest set bit
            let pos = (wi << 6) + w.trailing_zeros() as usize;
            let g = self.netlist.topo_order()[pos];
            let gi = g.index();
            let fanin = self.netlist.fanin(g);
            for (slot, f) in inbuf.iter_mut().zip(fanin) {
                *slot = self.values[f.index()];
            }
            self.evaluated += 1;
            let new = self.netlist.kind(g).eval(&inbuf[..fanin.len()]);
            if new != self.values[gi] {
                activated.insert(gi);
                self.values[gi] = new;
                self.touch_fanout(g);
            }
        }
        if first {
            // Establish the `ff_next == values[D]` invariant that incremental
            // D-edge forwarding maintains from now on.
            self.capture_all();
            self.settled = true;
        }
        self.cycle += 1;
        activated
    }

    /// Runs `cycles` steps, collecting the activity trace.
    pub fn run(&mut self, cycles: usize) -> ActivityTrace {
        let mut trace = ActivityTrace::new(self.netlist.gate_count());
        for _ in 0..cycles {
            let act = self.step();
            trace.push(act);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::netlist::EndpointClass;

    /// 2-bit counter: q0 toggles every cycle, q1 toggles when q0 is 1.
    fn counter() -> Netlist {
        let mut b = NetlistBuilder::new(1);
        let q0 = b.flip_flop("q0", EndpointClass::Control, 0).unwrap();
        let q1 = b.flip_flop("q1", EndpointClass::Control, 0).unwrap();
        let n0 = b.gate(GateKind::Not, &[q0], 0).unwrap();
        let t1 = b.gate(GateKind::Xor, &[q1, q0], 0).unwrap();
        b.connect_ff_input(q0, n0).unwrap();
        b.connect_ff_input(q1, t1).unwrap();
        b.name_bus("count", &[q0, q1]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let mut seen = Vec::new();
        for _ in 0..5 {
            sim.step();
            seen.push(sim.bus_value("count").unwrap());
        }
        // Cycle 1: Q still 00 (capture of initial comb values happens at the
        // end of cycle 0's step); sequence settles into 0,1,2,3,0...
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn activation_reflects_toggles() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let q0 = n.bus("q0").unwrap()[0];
        let q1 = n.bus("q1").unwrap()[0];
        sim.step(); // count 0 -> comb set up
        let a2 = sim.step(); // count becomes 1: q0 toggles, q1 stays
        assert!(a2.contains(q0.index()));
        assert!(!a2.contains(q1.index()));
        let a3 = sim.step(); // count becomes 2: both toggle
        assert!(a3.contains(q0.index()));
        assert!(a3.contains(q1.index()));
    }

    #[test]
    fn forcing_overrides_capture() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let q0 = n.bus("q0").unwrap()[0];
        sim.step();
        sim.force_ff(q0, false); // hold q0 at 0 regardless of its D pin
        sim.step();
        assert!(!sim.value(q0));
    }

    #[test]
    fn input_driving() {
        let mut b = NetlistBuilder::new(1);
        let xs = b.input_bus("x", 8, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, xs[0]).unwrap();
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n);
        sim.set_input_bus("x", 0xA5).unwrap();
        sim.step();
        assert_eq!(sim.bus_value("x").unwrap(), 0xA5);
        // Unchanged inputs do not activate on the next cycle.
        let act = sim.step();
        for &g in n.bus("x").unwrap() {
            assert!(!act.contains(g.index()));
        }
    }

    #[test]
    fn run_collects_trace() {
        let n = counter();
        let mut sim = Simulator::new(&n);
        let trace = sim.run(8);
        assert_eq!(trace.len(), 8);
        assert_eq!(sim.cycle(), 8);
        // q0 toggles every cycle from cycle 1 onward.
        let q0 = n.bus("q0").unwrap()[0];
        let toggles = (1..8)
            .filter(|&t| trace.cycle(t).contains(q0.index()))
            .count();
        assert_eq!(toggles, 7);
    }

    #[test]
    fn event_driven_matches_full_scan_on_counter() {
        let n = counter();
        let mut full = Simulator::with_strategy(&n, SimStrategy::FullScan);
        let mut event = Simulator::with_strategy(&n, SimStrategy::EventDriven);
        for cycle in 0..16 {
            let af = full.step();
            let ae = event.step();
            assert_eq!(af, ae, "activation sets diverged at cycle {cycle}");
            for g in n.gate_ids() {
                assert_eq!(full.value(g), event.value(g), "values diverged at {cycle}");
            }
        }
        // Event-driven does strictly less evaluation work after settling.
        assert!(event.gates_evaluated() <= full.gates_evaluated());
    }

    #[test]
    fn event_driven_matches_full_scan_with_inputs_and_forcing() {
        let mut b = NetlistBuilder::new(1);
        let xs = b.input_bus("x", 4, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        let ctl = b.flip_flop("c", EndpointClass::Control, 0).unwrap();
        let x01 = b.gate(GateKind::Nand, &[xs[0], xs[1]], 0).unwrap();
        let x23 = b.gate(GateKind::Xor, &[xs[2], xs[3]], 0).unwrap();
        let mix = b.gate(GateKind::Or, &[x01, ctl], 0).unwrap();
        let out = b.gate(GateKind::And, &[mix, x23], 0).unwrap();
        b.connect_ff_input(ff, out).unwrap();
        b.connect_ff_input(ctl, x01).unwrap();
        let n = b.finish().unwrap();

        let mut full = Simulator::with_strategy(&n, SimStrategy::FullScan);
        let mut event = Simulator::with_strategy(&n, SimStrategy::EventDriven);
        // Deterministic pseudo-random stimulus, including forced banks.
        let mut state = 0x1234_5678_u64;
        for cycle in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = state >> 33;
            full.set_input_bus("x", v & 0xF).unwrap();
            event.set_input_bus("x", v & 0xF).unwrap();
            if v & 0x10 != 0 {
                full.force_ff(ff, v & 0x20 != 0);
                event.force_ff(ff, v & 0x20 != 0);
            }
            let af = full.step();
            let ae = event.step();
            assert_eq!(af, ae, "activation sets diverged at cycle {cycle}");
        }
        assert!(event.gates_evaluated() < full.gates_evaluated());
    }

    const ALL_STRATEGIES: [SimStrategy; 4] = [
        SimStrategy::FullScan,
        SimStrategy::EventDriven,
        SimStrategy::CompiledTape,
        SimStrategy::Packed,
    ];

    #[test]
    fn all_strategies_agree_under_random_stimulus() {
        let mut b = NetlistBuilder::new(1);
        let xs = b.input_bus("x", 4, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        let ctl = b.flip_flop("c", EndpointClass::Control, 0).unwrap();
        let x01 = b.gate(GateKind::Nand, &[xs[0], xs[1]], 0).unwrap();
        let x23 = b.gate(GateKind::Xor, &[xs[2], xs[3]], 0).unwrap();
        let sel = b.gate(GateKind::Mux, &[ctl, x01, x23], 0).unwrap();
        let out = b.gate(GateKind::And, &[sel, x23], 0).unwrap();
        b.connect_ff_input(ff, out).unwrap();
        b.connect_ff_input(ctl, x01).unwrap();
        let n = b.finish().unwrap();

        let mut sims: Vec<Simulator> = ALL_STRATEGIES
            .iter()
            .map(|&s| Simulator::with_strategy(&n, s))
            .collect();
        let mut state = 0x0DDB_1A5E_u64;
        for cycle in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = state >> 33;
            for sim in &mut sims {
                sim.set_input_bus("x", v & 0xF).unwrap();
                if v & 0x10 != 0 {
                    sim.force_ff(ff, v & 0x20 != 0);
                }
            }
            let acts: Vec<BitSet> = sims.iter_mut().map(Simulator::step).collect();
            for (k, a) in acts.iter().enumerate().skip(1) {
                assert_eq!(
                    *a, acts[0],
                    "{:?} diverged from FullScan at cycle {cycle}",
                    ALL_STRATEGIES[k]
                );
            }
            for g in n.gate_ids() {
                for (k, sim) in sims.iter().enumerate().skip(1) {
                    assert_eq!(
                        sim.value(g),
                        sims[0].value(g),
                        "{:?} value diverged at cycle {cycle}",
                        ALL_STRATEGIES[k]
                    );
                }
            }
        }
        // Tape full sweep does exactly FullScan's evaluation count; the
        // packed event mode does no more than the tape sweep.
        assert_eq!(sims[2].gates_evaluated(), sims[0].gates_evaluated());
        assert!(sims[3].gates_evaluated() <= sims[2].gates_evaluated());
    }

    #[test]
    fn strategy_switch_into_and_out_of_tape_preserves_state() {
        let n = counter();
        let mut reference = Simulator::with_strategy(&n, SimStrategy::FullScan);
        let mut switching = Simulator::with_strategy(&n, SimStrategy::EventDriven);
        let schedule = [
            SimStrategy::EventDriven,
            SimStrategy::Packed,
            SimStrategy::Packed,
            SimStrategy::CompiledTape,
            SimStrategy::FullScan,
            SimStrategy::Packed,
            SimStrategy::EventDriven,
            SimStrategy::CompiledTape,
        ];
        for (cycle, &s) in schedule.iter().enumerate() {
            switching.set_strategy(s);
            let act_ref = reference.step();
            let act_sw = switching.step();
            assert_eq!(
                act_ref, act_sw,
                "activation diverged at cycle {cycle} ({s:?})"
            );
            assert_eq!(
                reference.bus_value("count").unwrap(),
                switching.bus_value("count").unwrap(),
                "count diverged at cycle {cycle} ({s:?})"
            );
        }
    }

    #[test]
    fn first_event_step_settles_constants() {
        // NAND of all-low inputs is 1: the reference full scan records that
        // settlement toggle in cycle 1, so event-driven must too.
        let mut b = NetlistBuilder::new(1);
        let x = b.input("x", 0).unwrap();
        let one = b.tie(true, 0).unwrap();
        let g = b.gate(GateKind::Nand, &[x, one], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Control, 0).unwrap();
        b.connect_ff_input(ff, g).unwrap();
        let n = b.finish().unwrap();
        let mut full = Simulator::with_strategy(&n, SimStrategy::FullScan);
        let mut event = Simulator::with_strategy(&n, SimStrategy::EventDriven);
        for _ in 0..4 {
            assert_eq!(full.step(), event.step());
            assert_eq!(full.value(ff), event.value(ff));
        }
        assert!(event.value(ff)); // captured NAND(0,1)=1 through the tie path
    }

    #[test]
    fn tie_cells_hold_value() {
        let mut b = NetlistBuilder::new(1);
        let one = b.tie(true, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Control, 0).unwrap();
        b.connect_ff_input(ff, one).unwrap();
        let n = b.finish().unwrap();
        let mut sim = Simulator::new(&n);
        assert!(sim.value(one));
        sim.step();
        sim.step();
        assert!(sim.value(ff)); // captured the constant
    }
}
