//! Shared activation-signature helpers.
//!
//! Two subsystems fingerprint cone-masked toggle sets: the stage-DTS memo
//! cache in `terse_dta` (which keys memo entries on `VCD(t) ∧ cone(s)`) and
//! the phase-sampling windowing pass in `terse_sim` (which summarizes each
//! trace window by the masked toggle signatures of its instructions). Both
//! must agree on what a "signature" is, so the definitions live here, next
//! to [`BitSet::fingerprint`] — the content hash they are built from.
//!
//! All helpers are pure functions of set *content*: insertion order, thread
//! count and platform do not affect them, which is what lets signatures
//! participate in bitwise-deterministic caches and clusterings.

use crate::bitset::{mix, BitSet};

/// The full 64-bit signature of a toggle set — [`BitSet::fingerprint`] under
/// its public name.
pub fn toggle_signature(toggles: &BitSet) -> u64 {
    toggles.fingerprint()
}

/// The signature of `toggles ∧ cone` without materializing the intersection
/// — the quantity the DTS memo cache and the window fingerprints share: a
/// stage (or stage proxy) only observes the toggles inside its fan-in cone,
/// so two cycles that differ only outside the cone must signature equal.
///
/// # Panics
///
/// Panics if capacities differ.
pub fn masked_toggle_signature(toggles: &BitSet, cone: &BitSet) -> u64 {
    toggles.masked_fingerprint(cone)
}

/// Truncates a signature to `sig_mask` — the collision-pressure test hook
/// used by the DTS cache (`sig_mask == u64::MAX` in production).
pub fn truncated(sig: u64, sig_mask: u64) -> u64 {
    sig & sig_mask
}

/// Order-insensitively folds one per-cycle signature into a window-level
/// accumulator: windows are *multisets* of cycle signatures, and the
/// accumulator must not depend on how work was sharded, so the combination
/// is a commutative sum of mixed terms (the position argument `i` keeps a
/// window of `n` identical cycles distinct from one of `n` different cycles
/// that happen to collide additively).
pub fn combine(acc: u64, sig: u64) -> u64 {
    acc.wrapping_add(mix(sig))
}

/// Maps a signature to one of `buckets` histogram bins (used by the window
/// feature vectors: a hashed histogram of masked signatures approximates
/// the distribution of toggle patterns a window exposes to each cone).
pub fn bucket(sig: u64, buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    (mix(sig) % buckets.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(capacity: usize, bits: &[usize]) -> BitSet {
        let mut s = BitSet::new(capacity);
        for &b in bits {
            s.insert(b);
        }
        s
    }

    #[test]
    fn full_mask_is_identity() {
        let s = set_of(128, &[0, 3, 64, 127]);
        let full = {
            let mut m = BitSet::new(128);
            for i in 0..128 {
                m.insert(i);
            }
            m
        };
        assert_eq!(masked_toggle_signature(&s, &full), toggle_signature(&s));
        assert_eq!(
            truncated(toggle_signature(&s), u64::MAX),
            toggle_signature(&s)
        );
    }

    #[test]
    fn empty_cone_collapses_everything() {
        // An empty cone observes nothing: every toggle set signatures like
        // the empty set — the degenerate case a stage with no fan-in hits.
        let empty_cone = BitSet::new(128);
        let empty = BitSet::new(128);
        for bits in [&[0usize][..], &[5, 9], &[64], &[0, 127]] {
            let s = set_of(128, bits);
            assert_eq!(
                masked_toggle_signature(&s, &empty_cone),
                toggle_signature(&empty),
                "bits {bits:?}"
            );
        }
    }

    #[test]
    fn single_toggle_windows_are_distinct() {
        // Every 1-bit toggle set inside the cone gets its own signature —
        // single-toggle windows (the smallest non-trivial windows the phase
        // sampler can see) must not alias each other or the quiet window.
        let cone = {
            let mut m = BitSet::new(128);
            for i in 0..128 {
                m.insert(i);
            }
            m
        };
        let mut seen = std::collections::HashSet::new();
        seen.insert(toggle_signature(&BitSet::new(128)));
        for i in 0..128 {
            let s = set_of(128, &[i]);
            assert!(
                seen.insert(masked_toggle_signature(&s, &cone)),
                "single-toggle signature collision at bit {i}"
            );
        }
    }

    #[test]
    fn masking_ignores_out_of_cone_toggles() {
        let cone = set_of(128, &[0, 1, 2, 3]);
        let a = set_of(128, &[1, 90]);
        let b = set_of(128, &[1, 64, 127]);
        let c = set_of(128, &[2]);
        assert_eq!(
            masked_toggle_signature(&a, &cone),
            masked_toggle_signature(&b, &cone)
        );
        assert_ne!(
            masked_toggle_signature(&a, &cone),
            masked_toggle_signature(&c, &cone)
        );
    }

    #[test]
    fn from_words_matches_insertion() {
        let mut by_insert = BitSet::new(100);
        for i in [0usize, 7, 63, 64, 99] {
            by_insert.insert(i);
        }
        let words = [1 | 1 << 7 | 1 << 63, 1 | 1 << 35];
        let by_words = BitSet::from_words(&words, 100);
        assert_eq!(by_insert, by_words);
        assert_eq!(toggle_signature(&by_insert), toggle_signature(&by_words));
        // Bits past the capacity are cleared, not kept as hidden state.
        let ragged = BitSet::from_words(&[u64::MAX, u64::MAX], 70);
        assert_eq!(ragged.count(), 70);
    }

    #[test]
    fn combine_is_order_insensitive() {
        let sigs = [3u64, 99, 3, 0xDEAD];
        let fwd = sigs.iter().fold(0u64, |a, &s| combine(a, s));
        let rev = sigs.iter().rev().fold(0u64, |a, &s| combine(a, s));
        assert_eq!(fwd, rev);
        // ... but multiplicity matters.
        let twice = combine(combine(0, 3), 3);
        let once = combine(0, 3);
        assert_ne!(twice, once);
    }

    #[test]
    fn bucket_in_range() {
        for sig in [0u64, 1, u64::MAX, 0x1234_5678] {
            assert!(bucket(sig, 16) < 16);
            assert_eq!(bucket(sig, 1), 0);
        }
    }
}
