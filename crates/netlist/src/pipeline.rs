//! The 6-stage in-order integer pipeline netlist — the LEON3 substitute.
//!
//! The paper evaluates the integer unit of LEON3 (SPARC V8, in-order) after
//! synthesis on 45 nm TSMC. We cannot run that flow, so this module builds a
//! comparable gate-level pipeline from the structural generators of
//! [`crate::circuits`]:
//!
//! | stage | name | logic | capturing endpoints |
//! |---|---|---|---|
//! | 0 | IF | PC incrementer, redirect mux, fetch control cloud | `b1.pc` `b1.instr` `b1.fctl` (+ `b0.pc` loop) |
//! | 1 | ID | opcode one-hot decoder, decode qualifier cloud, immediate sign-extend | `b2.*` |
//! | 2 | RA | bypass/forwarding muxes, forward-match comparators | `b3.*` |
//! | 3 | EX | adder/subtractor, logic unit, barrel shifter, array multiplier, branch compare | `b4.*` |
//! | 4 | ME | load aligner, address-decode cloud, result mux | `b5.*` |
//! | 5 | WB | writeback mux/buffers, commit control cloud | `b6.*` |
//!
//! Endpoints are classified per the paper's Section 4: operand/result/address
//! registers are *data* endpoints; PC, instruction, decode and control-signal
//! registers are *control* endpoints.
//!
//! The pipeline is driven by co-simulation (see `terse-sim`): the
//! architectural simulator forces the stage input banks and external ports
//! (instruction word, register file reads, load data) with real program
//! values each cycle, and the combinational clouds compute — so activation
//! (`VCD`) and therefore dynamic timing slack genuinely depend on operand
//! values and instruction sequence.

use crate::builder::NetlistBuilder;
use crate::circuits::{
    array_multiplier_low, barrel_shifter, decoder, equality, logic_unit, mux2_bus, mux_tree,
    random_cloud, ripple_carry_adder, zero_detect,
};
use crate::gate::{GateId, GateKind};
use crate::netlist::{EndpointClass, Netlist};
use crate::Result;

/// Configuration of the synthetic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Datapath width in bits. The default (and the only width the
    /// co-simulator drives) is 32; tests use narrower pipelines for speed.
    pub width: usize,
    /// Multiplier operand width (low-product array); defaults to `width`.
    pub mul_width: usize,
    /// Gate count of each control cloud (scaled per stage).
    pub cloud_gates: usize,
    /// Seed for the pseudo-random control clouds.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            width: 32,
            // LEON3's multiplier is a multi-cycle/pipelined unit that does
            // not dominate single-cycle timing; modeling it at half operand
            // width keeps the adder (whose carry chains every program
            // exercises) the critical single-cycle unit, as in a
            // synthesis-balanced design.
            mul_width: 16,
            cloud_gates: 300,
            seed: 0xDAC1_9001,
        }
    }
}

impl PipelineConfig {
    /// A small pipeline for fast unit tests (8-bit datapath, small clouds).
    pub fn small() -> Self {
        PipelineConfig {
            width: 8,
            mul_width: 8,
            cloud_gates: 60,
            seed: 0xDAC1_9001,
        }
    }
}

/// Number of pipeline stages (fixed at 6, matching the paper's 6-stage
/// LEON3 integer pipeline and its 24-cycle replay penalty).
pub const STAGE_COUNT: usize = 6;

/// The built pipeline netlist plus its configuration.
///
/// # Example
/// ```
/// use terse_netlist::pipeline::{PipelineConfig, PipelineNetlist};
///
/// # fn main() -> Result<(), terse_netlist::NetlistError> {
/// let p = PipelineNetlist::build(PipelineConfig::small())?;
/// assert_eq!(p.netlist().stage_count(), 6);
/// // Every stage has capturing endpoints.
/// for s in 0..6 {
///     assert!(!p.netlist().endpoints(s)?.is_empty());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PipelineNetlist {
    netlist: Netlist,
    config: PipelineConfig,
}

impl PipelineNetlist {
    /// Builds the pipeline netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::NetlistError`] from construction (cannot occur
    /// for a valid configuration; surfaced for API honesty).
    ///
    /// # Panics
    ///
    /// Panics if `config.width` is 0 or `config.mul_width > config.width`.
    pub fn build(config: PipelineConfig) -> Result<Self> {
        assert!(config.width > 0, "pipeline width must be positive");
        assert!(
            config.mul_width <= config.width && config.mul_width > 0,
            "mul_width must be in 1..=width"
        );
        let w = config.width;
        let mut b = NetlistBuilder::new(STAGE_COUNT);
        let seed = config.seed;

        // ----- Stage 0: IF ------------------------------------------------
        b.set_region(0.00, 0.0, 0.15, 1.0);
        let b0_pc = b.flip_flop_bus("b0.pc", w, EndpointClass::Control, 0)?;
        let imem = b.input_bus("imem.instr", w, 0)?;
        let redirect_taken = b.input("redirect.taken", 0)?;
        let redirect_tgt = b.input_bus("redirect.target", w, 0)?;
        // PC + 4 (ripple incrementer adding the constant 4).
        let (pc4, _c) = {
            let zero = b.tie(false, 0)?;
            let one = b.tie(true, 0)?;
            let mut four = vec![zero; w];
            if w > 2 {
                four[2] = one;
            }
            ripple_carry_adder(&mut b, 0, &b0_pc, &four, zero)?
        };
        let pc_next = mux2_bus(&mut b, 0, redirect_taken, &pc4, &redirect_tgt)?;
        for (ff, d) in b0_pc.iter().zip(&pc_next) {
            b.connect_ff_input(*ff, *d)?;
        }
        // Fetch control cloud over PC and redirect bits.
        let mut fetch_ins = b0_pc.clone();
        fetch_ins.push(redirect_taken);
        let fctl = random_cloud(
            &mut b,
            0,
            &fetch_ins,
            config.cloud_gates / 2,
            8,
            seed ^ 0xF0,
        )?;
        // Instruction path: gated by a fetch-valid qualifier.
        let valid = fctl[0];
        let instr_gated: Vec<GateId> = imem
            .iter()
            .map(|&i| b.gate(GateKind::And, &[i, valid], 0))
            .collect::<Result<_>>()?;
        connect_bank(&mut b, "b1.pc", &pc4, EndpointClass::Control, 0)?;
        connect_bank(&mut b, "b1.instr", &instr_gated, EndpointClass::Control, 0)?;
        connect_bank(&mut b, "b1.fctl", &fctl, EndpointClass::Control, 0)?;

        // ----- Stage 1: ID ------------------------------------------------
        b.set_region(0.17, 0.0, 0.32, 1.0);
        let b1_instr: Vec<GateId> = b.bus_ids("b1.instr");
        let b1_pc: Vec<GateId> = b.bus_ids("b1.pc");
        // Opcode = top 6 bits (or the whole word for narrow test widths).
        let opc_bits = 6.min(w);
        let opcode: Vec<GateId> = b1_instr[w - opc_bits..].to_vec();
        let onehot = decoder(&mut b, 1, &opcode)?;
        // Decode qualifier cloud over the one-hot lines and low instr bits.
        let mut dec_ins = onehot.clone();
        dec_ins.extend_from_slice(&b1_instr[..w.min(8)]);
        let op_ctl = random_cloud(&mut b, 1, &dec_ins, config.cloud_gates, 16, seed ^ 0xD1)?;
        // Immediate: sign-extend the low half of the instruction word.
        let imm_lo = w / 2;
        let sign = b1_instr[imm_lo.saturating_sub(1).min(w - 1)];
        let mut imm = Vec::with_capacity(w);
        for &bit in b1_instr.iter().take(imm_lo) {
            imm.push(b.gate(GateKind::Buf, &[bit], 1)?);
        }
        while imm.len() < w {
            imm.push(b.gate(GateKind::Buf, &[sign], 1)?);
        }
        // Register indices (5-bit fields, wrapped for narrow widths).
        let idx_w = 5.min(w);
        let rs1: Vec<GateId> = buf_bus(&mut b, 1, &b1_instr[..idx_w])?;
        let rs2: Vec<GateId> = buf_bus(&mut b, 1, &b1_instr[w - idx_w..])?;
        let rd: Vec<GateId> = buf_bus(
            &mut b,
            1,
            &b1_instr[(w / 2).saturating_sub(idx_w)..][..idx_w],
        )?;
        let pc_fwd = buf_bus(&mut b, 1, &b1_pc)?;
        // Serial decode-qualifier chain (priority/parity style) — the long
        // control-network path real decoders have. Its *activated* depth is
        // the highest position where the running parity of consecutive
        // instruction words differs cycle-to-cycle, so the control DTS of a
        // basic block genuinely depends on its instruction sequence and
        // entry edge (Section 4's per-block, per-edge characterization).
        // A fan of staggered-depth qualifier chains: each is headed by a
        // different instruction bit and mixes a few live bits early (so its
        // activation depends on the block's instruction sequence) before
        // running through quasi-static high-PC taps (so a surviving toggle
        // propagates to full depth). Depths straddle the band just below
        // the EX critical path: per block, a *subset* of chains activates
        // deeply, which is what makes control DTS a smooth per-block,
        // per-edge quantity rather than an all-or-nothing cliff.
        let n_chains = 16.min(2 * w);
        let base_len = w + w / 4; // 40 at the 32-bit width
        let mut qchain = Vec::with_capacity(n_chains);
        for k in 0..n_chains {
            let chain_len = base_len + k;
            let mut qs = b1_instr[(k * 5 + 1) % w];
            for i in 1..chain_len {
                let tap = if i < 10 {
                    b1_instr[(k * 3 + i * 2) % w]
                } else {
                    b1_pc[(w - 1) - ((i + k) % (w / 2))]
                };
                qs = b.gate(GateKind::Xor, &[qs, tap], 1)?;
            }
            qchain.push(qs);
        }
        connect_bank(&mut b, "b2.qchain", &qchain, EndpointClass::Control, 1)?;
        connect_bank(&mut b, "b2.op_ctl", &op_ctl, EndpointClass::Control, 1)?;
        connect_bank(&mut b, "b2.imm", &imm, EndpointClass::Data, 1)?;
        connect_bank(&mut b, "b2.rs1", &rs1, EndpointClass::Control, 1)?;
        connect_bank(&mut b, "b2.rs2", &rs2, EndpointClass::Control, 1)?;
        connect_bank(&mut b, "b2.rd", &rd, EndpointClass::Control, 1)?;
        connect_bank(&mut b, "b2.pc", &pc_fwd, EndpointClass::Control, 1)?;

        // ----- Stage 2: RA (operand select / bypass) -----------------------
        b.set_region(0.34, 0.0, 0.49, 1.0);
        let rf_rs1 = b.input_bus("rf.rs1_data", w, 2)?;
        let rf_rs2 = b.input_bus("rf.rs2_data", w, 2)?;
        let byp_ex = b.input_bus("bypass.ex", w, 2)?;
        let byp_me = b.input_bus("bypass.me", w, 2)?;
        let ex_rd = b.input_bus("fwd.ex_rd", 5.min(w), 2)?;
        let me_rd = b.input_bus("fwd.me_rd", 5.min(w), 2)?;
        let b2_rs1 = b.bus_ids("b2.rs1");
        let b2_rs2 = b.bus_ids("b2.rs2");
        let b2_imm = b.bus_ids("b2.imm");
        let b2_ctl = b.bus_ids("b2.op_ctl");
        // Forward-match comparators (control logic).
        let m_ex1 = equality(&mut b, 2, &b2_rs1, &ex_rd)?;
        let m_me1 = equality(&mut b, 2, &b2_rs1, &me_rd)?;
        let m_ex2 = equality(&mut b, 2, &b2_rs2, &ex_rd)?;
        let m_me2 = equality(&mut b, 2, &b2_rs2, &me_rd)?;
        // Operand A: rf / bypass.ex / bypass.me / rf (mux tree on matches).
        let op_a = mux_tree(
            &mut b,
            2,
            &[m_ex1, m_me1],
            &[
                rf_rs1.clone(),
                byp_ex.clone(),
                byp_me.clone(),
                rf_rs1.clone(),
            ],
        )?;
        // Operand B: (rf/bypass as A) then imm-select on a decode control.
        let op_b_fwd = mux_tree(
            &mut b,
            2,
            &[m_ex2, m_me2],
            &[
                rf_rs2.clone(),
                byp_ex.clone(),
                byp_me.clone(),
                rf_rs2.clone(),
            ],
        )?;
        let use_imm = b2_ctl[0];
        let op_b = mux2_bus(&mut b, 2, use_imm, &op_b_fwd, &b2_imm)?;
        let store_data = buf_bus(&mut b, 2, &op_b_fwd)?;
        let mut ra_ins = vec![m_ex1, m_me1, m_ex2, m_me2];
        ra_ins.extend_from_slice(&b2_ctl);
        let ex_ctl = random_cloud(&mut b, 2, &ra_ins, config.cloud_gates / 2, 12, seed ^ 0xA2)?;
        connect_bank(&mut b, "b3.op_a", &op_a, EndpointClass::Data, 2)?;
        connect_bank(&mut b, "b3.op_b", &op_b, EndpointClass::Data, 2)?;
        connect_bank(&mut b, "b3.store", &store_data, EndpointClass::Data, 2)?;
        connect_bank(&mut b, "b3.ex_ctl", &ex_ctl, EndpointClass::Control, 2)?;

        // ----- Stage 3: EX -------------------------------------------------
        let b3_a = b.bus_ids("b3.op_a");
        let b3_b = b.bus_ids("b3.op_b");
        let b3_store = b.bus_ids("b3.store");
        let b3_ctl = b.bus_ids("b3.ex_ctl");
        // ALU control lines come from the forced control bank.
        let sub_en = b3_ctl[1];
        let lu_op0 = b3_ctl[2];
        let lu_op1 = b3_ctl[3];
        let sh_right = b3_ctl[4];
        let sh_arith = b3_ctl[5];
        let sel0 = b3_ctl[6];
        let sel1 = b3_ctl[7];
        // Adder/subtractor (XOR-conditioned B, carry-in = sub).
        b.set_region(0.51, 0.00, 0.66, 0.30);
        let bx: Vec<GateId> = b3_b
            .iter()
            .map(|&x| b.gate(GateKind::Xor, &[x, sub_en], 3))
            .collect::<Result<_>>()?;
        let (addsub, cout) = ripple_carry_adder(&mut b, 3, &b3_a, &bx, sub_en)?;
        // Logic unit.
        b.set_region(0.51, 0.32, 0.66, 0.50);
        let logic = logic_unit(&mut b, 3, &b3_a, &b3_b, lu_op0, lu_op1)?;
        // Shifter (amount = low bits of B).
        b.set_region(0.51, 0.52, 0.66, 0.70);
        let sh_bits = (usize::BITS as usize - (w - 1).leading_zeros() as usize).max(1);
        let shift = barrel_shifter(&mut b, 3, &b3_a, &b3_b[..sh_bits], sh_right, sh_arith)?;
        // Multiplier (low product over the configured operand width).
        b.set_region(0.51, 0.72, 0.66, 1.00);
        let mw = config.mul_width;
        let prod_lo = array_multiplier_low(&mut b, 3, &b3_a[..mw], &b3_b[..mw])?;
        let mut product = prod_lo;
        let zero3 = b.tie(false, 3)?;
        while product.len() < w {
            product.push(zero3);
        }
        // Result select.
        b.set_region(0.51, 0.30, 0.66, 0.55);
        let alu = mux_tree(
            &mut b,
            3,
            &[sel0, sel1],
            &[addsub.clone(), logic, shift, product],
        )?;
        // Branch condition flags: zero/negative/carry. Condition codes are
        // *data* endpoints per the paper's Section 4 classification ("the
        // set of data endpoints includes endpoints that hold the operands
        // and results of instructions, including condition codes").
        let is_zero = zero_detect(&mut b, 3, &addsub)?;
        let neg = addsub[addsub.len() - 1]; // datapath width is fixed and > 0
        let brctl = [is_zero, neg, cout];
        let addr = buf_bus(&mut b, 3, &addsub)?;
        let store_fwd = buf_bus(&mut b, 3, &b3_store)?;
        connect_bank(&mut b, "b4.alu", &alu, EndpointClass::Data, 3)?;
        connect_bank(&mut b, "b4.addr", &addr, EndpointClass::Data, 3)?;
        connect_bank(&mut b, "b4.store", &store_fwd, EndpointClass::Data, 3)?;
        connect_bank(&mut b, "b4.br", &brctl, EndpointClass::Data, 3)?;
        let mctl_in: Vec<GateId> = b3_ctl.to_vec();
        let mctl = random_cloud(&mut b, 3, &mctl_in, config.cloud_gates / 3, 8, seed ^ 0xE3)?;
        connect_bank(&mut b, "b4.mctl", &mctl, EndpointClass::Control, 3)?;

        // ----- Stage 4: ME ---------------------------------------------------
        b.set_region(0.68, 0.0, 0.83, 1.0);
        let dmem = b.input_bus("dmem.rdata", w, 4)?;
        let b4_alu = b.bus_ids("b4.alu");
        let b4_addr = b.bus_ids("b4.addr");
        let b4_mctl = b.bus_ids("b4.mctl");
        // Load aligner: shift read data right by 8·addr[0..2] (byte select).
        let zero4 = b.tie(false, 4)?;
        let mut amt = vec![zero4; 3.min(w.max(4) - 1)];
        // amount bits [3]=addr0, [4]=addr1 → shift of 8/16/24 for w=32;
        // narrow test pipelines just shift by addr0.
        if w >= 32 {
            amt = vec![zero4, zero4, zero4, b4_addr[0], b4_addr[1]];
        } else if w >= 4 {
            amt = vec![zero4, b4_addr[0]];
        }
        let one4 = b.tie(true, 4)?;
        let aligned = barrel_shifter(&mut b, 4, &dmem, &amt, one4, zero4)?;
        let is_load = b4_mctl[0];
        let wb_data = mux2_bus(&mut b, 4, is_load, &b4_alu, &aligned)?;
        let mut me_ins = b4_addr.clone();
        me_ins.extend_from_slice(&b4_mctl);
        let wctl = random_cloud(&mut b, 4, &me_ins, config.cloud_gates / 3, 6, seed ^ 0xB4)?;
        connect_bank(&mut b, "b5.wb", &wb_data, EndpointClass::Data, 4)?;
        connect_bank(&mut b, "b5.wctl", &wctl, EndpointClass::Control, 4)?;

        // ----- Stage 5: WB ---------------------------------------------------
        b.set_region(0.85, 0.0, 1.00, 1.0);
        let b5_wb = b.bus_ids("b5.wb");
        let b5_wctl = b.bus_ids("b5.wctl");
        let commit = b5_wctl[0];
        let result: Vec<GateId> = b5_wb
            .iter()
            .map(|&x| b.gate(GateKind::And, &[x, commit], 5))
            .collect::<Result<_>>()?;
        let cctl = random_cloud(&mut b, 5, &b5_wctl, config.cloud_gates / 4, 4, seed ^ 0xC5)?;
        connect_bank(&mut b, "b6.result", &result, EndpointClass::Data, 5)?;
        connect_bank(&mut b, "b6.cctl", &cctl, EndpointClass::Control, 5)?;

        let netlist = b.finish()?;
        Ok(PipelineNetlist { netlist, config })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The configuration the pipeline was built with.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Names of the flip-flop banks that co-simulation forces each cycle,
    /// stage by stage (stage input banks).
    pub fn forced_banks() -> &'static [&'static str] {
        &[
            "b0.pc",
            "b1.pc",
            "b1.instr",
            "b1.fctl",
            "b2.op_ctl",
            "b2.imm",
            "b2.rs1",
            "b2.rs2",
            "b2.rd",
            "b2.pc",
            "b3.op_a",
            "b3.op_b",
            "b3.store",
            "b3.ex_ctl",
            "b4.alu",
            "b4.addr",
            "b4.store",
            "b4.br",
            "b4.mctl",
            "b5.wb",
            "b5.wctl",
        ]
    }

    /// Names of the primary-input ports co-simulation drives.
    pub fn input_ports() -> &'static [&'static str] {
        &[
            "imem.instr",
            "redirect.taken",
            "redirect.target",
            "rf.rs1_data",
            "rf.rs2_data",
            "bypass.ex",
            "bypass.me",
            "fwd.ex_rd",
            "fwd.me_rd",
            "dmem.rdata",
        ]
    }
}

/// Creates a flip-flop bank named `name` capturing `bus` in `stage`.
fn connect_bank(
    b: &mut NetlistBuilder,
    name: &str,
    bus: &[GateId],
    class: EndpointClass,
    stage: usize,
) -> Result<Vec<GateId>> {
    let ffs = b.flip_flop_bus(name, bus.len(), class, stage)?;
    for (ff, src) in ffs.iter().zip(bus) {
        b.connect_ff_input(*ff, *src)?;
    }
    Ok(ffs)
}

/// Buffers every bit of a bus (used to keep cross-stage feedthroughs as real
/// gates so they appear in activity and timing).
fn buf_bus(b: &mut NetlistBuilder, stage: usize, bus: &[GateId]) -> Result<Vec<GateId>> {
    bus.iter()
        .map(|&x| b.gate(GateKind::Buf, &[x], stage))
        .collect()
}

/// Convenience accessor used during construction (names are registered
/// before later stages reference them).
trait BusIds {
    fn bus_ids(&self, name: &str) -> Vec<GateId>;
}

impl BusIds for NetlistBuilder {
    fn bus_ids(&self, name: &str) -> Vec<GateId> {
        self.peek_bus(name)
            // terse-analyze: allow(AZ001): build() registers every bus before use.
            .unwrap_or_else(|| panic!("bus `{name}` must be registered before use"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn small_pipeline_builds() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let n = p.netlist();
        assert_eq!(n.stage_count(), STAGE_COUNT);
        for s in 0..STAGE_COUNT {
            assert!(
                !n.endpoints(s).unwrap().is_empty(),
                "stage {s} has no endpoints"
            );
        }
        // Both endpoint classes are present.
        let mut has_ctl = false;
        let mut has_data = false;
        for e in n.all_endpoints() {
            match n.endpoint_class(e).unwrap() {
                EndpointClass::Control => has_ctl = true,
                EndpointClass::Data => has_data = true,
            }
        }
        assert!(has_ctl && has_data);
    }

    #[test]
    fn default_pipeline_has_realistic_size() {
        let p = PipelineNetlist::build(PipelineConfig::default()).unwrap();
        let gc = p.netlist().gate_count();
        assert!(gc > 5_000, "gate count {gc} too small to be interesting");
        assert!(gc < 100_000, "gate count {gc} unexpectedly large");
        // Logic depth should peak in EX (the multiplier/adder stage).
        let depth = p.netlist().logic_depth_by_stage();
        let max_stage = depth
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .map(|(s, _)| s)
            .unwrap();
        assert_eq!(max_stage, 3, "depths = {depth:?}");
    }

    #[test]
    fn forced_banks_and_ports_exist() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        for name in PipelineNetlist::forced_banks() {
            assert!(p.netlist().bus(name).is_ok(), "missing bank {name}");
        }
        for name in PipelineNetlist::input_ports() {
            assert!(p.netlist().bus(name).is_ok(), "missing port {name}");
        }
    }

    #[test]
    fn ex_stage_computes_addition() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let n = p.netlist();
        let w = p.config().width;
        let mut sim = Simulator::new(n);
        // Force EX inputs: op_a = 5, op_b = 7, control = add (all zero,
        // result select 00 = addsub with sub_en=0).
        sim.force_ff_bus("b3.op_a", 5).unwrap();
        sim.force_ff_bus("b3.op_b", 7).unwrap();
        sim.force_ff_bus("b3.ex_ctl", 0).unwrap();
        sim.step(); // banks appear, EX computes
        sim.step(); // b4 captures
        let alu = sim.bus_value("b4.alu").unwrap();
        assert_eq!(alu, 12 & ((1 << w) - 1));
    }

    #[test]
    fn ex_stage_computes_subtraction_and_mul() {
        let p = PipelineNetlist::build(PipelineConfig::small()).unwrap();
        let n = p.netlist();
        let mut sim = Simulator::new(n);
        // sub_en = ctl bit 1 → value 0b10; select 00 keeps addsub.
        sim.force_ff_bus("b3.op_a", 9).unwrap();
        sim.force_ff_bus("b3.op_b", 3).unwrap();
        sim.force_ff_bus("b3.ex_ctl", 0b10).unwrap();
        sim.step();
        sim.step();
        assert_eq!(sim.bus_value("b4.alu").unwrap(), 6);
        // Multiplier: select = 11 → ctl bits 6,7 set.
        let mut sim = Simulator::new(n);
        sim.force_ff_bus("b3.op_a", 6).unwrap();
        sim.force_ff_bus("b3.op_b", 7).unwrap();
        sim.force_ff_bus("b3.ex_ctl", 0b1100_0000).unwrap();
        sim.step();
        sim.step();
        assert_eq!(sim.bus_value("b4.alu").unwrap(), 42);
    }

    #[test]
    fn pc_increments_through_if_stage() {
        let p = PipelineNetlist::build(PipelineConfig::default()).unwrap();
        let mut sim = Simulator::new(p.netlist());
        sim.force_ff_bus("b0.pc", 0x100).unwrap();
        sim.set_input("redirect.taken".parse_id(&p), false);
        sim.step();
        sim.step();
        assert_eq!(sim.bus_value("b1.pc").unwrap(), 0x104);
    }

    /// Test-only sugar for 1-bit port lookup.
    trait ParseId {
        fn parse_id(&self, p: &PipelineNetlist) -> crate::gate::GateId;
    }
    impl ParseId for str {
        fn parse_id(&self, p: &PipelineNetlist) -> crate::gate::GateId {
            p.netlist().bus(self).unwrap()[0]
        }
    }
}
