//! Structural circuit generators — textbook gate-level arithmetic.
//!
//! These are the functional units a synthesis tool would produce for an
//! integer pipeline, built from the small cell library of [`crate::gate`]:
//! ripple-carry adders (whose carry chains give the value-dependent critical
//! paths the paper's analysis exists to capture), a carry-save array
//! multiplier, a barrel shifter, a logic unit, comparators, mux trees,
//! one-hot decoders, reduction trees, and pseudo-random control clouds.
//!
//! All functions take buses LSB-first and return buses LSB-first.

use crate::builder::NetlistBuilder;
use crate::gate::{GateId, GateKind};
use crate::Result;

/// A full adder; returns `(sum, carry_out)`.
///
/// # Errors
///
/// Propagates builder errors (bad stage, dangling ids).
pub fn full_adder(
    b: &mut NetlistBuilder,
    stage: usize,
    a: GateId,
    bb: GateId,
    cin: GateId,
) -> Result<(GateId, GateId)> {
    let axb = b.gate(GateKind::Xor, &[a, bb], stage)?;
    let sum = b.gate(GateKind::Xor, &[axb, cin], stage)?;
    let t1 = b.gate(GateKind::And, &[axb, cin], stage)?;
    let t2 = b.gate(GateKind::And, &[a, bb], stage)?;
    let cout = b.gate(GateKind::Or, &[t1, t2], stage)?;
    Ok((sum, cout))
}

/// A half adder; returns `(sum, carry_out)`.
///
/// # Errors
///
/// Propagates builder errors.
pub fn half_adder(
    b: &mut NetlistBuilder,
    stage: usize,
    a: GateId,
    bb: GateId,
) -> Result<(GateId, GateId)> {
    let sum = b.gate(GateKind::Xor, &[a, bb], stage)?;
    let cout = b.gate(GateKind::And, &[a, bb], stage)?;
    Ok((sum, cout))
}

/// Ripple-carry adder over equal-width buses; returns `(sum, carry_out)`.
///
/// The carry chain is the canonical data-dependent long path: adding values
/// that propagate a carry through all bit positions activates a path ~2×
/// deeper than adding values with no carry propagation — exactly the
/// operand-value dependence of dynamic timing slack the paper models.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if the buses have different widths or are empty.
pub fn ripple_carry_adder(
    b: &mut NetlistBuilder,
    stage: usize,
    a: &[GateId],
    bb: &[GateId],
    cin: GateId,
) -> Result<(Vec<GateId>, GateId)> {
    assert_eq!(a.len(), bb.len(), "adder operand widths must match");
    assert!(!a.is_empty(), "adder width must be positive");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&ai, &bi) in a.iter().zip(bb) {
        let (s, c) = full_adder(b, stage, ai, bi, carry)?;
        sum.push(s);
        carry = c;
    }
    Ok((sum, carry))
}

/// Two's-complement subtractor `a − b`; returns `(difference, carry_out)`
/// where `carry_out = 1` means no borrow (i.e. `a ≥ b` for unsigned
/// operands).
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn subtractor(
    b: &mut NetlistBuilder,
    stage: usize,
    a: &[GateId],
    bb: &[GateId],
) -> Result<(Vec<GateId>, GateId)> {
    let nb: Vec<GateId> = bb
        .iter()
        .map(|&x| b.gate(GateKind::Not, &[x], stage))
        .collect::<Result<_>>()?;
    let one = b.tie(true, stage)?;
    ripple_carry_adder(b, stage, a, &nb, one)
}

/// Bitwise logic unit: computes AND/OR/XOR/pass-B of two buses, selected by
/// two control bits: `op = (op1, op0)`: `00 → AND`, `01 → OR`, `10 → XOR`,
/// `11 → B`.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn logic_unit(
    b: &mut NetlistBuilder,
    stage: usize,
    a: &[GateId],
    bb: &[GateId],
    op0: GateId,
    op1: GateId,
) -> Result<Vec<GateId>> {
    assert_eq!(a.len(), bb.len(), "logic unit operand widths must match");
    let mut out = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(bb) {
        let and = b.gate(GateKind::And, &[ai, bi], stage)?;
        let or = b.gate(GateKind::Or, &[ai, bi], stage)?;
        let xor = b.gate(GateKind::Xor, &[ai, bi], stage)?;
        // mux level 0 on op0: AND/OR and XOR/B.
        let m0 = b.gate(GateKind::Mux, &[op0, and, or], stage)?;
        let m1 = b.gate(GateKind::Mux, &[op0, xor, bi], stage)?;
        out.push(b.gate(GateKind::Mux, &[op1, m0, m1], stage)?);
    }
    Ok(out)
}

/// Logarithmic barrel shifter. Shifts `value` by the unsigned amount on
/// `amount` (one mux layer per amount bit). `right` selects direction
/// (0 = left); `arith` selects sign-filling for right shifts.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if `value` is empty or `amount` is wider than needed
/// (`amount.len() > ceil(log2(value.len())) + 1`).
pub fn barrel_shifter(
    b: &mut NetlistBuilder,
    stage: usize,
    value: &[GateId],
    amount: &[GateId],
    right: GateId,
    arith: GateId,
) -> Result<Vec<GateId>> {
    let w = value.len();
    assert!(w > 0, "shifter width must be positive");
    let max_bits = usize::BITS as usize - (w - 1).leading_zeros() as usize;
    assert!(
        amount.len() <= max_bits + 1,
        "amount bus wider than meaningful for width {w}"
    );
    let zero = b.tie(false, stage)?;
    let msb = value[w - 1]; // w > 0 asserted above
                            // Fill bit for right shifts: sign if arithmetic, else 0.
    let fill = b.gate(GateKind::Mux, &[arith, zero, msb], stage)?;
    // To share one shifter for both directions we reverse the bus for left
    // shifts, do a right shift, and reverse back.
    let mut cur: Vec<GateId> = Vec::with_capacity(w);
    for i in 0..w {
        // right ? value[i] : value[w-1-i]
        cur.push(b.gate(GateKind::Mux, &[right, value[w - 1 - i], value[i]], stage)?);
    }
    // For a left shift the vacated positions fill with 0, for arithmetic
    // right with sign: in reversed-domain both become "shift toward LSB with
    // the appropriate fill"; left shifts must fill with zero.
    let fill_eff = b.gate(GateKind::Mux, &[right, zero, fill], stage)?;
    for (layer, &abit) in amount.iter().enumerate() {
        let dist = 1usize << layer;
        let mut next = Vec::with_capacity(w);
        for i in 0..w {
            let shifted = if i + dist < w {
                cur[i + dist]
            } else {
                fill_eff
            };
            next.push(b.gate(GateKind::Mux, &[abit, cur[i], shifted], stage)?);
        }
        cur = next;
    }
    // Undo the reversal for left shifts.
    let mut out = Vec::with_capacity(w);
    for i in 0..w {
        out.push(b.gate(GateKind::Mux, &[right, cur[w - 1 - i], cur[i]], stage)?);
    }
    Ok(out)
}

/// Equality comparator: 1 iff the buses are bit-identical
/// (XOR column + NOR/OR reduction tree).
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn equality(
    b: &mut NetlistBuilder,
    stage: usize,
    a: &[GateId],
    bb: &[GateId],
) -> Result<GateId> {
    assert_eq!(a.len(), bb.len(), "comparator widths must match");
    let diffs: Vec<GateId> = a
        .iter()
        .zip(bb)
        .map(|(&x, &y)| b.gate(GateKind::Xor, &[x, y], stage))
        .collect::<Result<_>>()?;
    let any = reduce_tree(b, stage, &diffs, GateKind::Or)?;
    b.gate(GateKind::Not, &[any], stage)
}

/// Balanced reduction tree with a 2-input associative gate kind.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if `xs` is empty or `kind` is not a 2-input gate.
pub fn reduce_tree(
    b: &mut NetlistBuilder,
    stage: usize,
    xs: &[GateId],
    kind: GateKind,
) -> Result<GateId> {
    assert!(!xs.is_empty(), "reduction of empty bus");
    assert_eq!(
        kind.fanin_count(),
        Some(2),
        "reduction needs a 2-input gate"
    );
    let mut level: Vec<GateId> = xs.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.gate(kind, &[pair[0], pair[1]], stage)?);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    Ok(level[0])
}

/// Zero detector: 1 iff the whole bus is zero.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if the bus is empty.
pub fn zero_detect(b: &mut NetlistBuilder, stage: usize, xs: &[GateId]) -> Result<GateId> {
    let any = reduce_tree(b, stage, xs, GateKind::Or)?;
    b.gate(GateKind::Not, &[any], stage)
}

/// 2:1 bus multiplexer: `sel ? bv : av` per bit.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if widths differ.
pub fn mux2_bus(
    b: &mut NetlistBuilder,
    stage: usize,
    sel: GateId,
    av: &[GateId],
    bv: &[GateId],
) -> Result<Vec<GateId>> {
    assert_eq!(av.len(), bv.len(), "mux operand widths must match");
    av.iter()
        .zip(bv)
        .map(|(&a, &bb)| b.gate(GateKind::Mux, &[sel, a, bb], stage))
        .collect()
}

/// Selects among `2^sels.len()` equally wide buses with a layered mux tree.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics unless `inputs.len() == 2^sels.len()` and all widths match.
// Invariant: the assert fixes `inputs.len() = 2^sels ≥ 1`; each round halves
// the level, so exactly one bus remains at the end.
#[allow(clippy::expect_used)]
pub fn mux_tree(
    b: &mut NetlistBuilder,
    stage: usize,
    sels: &[GateId],
    inputs: &[Vec<GateId>],
) -> Result<Vec<GateId>> {
    assert_eq!(
        inputs.len(),
        1usize << sels.len(),
        "mux tree needs 2^sels inputs"
    );
    let mut level: Vec<Vec<GateId>> = inputs.to_vec();
    for &s in sels {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            next.push(mux2_bus(b, stage, s, &pair[0], &pair[1])?);
        }
        level = next;
    }
    Ok(level.pop().expect("non-empty mux tree"))
}

/// One-hot decoder: `sel` (k bits) → `2^k` outputs, exactly one high.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if `sel` is empty or wider than 8 bits (256 outputs).
pub fn decoder(b: &mut NetlistBuilder, stage: usize, sel: &[GateId]) -> Result<Vec<GateId>> {
    assert!(
        !sel.is_empty() && sel.len() <= 8,
        "decoder select must be 1..=8 bits"
    );
    let nsel: Vec<GateId> = sel
        .iter()
        .map(|&s| b.gate(GateKind::Not, &[s], stage))
        .collect::<Result<_>>()?;
    let n = 1usize << sel.len();
    let mut outs = Vec::with_capacity(n);
    for code in 0..n {
        let terms: Vec<GateId> = (0..sel.len())
            .map(|bit| {
                if code >> bit & 1 == 1 {
                    sel[bit]
                } else {
                    nsel[bit]
                }
            })
            .collect();
        outs.push(reduce_tree(b, stage, &terms, GateKind::And)?);
    }
    Ok(outs)
}

/// Carry-save array multiplier producing the **low `a.len()` bits** of
/// `a × b` (the triangular low-product array; what a `mul` writing one
/// register needs). Depth is `O(width)` full-adder levels — roughly twice an
/// adder, matching the "multiplier is the slow unit" reality.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn array_multiplier_low(
    b: &mut NetlistBuilder,
    stage: usize,
    a: &[GateId],
    bb: &[GateId],
) -> Result<Vec<GateId>> {
    let w = a.len();
    assert_eq!(w, bb.len(), "multiplier operand widths must match");
    assert!(w > 0, "multiplier width must be positive");
    let zero = b.tie(false, stage)?;
    // acc holds the running sum bits for columns 0..w.
    let mut acc: Vec<GateId> = vec![zero; w];
    // carries propagated row to row, per column.
    let mut carries: Vec<GateId> = vec![zero; w];
    for (i, &bi) in bb.iter().enumerate() {
        // Partial product row i contributes to columns i..w.
        let mut new_acc = acc.clone();
        let mut new_carries = vec![zero; w];
        for col in i..w {
            let pp = b.gate(GateKind::And, &[a[col - i], bi], stage)?;
            let (s, c) = full_adder(b, stage, acc[col], pp, carries[col])?;
            new_acc[col] = s;
            if col + 1 < w {
                new_carries[col + 1] = c;
            }
        }
        acc = new_acc;
        carries = new_carries;
    }
    // Final carry resolution: one more ripple pass over remaining carries.
    let (sum, _cout) = ripple_carry_adder(b, stage, &acc, &carries, zero)?;
    Ok(sum)
}

/// A pseudo-random combinational cloud: `n_gates` random 2-input gates drawn
/// over the inputs and previously created cloud gates, returning the
/// `n_outputs` most recently created nets. Used to model control logic
/// (decode qualifiers, hazard trees, FSM next-state functions) whose precise
/// structure is irrelevant but whose *activity and depth statistics* matter.
///
/// Deterministic for a given `seed`.
///
/// # Errors
///
/// Propagates builder errors.
///
/// # Panics
///
/// Panics if `inputs` is empty, `n_gates == 0`, or `n_outputs > n_gates`.
pub fn random_cloud(
    b: &mut NetlistBuilder,
    stage: usize,
    inputs: &[GateId],
    n_gates: usize,
    n_outputs: usize,
    seed: u64,
) -> Result<Vec<GateId>> {
    assert!(!inputs.is_empty(), "cloud needs inputs");
    assert!(n_gates > 0 && n_outputs <= n_gates, "bad cloud shape");
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const KINDS: [GateKind; 6] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    let mut pool: Vec<GateId> = inputs.to_vec();
    let mut created = Vec::with_capacity(n_gates);
    for _ in 0..n_gates {
        let kind = KINDS[(next() % KINDS.len() as u64) as usize];
        // Bias toward recent gates to create depth, with ~40% taps back into
        // the primary inputs for wide fan-in cones.
        let pick = |r: u64, pool: &[GateId], inputs: &[GateId]| -> GateId {
            if r % 5 < 2 {
                inputs[(r / 5) as usize % inputs.len()]
            } else {
                let span = pool.len().min(24);
                pool[pool.len() - 1 - (r / 5) as usize % span]
            }
        };
        let x = pick(next(), &pool, inputs);
        let y = pick(next(), &pool, inputs);
        let g = b.gate(kind, &[x, y], stage)?;
        pool.push(g);
        created.push(g);
    }
    Ok(created[created.len() - n_outputs..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{EndpointClass, Netlist};
    use crate::sim::Simulator;

    /// Builds a 1-stage netlist computing `f(inputs)` into named FFs so we
    /// can simulate and read results. Returns the netlist.
    fn harness(
        widths: &[(&str, usize)],
        build: impl FnOnce(&mut NetlistBuilder, &[Vec<GateId>]) -> Vec<(String, Vec<GateId>)>,
    ) -> Netlist {
        let mut b = NetlistBuilder::new(1);
        let ins: Vec<Vec<GateId>> = widths
            .iter()
            .map(|(name, w)| b.input_bus(name, *w, 0).unwrap())
            .collect();
        let outs = build(&mut b, &ins);
        for (name, bus) in outs {
            let ffs = b
                .flip_flop_bus(&name, bus.len(), EndpointClass::Data, 0)
                .unwrap();
            for (ff, src) in ffs.iter().zip(&bus) {
                b.connect_ff_input(*ff, *src).unwrap();
            }
        }
        b.finish().unwrap()
    }

    /// Runs two cycles (drive, capture) and reads an output bank.
    fn eval(n: &Netlist, inputs: &[(&str, u64)], out: &str) -> u64 {
        let mut sim = Simulator::new(n);
        for (name, v) in inputs {
            sim.set_input_bus(name, *v).unwrap();
        }
        sim.step(); // propagate
        sim.step(); // capture into FFs
        sim.bus_value(out).unwrap()
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let n = harness(&[("a", 4), ("b", 4)], |b, ins| {
            let zero = b.tie(false, 0).unwrap();
            let (sum, cout) = ripple_carry_adder(b, 0, &ins[0], &ins[1], zero).unwrap();
            vec![("sum".into(), sum), ("cout".into(), vec![cout])]
        });
        for a in 0..16u64 {
            for bb in 0..16u64 {
                let s = eval(&n, &[("a", a), ("b", bb)], "sum");
                let c = eval(&n, &[("a", a), ("b", bb)], "cout");
                assert_eq!(s, (a + bb) & 0xF, "{a}+{bb}");
                assert_eq!(c, (a + bb) >> 4, "{a}+{bb} carry");
            }
        }
    }

    #[test]
    fn adder_random_32bit() {
        let n = harness(&[("a", 32), ("b", 32)], |b, ins| {
            let zero = b.tie(false, 0).unwrap();
            let (sum, _) = ripple_carry_adder(b, 0, &ins[0], &ins[1], zero).unwrap();
            vec![("sum".into(), sum)]
        });
        let mut s = 0x1234_5678_u64;
        for _ in 0..50 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = s >> 16 & 0xFFFF_FFFF;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bb = s >> 16 & 0xFFFF_FFFF;
            assert_eq!(
                eval(&n, &[("a", a), ("b", bb)], "sum"),
                (a + bb) & 0xFFFF_FFFF
            );
        }
    }

    #[test]
    fn subtractor_semantics() {
        let n = harness(&[("a", 8), ("b", 8)], |b, ins| {
            let (diff, nb) = subtractor(b, 0, &ins[0], &ins[1]).unwrap();
            vec![("diff".into(), diff), ("noborrow".into(), vec![nb])]
        });
        for (a, bb) in [(5u64, 3u64), (3, 5), (200, 200), (255, 0), (0, 255)] {
            assert_eq!(
                eval(&n, &[("a", a), ("b", bb)], "diff"),
                a.wrapping_sub(bb) & 0xFF
            );
            assert_eq!(
                eval(&n, &[("a", a), ("b", bb)], "noborrow"),
                u64::from(a >= bb)
            );
        }
    }

    #[test]
    fn logic_unit_ops() {
        let n = harness(&[("a", 8), ("b", 8), ("op", 2)], |b, ins| {
            let out = logic_unit(b, 0, &ins[0], &ins[1], ins[2][0], ins[2][1]).unwrap();
            vec![("out".into(), out)]
        });
        let a = 0b1100_1010u64;
        let bb = 0b1010_0110u64;
        assert_eq!(eval(&n, &[("a", a), ("b", bb), ("op", 0)], "out"), a & bb);
        assert_eq!(eval(&n, &[("a", a), ("b", bb), ("op", 1)], "out"), a | bb);
        assert_eq!(eval(&n, &[("a", a), ("b", bb), ("op", 2)], "out"), a ^ bb);
        assert_eq!(eval(&n, &[("a", a), ("b", bb), ("op", 3)], "out"), bb);
    }

    #[test]
    fn shifter_all_modes() {
        let n = harness(
            &[("v", 16), ("amt", 4), ("right", 1), ("arith", 1)],
            |b, ins| {
                let out = barrel_shifter(b, 0, &ins[0], &ins[1], ins[2][0], ins[3][0]).unwrap();
                vec![("out".into(), out)]
            },
        );
        let v = 0x8C3Au64;
        for amt in 0..16u64 {
            // Logical left.
            assert_eq!(
                eval(
                    &n,
                    &[("v", v), ("amt", amt), ("right", 0), ("arith", 0)],
                    "out"
                ),
                (v << amt) & 0xFFFF,
                "sll amt={amt}"
            );
            // Logical right.
            assert_eq!(
                eval(
                    &n,
                    &[("v", v), ("amt", amt), ("right", 1), ("arith", 0)],
                    "out"
                ),
                v >> amt,
                "srl amt={amt}"
            );
            // Arithmetic right (v has MSB set at width 16).
            let sign_ext = ((v as i64 | !0xFFFFi64) >> amt) as u64 & 0xFFFF;
            assert_eq!(
                eval(
                    &n,
                    &[("v", v), ("amt", amt), ("right", 1), ("arith", 1)],
                    "out"
                ),
                sign_ext,
                "sra amt={amt}"
            );
        }
    }

    #[test]
    fn equality_and_zero_detect() {
        let n = harness(&[("a", 8), ("b", 8)], |b, ins| {
            let eq = equality(b, 0, &ins[0], &ins[1]).unwrap();
            let z = zero_detect(b, 0, &ins[0]).unwrap();
            vec![("eq".into(), vec![eq]), ("z".into(), vec![z])]
        });
        assert_eq!(eval(&n, &[("a", 42), ("b", 42)], "eq"), 1);
        assert_eq!(eval(&n, &[("a", 42), ("b", 43)], "eq"), 0);
        assert_eq!(eval(&n, &[("a", 0), ("b", 1)], "z"), 1);
        assert_eq!(eval(&n, &[("a", 16), ("b", 1)], "z"), 0);
    }

    #[test]
    fn decoder_one_hot() {
        let n = harness(&[("sel", 3)], |b, ins| {
            let outs = decoder(b, 0, &ins[0]).unwrap();
            vec![("onehot".into(), outs)]
        });
        for sel in 0..8u64 {
            assert_eq!(eval(&n, &[("sel", sel)], "onehot"), 1 << sel);
        }
    }

    #[test]
    fn mux_tree_selects() {
        let n = harness(
            &[("s", 2), ("i0", 4), ("i1", 4), ("i2", 4), ("i3", 4)],
            |b, ins| {
                let out = mux_tree(
                    b,
                    0,
                    &ins[0],
                    &[
                        ins[1].clone(),
                        ins[2].clone(),
                        ins[3].clone(),
                        ins[4].clone(),
                    ],
                )
                .unwrap();
                vec![("out".into(), out)]
            },
        );
        let vals = [("i0", 1u64), ("i1", 5), ("i2", 9), ("i3", 14)];
        for s in 0..4u64 {
            let mut inputs = vals.to_vec();
            inputs.push(("s", s));
            assert_eq!(eval(&n, &inputs, "out"), vals[s as usize].1);
        }
    }

    #[test]
    fn multiplier_low_product() {
        let n = harness(&[("a", 8), ("b", 8)], |b, ins| {
            let p = array_multiplier_low(b, 0, &ins[0], &ins[1]).unwrap();
            vec![("p".into(), p)]
        });
        for (a, bb) in [
            (0u64, 0u64),
            (1, 255),
            (255, 255),
            (12, 13),
            (100, 3),
            (17, 15),
        ] {
            assert_eq!(
                eval(&n, &[("a", a), ("b", bb)], "p"),
                (a * bb) & 0xFF,
                "{a}*{bb}"
            );
        }
    }

    #[test]
    fn multiplier_16bit_random() {
        let n = harness(&[("a", 16), ("b", 16)], |b, ins| {
            let p = array_multiplier_low(b, 0, &ins[0], &ins[1]).unwrap();
            vec![("p".into(), p)]
        });
        let mut s = 7u64;
        for _ in 0..25 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let a = s >> 20 & 0xFFFF;
            let bb = s >> 40 & 0xFFFF;
            assert_eq!(eval(&n, &[("a", a), ("b", bb)], "p"), (a * bb) & 0xFFFF);
        }
    }

    #[test]
    fn random_cloud_deterministic_and_sized() {
        let build = |seed| {
            harness(&[("x", 12)], move |b, ins| {
                let outs = random_cloud(b, 0, &ins[0], 200, 8, seed).unwrap();
                vec![("y".into(), outs)]
            })
        };
        let n1 = build(11);
        let n2 = build(11);
        assert_eq!(n1.gate_count(), n2.gate_count());
        let v1 = eval(&n1, &[("x", 0xABC)], "y");
        let v2 = eval(&n2, &[("x", 0xABC)], "y");
        assert_eq!(v1, v2);
        // Different seeds give different logic (almost surely).
        let n3 = build(12);
        let v3 = eval(&n3, &[("x", 0xABC)], "y");
        assert!(v1 != v3 || n1.gate_count() != n3.gate_count());
    }

    #[test]
    fn carry_chain_activity_depends_on_operands() {
        // 0xFFFF + 1 ripples a carry through every bit; 1 + 1 does not.
        // The number of activated gates must differ strongly — this is the
        // operand-dependence of DTS the whole framework is about.
        let n = harness(&[("a", 16), ("b", 16)], |b, ins| {
            let zero = b.tie(false, 0).unwrap();
            let (sum, _) = ripple_carry_adder(b, 0, &ins[0], &ins[1], zero).unwrap();
            vec![("sum".into(), sum)]
        });
        let activity = |a: u64, bb: u64| -> usize {
            let mut sim = Simulator::new(&n);
            sim.set_input_bus("a", a).unwrap();
            sim.set_input_bus("b", bb).unwrap();
            sim.step().count()
        };
        let long = activity(0xFFFF, 1);
        let short = activity(1, 0); // far fewer toggles
        assert!(long > short + 16, "long={long} short={short}");
    }
}
