//! The netlist graph `N`: gates, nets (fanin/fanout edges), endpoints and
//! pipeline stages — the object the paper's Algorithm 1 analyzes.

use crate::bitset::BitSet;
use crate::gate::{GateId, GateKind};
use crate::{NetlistError, Result};
use std::collections::HashMap;

/// Classification of a flip-flop endpoint, per the paper's Section 4:
/// *data endpoints* "hold the operands and results of instructions, including
/// condition codes and intermediate results like load/store addresses";
/// *control endpoints* are the rest (fetch/decode state, control signals…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointClass {
    /// Fetch/decode/control-signal endpoints, characterized per basic block
    /// at gate level (Section 4, "Control Network DTS Characterization").
    Control,
    /// Operand/result endpoints, modeled with the trained datapath timing
    /// model (Section 4, "Datapath DTS Characterization").
    Data,
}

/// A 2-D placement coordinate in normalized die units `[0, 1]²`, consumed by
/// the spatial-correlation model of the SSTA crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f32,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f32,
}

#[derive(Debug, Clone)]
pub(crate) struct GateData {
    pub kind: GateKind,
    pub fanin: Vec<GateId>,
    pub stage: u16,
    pub pos: Point,
    /// For flip-flops: which pipeline stage's logic this endpoint captures
    /// (i.e. membership in `E(N, s)`), and the endpoint class.
    pub endpoint: Option<EndpointClass>,
}

/// An immutable, validated gate-level netlist.
///
/// Construct with [`crate::NetlistBuilder`]. The netlist knows, for every
/// gate: its boolean function, fanin, fanout, pipeline stage, placement, and
/// (for flip-flops) its endpoint class — everything Algorithm 1 and the SSTA
/// layer need.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) gates: Vec<GateData>,
    pub(crate) fanout: Vec<Vec<GateId>>,
    /// Combinational gates in topological order (sources excluded).
    pub(crate) topo: Vec<GateId>,
    pub(crate) stage_count: usize,
    /// Flip-flops by capture stage.
    pub(crate) endpoints_by_stage: Vec<Vec<GateId>>,
    pub(crate) names: HashMap<String, Vec<GateId>>,
    /// D-input driver of each flip-flop (indexed by gate id; `None` for
    /// non-FF gates).
    pub(crate) ff_input: Vec<Option<GateId>>,
}

impl Netlist {
    /// Number of gates (including ports and flip-flops).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of pipeline stages `S(N)`.
    pub fn stage_count(&self) -> usize {
        self.stage_count
    }

    /// The gate kind.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: GateId) -> GateKind {
        self.gates[id.index()].kind
    }

    /// The fanin (driver gates) of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanin(&self, id: GateId) -> &[GateId] {
        &self.gates[id.index()].fanin
    }

    /// The fanout (driven gates) of `id`. For a flip-flop this is the logic
    /// its Q output drives; the D-input edge appears as the FF being in the
    /// driver's fanout.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanout(&self, id: GateId) -> &[GateId] {
        &self.fanout[id.index()]
    }

    /// The pipeline stage this gate's logic belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn stage(&self, id: GateId) -> usize {
        self.gates[id.index()].stage as usize
    }

    /// Placement coordinate of the gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: GateId) -> Point {
        self.gates[id.index()].pos
    }

    /// The endpoint class of a flip-flop, or `None` for combinational gates
    /// and ports.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn endpoint_class(&self, id: GateId) -> Option<EndpointClass> {
        self.gates[id.index()].endpoint
    }

    /// The set of endpoints `E(N, s)` capturing stage `s` logic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadStage`] if `s` is out of range.
    pub fn endpoints(&self, s: usize) -> Result<&[GateId]> {
        self.endpoints_by_stage
            .get(s)
            .map(Vec::as_slice)
            .ok_or(NetlistError::BadStage {
                stage: s,
                stages: self.stage_count,
            })
    }

    /// All flip-flop endpoints of every stage.
    pub fn all_endpoints(&self) -> impl Iterator<Item = GateId> + '_ {
        self.endpoints_by_stage.iter().flatten().copied()
    }

    /// The D-input driver of a flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownGate`] if `id` is not a flip-flop.
    pub fn ff_input(&self, id: GateId) -> Result<GateId> {
        self.ff_input
            .get(id.index())
            .copied()
            .flatten()
            .ok_or(NetlistError::UnknownGate { id: id.0 })
    }

    /// Looks up a named bus (a vector of gate ids registered by the builder,
    /// LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownName`] if the name is unregistered.
    pub fn bus(&self, name: &str) -> Result<&[GateId]> {
        self.names
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| NetlistError::UnknownName {
                name: name.to_owned(),
            })
    }

    /// All registered bus names (sorted for determinism).
    pub fn bus_names(&self) -> Vec<&str> {
        // terse-analyze: allow(AZ002): collected then sorted immediately.
        let mut v: Vec<&str> = self.names.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Combinational gates in topological (fanin-before-fanout) order.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Iterates over every gate id.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        // terse-analyze: allow(AZ005): gate count fits u32 (ids are u32 indices).
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Counts gates by kind — useful for reporting netlist statistics.
    pub fn kind_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(g.kind.cell_name()).or_insert(0) += 1;
        }
        h
    }

    /// For each stage `s`, the *fan-in cone* of its endpoints: the D-input
    /// drivers of every endpoint in `E(N, s)` plus their transitive
    /// combinational fanin, including the sequential sources (flip-flops,
    /// inputs, ties) that launch into the stage. Capture endpoints themselves
    /// are only members if they also source logic of the same stage.
    ///
    /// Every path Algorithm 1 can enumerate for stage `s` consists solely of
    /// cone gates, so the stage-`s` DTS depends on a cycle's activation set
    /// `VCD(t)` only through `VCD(t) ∧ cone(s)` — this is what makes masked
    /// activation signatures an exact memoization key for stage DTS.
    pub fn stage_cones(&self) -> Vec<BitSet> {
        let n = self.gates.len();
        (0..self.stage_count)
            .map(|s| {
                let mut cone = BitSet::new(n);
                let mut stack: Vec<GateId> = Vec::new();
                for &e in &self.endpoints_by_stage[s] {
                    if let Some(d) = self.ff_input[e.index()] {
                        stack.push(d);
                    }
                }
                while let Some(g) = stack.pop() {
                    let gi = g.index();
                    if cone.contains(gi) {
                        continue;
                    }
                    cone.insert(gi);
                    // Sequential elements and ports launch paths; do not
                    // traverse through them into earlier stages.
                    if !matches!(
                        self.kind(g),
                        GateKind::FlipFlop | GateKind::Input | GateKind::Tie(_)
                    ) {
                        stack.extend_from_slice(self.fanin(g));
                    }
                }
                cone
            })
            .collect()
    }

    /// Logic depth (maximum number of combinational gates on any
    /// source-to-endpoint path), per stage.
    pub fn logic_depth_by_stage(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.gates.len()];
        let mut per_stage = vec![0usize; self.stage_count.max(1)];
        for &g in &self.topo {
            let gi = g.index();
            let d = self.gates[gi]
                .fanin
                .iter()
                .map(|f| depth[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
            depth[gi] = d;
            let s = self.gates[gi].stage as usize;
            if s < per_stage.len() {
                per_stage[s] = per_stage[s].max(d);
            }
        }
        per_stage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny() -> Netlist {
        // in -> and(in, ff) -> ff
        let mut b = NetlistBuilder::new(1);
        let input = b.input("in", 0).unwrap();
        let ff = b.flip_flop("state", EndpointClass::Control, 0).unwrap();
        let and = b.gate(GateKind::And, &[input, ff], 0).unwrap();
        b.connect_ff_input(ff, and).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn structure_queries() {
        let n = tiny();
        assert_eq!(n.gate_count(), 3);
        assert_eq!(n.stage_count(), 1);
        let ff = n.bus("state").unwrap()[0];
        assert_eq!(n.kind(ff), GateKind::FlipFlop);
        assert_eq!(n.endpoint_class(ff), Some(EndpointClass::Control));
        let and = n.ff_input(ff).unwrap();
        assert_eq!(n.kind(and), GateKind::And);
        assert_eq!(n.fanin(and).len(), 2);
        // The AND is in the fanout of both its drivers.
        let input = n.bus("in").unwrap()[0];
        assert!(n.fanout(input).contains(&and));
        assert!(n.fanout(ff).contains(&and));
        // FF appears in the fanout of its D driver.
        assert!(n.fanout(and).contains(&ff));
    }

    #[test]
    fn endpoints_by_stage() {
        let n = tiny();
        let eps = n.endpoints(0).unwrap();
        assert_eq!(eps.len(), 1);
        assert!(n.endpoints(1).is_err());
        assert_eq!(n.all_endpoints().count(), 1);
    }

    #[test]
    fn unknown_bus_is_error() {
        let n = tiny();
        assert!(n.bus("nope").is_err());
        assert_eq!(n.bus_names(), vec!["in", "state"]);
    }

    #[test]
    fn topo_contains_only_comb() {
        let n = tiny();
        assert_eq!(n.topo_order().len(), 1); // just the AND
    }

    #[test]
    fn stage_cones_cover_drivers_and_sources() {
        let n = tiny();
        let cones = n.stage_cones();
        assert_eq!(cones.len(), 1);
        let input = n.bus("in").unwrap()[0];
        let ff = n.bus("state").unwrap()[0];
        let and = n.ff_input(ff).unwrap();
        // Cone = the endpoint's D driver plus its sources — here the AND,
        // the primary input, and the FF itself (it sources the AND).
        assert!(cones[0].contains(and.index()));
        assert!(cones[0].contains(input.index()));
        assert!(cones[0].contains(ff.index()));
        assert_eq!(cones[0].count(), 3);
    }

    #[test]
    fn histogram_and_depth() {
        let n = tiny();
        let h = n.kind_histogram();
        assert_eq!(h["AN2"], 1);
        assert_eq!(h["DFF"], 1);
        assert_eq!(n.logic_depth_by_stage(), vec![1]);
    }
}
