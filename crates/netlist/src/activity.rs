//! Activity traces — the in-memory substitute for a VCD file.
//!
//! The paper's Algorithm 1 consumes `VCD(t)`, the set of gates activated at
//! clock cycle `t` (Figure 1 generates it by gate-level simulation).
//! [`ActivityTrace`] stores exactly that: one activation [`BitSet`] per
//! simulated cycle.

use crate::bitset::BitSet;

/// A sequence of per-cycle gate activation sets.
///
/// # Example
/// ```
/// use terse_netlist::{ActivityTrace, BitSet};
/// let mut t = ActivityTrace::new(8);
/// let mut c0 = BitSet::new(8);
/// c0.insert(3);
/// t.push(c0);
/// assert_eq!(t.len(), 1);
/// assert!(t.cycle(0).contains(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActivityTrace {
    gate_count: usize,
    cycles: Vec<BitSet>,
}

impl ActivityTrace {
    /// Creates an empty trace for a netlist with `gate_count` gates.
    pub fn new(gate_count: usize) -> Self {
        ActivityTrace {
            gate_count,
            cycles: Vec::new(),
        }
    }

    /// Number of gates per cycle set.
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether no cycles have been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Appends one cycle's activation set.
    ///
    /// # Panics
    ///
    /// Panics if the set's capacity does not match the gate count.
    pub fn push(&mut self, activated: BitSet) {
        assert_eq!(
            activated.capacity(),
            self.gate_count,
            "activation set capacity must equal the gate count"
        );
        self.cycles.push(activated);
    }

    /// The activation set of cycle `t` — the paper's `VCD(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn cycle(&self, t: usize) -> &BitSet {
        &self.cycles[t]
    }

    /// Iterates over the cycle sets in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, BitSet> {
        self.cycles.iter()
    }

    /// Union of activations over a cycle window `[from, to)` — used when an
    /// instruction occupies a stage for several cycles.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of range or empty.
    pub fn window_union(&self, from: usize, to: usize) -> BitSet {
        assert!(from < to && to <= self.cycles.len(), "bad window");
        let mut acc = self.cycles[from].clone();
        for t in from + 1..to {
            acc.union_with(&self.cycles[t]);
        }
        acc
    }

    /// Per-gate activation counts over the whole trace (switching activity
    /// profile — the input a power model would consume).
    pub fn activation_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.gate_count];
        for c in &self.cycles {
            for g in c.iter() {
                counts[g] += 1;
            }
        }
        counts
    }

    /// Mean fraction of gates activated per cycle.
    pub fn mean_activity_factor(&self) -> f64 {
        if self.cycles.is_empty() || self.gate_count == 0 {
            return 0.0;
        }
        let total: usize = self.cycles.iter().map(BitSet::count).sum();
        total as f64 / (self.cycles.len() * self.gate_count) as f64
    }
}

impl<'a> IntoIterator for &'a ActivityTrace {
    type Item = &'a BitSet;
    type IntoIter = std::slice::Iter<'a, BitSet>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(cap: usize, elems: &[usize]) -> BitSet {
        let mut s = BitSet::new(cap);
        for &e in elems {
            s.insert(e);
        }
        s
    }

    #[test]
    fn push_and_query() {
        let mut t = ActivityTrace::new(10);
        t.push(set(10, &[1, 2]));
        t.push(set(10, &[2, 3]));
        assert_eq!(t.len(), 2);
        assert!(t.cycle(0).contains(1));
        assert!(t.cycle(1).contains(3));
        assert!(!t.cycle(1).contains(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn mismatched_capacity_panics() {
        let mut t = ActivityTrace::new(10);
        t.push(BitSet::new(5));
    }

    #[test]
    fn window_union_accumulates() {
        let mut t = ActivityTrace::new(4);
        t.push(set(4, &[0]));
        t.push(set(4, &[1]));
        t.push(set(4, &[2]));
        let u = t.window_union(0, 3);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let u2 = t.window_union(1, 2);
        assert_eq!(u2.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn counts_and_activity_factor() {
        let mut t = ActivityTrace::new(4);
        t.push(set(4, &[0, 1]));
        t.push(set(4, &[1]));
        assert_eq!(t.activation_counts(), vec![1, 2, 0, 0]);
        assert!((t.mean_activity_factor() - 3.0 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn empty_trace() {
        let t = ActivityTrace::new(4);
        assert!(t.is_empty());
        assert_eq!(t.mean_activity_factor(), 0.0);
    }
}
