//! Compiled netlist op tape — the straight-line form of the combinational
//! logic that the bit-parallel backends execute.
//!
//! [`crate::sim::Simulator`] walks the topo-sorted gate list every cycle and
//! pays, per gate, a [`crate::gate::GateKind`] match plus a fan-in `Vec`
//! indirection. [`CompiledTape`] lowers that walk **once** into a flat
//! `Vec<Op>` of `(opcode, src slots, dst slot)` entries over a dense `u64`
//! slab (one word = 64 lanes per net, slot = gate index), so execution is a
//! tight loop of bitwise ops with no per-gate dispatch and no pointer
//! chasing. Two execution kernels are provided:
//!
//! * [`CompiledTape::execute_full`] — run every op (the `FullScan`
//!   analogue);
//! * [`CompiledTape::execute_event`] — drain a dirty bitmap over tape
//!   positions, skipping quiescent 64-op spans word-at-a-time (the
//!   `EventDriven` analogue; same single-pass proof: dirty insertions land
//!   at strictly larger topo positions).
//!
//! Both kernels record, per changed slot, the 64-lane toggle mask — the
//! packed form of the activation set `VCD(t)` (Definition 3.2).

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Opcode of one tape entry. `u8`-sized so an [`Op`] stays compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// `dst = a`
    Buf,
    /// `dst = !a`
    Not,
    /// `dst = a & b`
    And,
    /// `dst = a | b`
    Or,
    /// `dst = !(a & b)`
    Nand,
    /// `dst = !(a | b)`
    Nor,
    /// `dst = a ^ b`
    Xor,
    /// `dst = !(a ^ b)`
    Xnor,
    /// `dst = sel ? b : a` with `src = [sel, a, b]`
    Mux,
}

impl OpKind {
    /// Number of source slots the op actually reads.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Buf | OpKind::Not => 1,
            OpKind::Mux => 3,
            _ => 2,
        }
    }
}

/// One lowered gate: opcode, up to three source slots, one destination
/// slot. Unused source slots alias `dst` (never read by the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// The operation.
    pub kind: OpKind,
    /// Source slots (`src[..kind.arity()]` are live).
    pub src: [u32; 3],
    /// Destination slot (the gate's own index).
    pub dst: u32,
}

/// Work counters of one tape execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TapeRun {
    /// Ops evaluated.
    pub executed: u64,
    /// Ops skipped by the dirty-span scan (quiescent tape spans).
    pub skipped: u64,
}

/// The topo-sorted combinational logic of a [`Netlist`], lowered to a flat
/// op tape (tape position `p` = topological position `p`; `dst` slot = gate
/// index). Sequential elements (inputs, flip-flops, ties) own slots in the
/// slab but no tape entry — the clock-edge driver writes them.
#[derive(Debug, Clone)]
pub struct CompiledTape {
    ops: Vec<Op>,
    slots: u32,
    /// Slots not produced by any op (inputs, flip-flops, ties) — always
    /// readable; everything else must be written before read.
    external: Vec<u64>,
    /// CSR: gate index → tape positions of the ops reading that slot.
    consumer_index: Vec<u32>,
    consumer_ops: Vec<u32>,
    /// `(ff_slot, d_slot)` capture pairs for every connected flip-flop.
    captures: Vec<(u32, u32)>,
    /// CSR: gate index → flip-flop slots whose D pin is that gate.
    dd_index: Vec<u32>,
    dd_targets: Vec<u32>,
}

fn csr<T: Copy>(n: usize, pairs: &[(u32, T)]) -> (Vec<u32>, Vec<T>) {
    let mut index = vec![0u32; n + 1];
    for &(k, _) in pairs {
        index[k as usize + 1] += 1;
    }
    for i in 0..n {
        index[i + 1] += index[i];
    }
    let mut data: Vec<T> = Vec::with_capacity(pairs.len());
    // Pairs arrive sorted by key (we build them in slot order), so a single
    // pass appends each bucket contiguously.
    let mut sorted: Vec<(u32, T)> = pairs.to_vec();
    sorted.sort_by_key(|&(k, _)| k);
    for &(_, v) in &sorted {
        data.push(v);
    }
    (index, data)
}

impl CompiledTape {
    /// Lowers a netlist's combinational topo order into an op tape.
    pub fn compile(netlist: &Netlist) -> Self {
        // terse-analyze: allow(AZ005): slot count equals the u32-indexed gate count.
        let slots = netlist.gate_count() as u32;
        let mut ops = Vec::with_capacity(netlist.topo_order().len());
        let mut consumers: Vec<(u32, u32)> = Vec::new();
        for (pos, &g) in netlist.topo_order().iter().enumerate() {
            let dst = g.index() as u32;
            let fanin = netlist.fanin(g);
            let mut src = [dst; 3];
            for (s, f) in src.iter_mut().zip(fanin) {
                *s = f.index() as u32;
            }
            let kind = match netlist.kind(g) {
                GateKind::Buf => OpKind::Buf,
                GateKind::Not => OpKind::Not,
                GateKind::And => OpKind::And,
                GateKind::Or => OpKind::Or,
                GateKind::Nand => OpKind::Nand,
                GateKind::Nor => OpKind::Nor,
                GateKind::Xor => OpKind::Xor,
                GateKind::Xnor => OpKind::Xnor,
                GateKind::Mux => OpKind::Mux,
                // `topo_order` contains combinational gates only.
                _ => continue,
            };
            for f in fanin {
                consumers.push((f.index() as u32, pos as u32));
            }
            ops.push(Op { kind, src, dst });
        }
        let mut external = vec![0u64; (slots as usize).div_ceil(64)];
        for i in 0..slots as usize {
            external[i >> 6] |= 1 << (i & 63);
        }
        for op in &ops {
            external[(op.dst >> 6) as usize] &= !(1 << (op.dst & 63));
        }
        let (consumer_index, consumer_ops) = csr(slots as usize, &consumers);
        let mut captures = Vec::new();
        let mut dd: Vec<(u32, u32)> = Vec::new();
        for g in netlist.gate_ids() {
            if netlist.kind(g) == GateKind::FlipFlop {
                if let Ok(d) = netlist.ff_input(g) {
                    captures.push((g.index() as u32, d.index() as u32));
                    dd.push((d.index() as u32, g.index() as u32));
                }
            }
        }
        let (dd_index, dd_targets) = csr(slots as usize, &dd);
        CompiledTape {
            ops,
            slots,
            external,
            consumer_index,
            consumer_ops,
            captures,
            dd_index,
            dd_targets,
        }
    }

    /// Builds a tape directly from raw ops — the *unchecked* fixture path
    /// for static-analysis testing (the compiler path via
    /// [`CompiledTape::compile`] upholds the write-before-read and
    /// single-writer invariants by construction; this one does not).
    /// `external_slots` lists the slots fed by the clock edge rather than
    /// by the tape.
    pub fn from_raw_ops(ops: Vec<Op>, slots: u32, external_slots: &[u32]) -> Self {
        let mut external = vec![0u64; (slots as usize).div_ceil(64)];
        for &s in external_slots {
            if s < slots {
                external[(s >> 6) as usize] |= 1 << (s & 63);
            }
        }
        CompiledTape {
            ops,
            slots,
            external,
            consumer_index: vec![0; slots as usize + 1],
            consumer_ops: Vec::new(),
            captures: Vec::new(),
            dd_index: vec![0; slots as usize + 1],
            dd_targets: Vec::new(),
        }
    }

    /// The lowered ops, in tape (= topological) order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops on the tape.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Slab length (one `u64` lane word per gate).
    pub fn slot_count(&self) -> u32 {
        self.slots
    }

    /// Whether `slot` is written by the clock edge (input/flip-flop/tie)
    /// rather than by a tape op.
    pub fn is_external(&self, slot: u32) -> bool {
        slot < self.slots && self.external[(slot >> 6) as usize] >> (slot & 63) & 1 == 1
    }

    /// Words needed for a dirty bitmap over tape positions.
    pub fn dirty_words(&self) -> usize {
        self.ops.len().div_ceil(64)
    }

    #[inline]
    fn eval(op: &Op, slab: &[u64]) -> u64 {
        let a = slab[op.src[0] as usize];
        match op.kind {
            OpKind::Buf => a,
            OpKind::Not => !a,
            OpKind::And => a & slab[op.src[1] as usize],
            OpKind::Or => a | slab[op.src[1] as usize],
            OpKind::Nand => !(a & slab[op.src[1] as usize]),
            OpKind::Nor => !(a | slab[op.src[1] as usize]),
            OpKind::Xor => a ^ slab[op.src[1] as usize],
            OpKind::Xnor => !(a ^ slab[op.src[1] as usize]),
            // src = [sel, a, b]: sel ? b : a, lane-wise.
            OpKind::Mux => {
                let sel = a;
                (sel & slab[op.src[2] as usize]) | (!sel & slab[op.src[1] as usize])
            }
        }
    }

    /// Executes every op in tape order over `slab`. Changed slots are
    /// appended to `touched` with their 64-lane toggle mask in
    /// `toggle[slot]` (callers reset `toggle` via `touched` between
    /// cycles).
    pub fn execute_full(
        &self,
        slab: &mut [u64],
        touched: &mut Vec<u32>,
        toggle: &mut [u64],
    ) -> TapeRun {
        for op in &self.ops {
            let new = Self::eval(op, slab);
            let d = op.dst as usize;
            let changed = new ^ slab[d];
            if changed != 0 {
                slab[d] = new;
                toggle[d] = changed;
                touched.push(op.dst);
            }
        }
        TapeRun {
            executed: self.ops.len() as u64,
            skipped: 0,
        }
    }

    /// Marks the tape consumers of `slot` dirty and forwards its slab value
    /// to any flip-flop D pin it drives — the event propagation rule for a
    /// toggled clock-edge source.
    pub fn touch_source(&self, slot: u32, slab: &[u64], dirty: &mut [u64], ff_next: &mut [u64]) {
        let s = slot as usize;
        for &pos in
            &self.consumer_ops[self.consumer_index[s] as usize..self.consumer_index[s + 1] as usize]
        {
            dirty[(pos >> 6) as usize] |= 1 << (pos & 63);
        }
        for &ff in &self.dd_targets[self.dd_index[s] as usize..self.dd_index[s + 1] as usize] {
            ff_next[ff as usize] = slab[s];
        }
    }

    /// Re-captures every flip-flop's D value into `ff_next` — the reference
    /// end-of-cycle semantics (used by the full sweep and by the first
    /// settling sweep of the event kernel).
    pub fn capture_all(&self, slab: &[u64], ff_next: &mut [u64]) {
        for &(ff, d) in &self.captures {
            ff_next[ff as usize] = slab[d as usize];
        }
    }

    /// Drains the dirty bitmap over tape positions in ascending order,
    /// evaluating only marked ops; toggles mark their consumers dirty
    /// (always at larger positions — topo order — so each op runs at most
    /// once) and forward D-pin edges into `ff_next`. Quiescent 64-op spans
    /// cost one word test.
    pub fn execute_event(
        &self,
        slab: &mut [u64],
        dirty: &mut [u64],
        touched: &mut Vec<u32>,
        toggle: &mut [u64],
        ff_next: &mut [u64],
    ) -> TapeRun {
        let mut run = TapeRun::default();
        let mut wi = 0;
        while wi < dirty.len() {
            let w = dirty[wi];
            if w == 0 {
                wi += 1;
                continue;
            }
            dirty[wi] = w & (w - 1); // clear the lowest set bit
            let pos = (wi << 6) + w.trailing_zeros() as usize;
            let op = &self.ops[pos];
            run.executed += 1;
            let new = Self::eval(op, slab);
            let d = op.dst as usize;
            let changed = new ^ slab[d];
            if changed != 0 {
                slab[d] = new;
                toggle[d] = changed;
                touched.push(op.dst);
                self.touch_source(op.dst, slab, dirty, ff_next);
            }
        }
        run.skipped = self.ops.len() as u64 - run.executed;
        run
    }

    /// Marks every tape position dirty (the first settling sweep of the
    /// event kernel).
    pub fn mark_all_dirty(&self, dirty: &mut [u64]) {
        for w in dirty.iter_mut() {
            *w = u64::MAX;
        }
        let tail = self.ops.len() % 64;
        if tail != 0 {
            if let Some(last) = dirty.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::netlist::EndpointClass;

    #[test]
    fn compile_covers_topo_order() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let bb = b.input("b", 0).unwrap();
        let g1 = b.gate(GateKind::Nand, &[a, bb], 0).unwrap();
        let g2 = b.gate(GateKind::Xor, &[g1, a], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, g2).unwrap();
        let n = b.finish().unwrap();
        let tape = CompiledTape::compile(&n);
        assert_eq!(tape.len(), n.topo_order().len());
        assert!(tape.is_external(a.index() as u32));
        assert!(tape.is_external(ff.index() as u32));
        assert!(!tape.is_external(g1.index() as u32));
    }

    #[test]
    fn full_execution_matches_gate_eval() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let s = b.input("s", 0).unwrap();
        let inv = b.gate(GateKind::Not, &[a], 0).unwrap();
        let mux = b.gate(GateKind::Mux, &[s, a, inv], 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, mux).unwrap();
        let n = b.finish().unwrap();
        let tape = CompiledTape::compile(&n);
        let mut slab = vec![0u64; n.gate_count()];
        let mut toggle = vec![0u64; n.gate_count()];
        let mut touched = Vec::new();
        // Lane 0: a=1, s=0 → mux = a = 1. Lane 1: a=1, s=1 → mux = !a = 0.
        slab[a.index()] = 0b11;
        slab[s.index()] = 0b10;
        tape.execute_full(&mut slab, &mut touched, &mut toggle);
        assert_eq!(slab[inv.index()] & 0b11, 0b00);
        assert_eq!(slab[mux.index()] & 0b11, 0b01);
        assert!(touched.contains(&(mux.index() as u32)));
    }

    #[test]
    fn event_execution_skips_quiescent_spans() {
        let mut b = NetlistBuilder::new(1);
        let a = b.input("a", 0).unwrap();
        let mut prev = a;
        for _ in 0..10 {
            prev = b.gate(GateKind::Not, &[prev], 0).unwrap();
        }
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, prev).unwrap();
        let n = b.finish().unwrap();
        let tape = CompiledTape::compile(&n);
        let mut slab = vec![0u64; n.gate_count()];
        let mut toggle = vec![0u64; n.gate_count()];
        let mut touched = Vec::new();
        let mut ff_next = vec![0u64; n.gate_count()];
        let mut dirty = vec![0u64; tape.dirty_words()];
        tape.mark_all_dirty(&mut dirty);
        let settle = tape.execute_event(
            &mut slab,
            &mut dirty,
            &mut touched,
            &mut toggle,
            &mut ff_next,
        );
        assert_eq!(settle.executed, tape.len() as u64);
        // Nothing toggles at the inputs: the whole tape is quiescent.
        touched.clear();
        let quiet = tape.execute_event(
            &mut slab,
            &mut dirty,
            &mut touched,
            &mut toggle,
            &mut ff_next,
        );
        assert_eq!(quiet.executed, 0);
        assert_eq!(quiet.skipped, tape.len() as u64);
    }

    #[test]
    fn raw_tape_reports_externals() {
        let ops = vec![Op {
            kind: OpKind::And,
            src: [0, 1, 2],
            dst: 2,
        }];
        let tape = CompiledTape::from_raw_ops(ops, 3, &[0, 1]);
        assert!(tape.is_external(0));
        assert!(!tape.is_external(2));
        assert_eq!(tape.len(), 1);
    }
}
