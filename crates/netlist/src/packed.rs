//! Bit-parallel 64-lane packed simulation over the compiled op tape.
//!
//! Every net holds a `u64`: bit `l` is the net's boolean value in lane `l`,
//! so one pass of the tape evaluates up to 64 independent simulations (64
//! chips or 64 input vectors of a Monte-Carlo cohort) with single bitwise
//! AND/OR/XOR/NOT instructions. Per-lane activation sets extracted with
//! [`PackedSimulator::lane_activation`] are **bitwise identical** to what a
//! scalar [`crate::sim::Simulator`] produces for that lane's stimulus: the
//! packed kernel replicates the reference cycle semantics exactly — clock
//! edge (forced-else-captured flip-flops, driven inputs), combinational
//! propagation in topological order, D-pin recapture — just 64 lanes at a
//! time.

use crate::bitset::BitSet;
use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;
use crate::tape::{CompiledTape, TapeRun};

/// Maximum lanes per packed word.
pub const LANES: usize = 64;

/// A 64-lane bit-parallel simulator over a [`Netlist`].
///
/// Lanes are independent simulations: drive each lane's inputs and forced
/// flip-flops separately, then one [`PackedSimulator::step`] advances all of
/// them. Combinational propagation runs over a [`CompiledTape`] in either
/// full-sweep mode (every op, straight-line) or event-driven mode (dirty
/// tape spans only).
///
/// # Example
/// ```
/// use terse_netlist::builder::NetlistBuilder;
/// use terse_netlist::gate::GateKind;
/// use terse_netlist::netlist::EndpointClass;
/// use terse_netlist::packed::PackedSimulator;
///
/// # fn main() -> Result<(), terse_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(1);
/// let a = b.input("a", 0)?;
/// let q = b.flip_flop("q", EndpointClass::Data, 0)?;
/// let g = b.gate(GateKind::Not, &[a], 0)?;
/// b.connect_ff_input(q, g)?;
/// let n = b.finish()?;
///
/// let mut sim = PackedSimulator::new(&n, 2);
/// sim.set_input(a, 0, true);   // lane 0 drives a=1
/// sim.set_input(a, 1, false);  // lane 1 drives a=0
/// sim.step();
/// assert!(!sim.value(g, 0));   // NOT(1) = 0 in lane 0
/// assert!(sim.value(g, 1));    // NOT(0) = 1 in lane 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedSimulator<'n> {
    netlist: &'n Netlist,
    tape: CompiledTape,
    lanes: u32,
    /// Packed current value of every gate (slot = gate index).
    slab: Vec<u64>,
    /// Packed captured D values waiting to appear on Q at the next edge.
    ff_next: Vec<u64>,
    /// Per-gate lane mask of pending forced writes, and their values.
    forced_mask: Vec<u64>,
    forced_val: Vec<u64>,
    /// Dirty bitmap over tape positions (event mode).
    dirty: Vec<u64>,
    /// Slots whose value changed in the current cycle.
    touched: Vec<u32>,
    /// Per-slot 64-lane toggle mask of the current cycle (sparse: only
    /// entries listed in `touched` are live).
    toggle: Vec<u64>,
    /// Sequential elements updated at the clock edge.
    seq: Vec<GateId>,
    event_driven: bool,
    settled: bool,
    cycle: u64,
    ops_executed: u64,
    ops_skipped: u64,
}

impl<'n> PackedSimulator<'n> {
    /// Creates an event-driven packed simulator with `lanes` live lanes
    /// (clamped to `1..=64`), all nets initially low (ties at their
    /// constant).
    pub fn new(netlist: &'n Netlist, lanes: usize) -> Self {
        Self::with_mode(netlist, lanes, true)
    }

    /// Creates a full-sweep packed simulator: every tape op executes every
    /// cycle (the `FullScan` analogue; reference semantics, no dirty
    /// tracking).
    pub fn full_sweep(netlist: &'n Netlist, lanes: usize) -> Self {
        Self::with_mode(netlist, lanes, false)
    }

    fn with_mode(netlist: &'n Netlist, lanes: usize, event_driven: bool) -> Self {
        let n = netlist.gate_count();
        let tape = CompiledTape::compile(netlist);
        let seq: Vec<GateId> = netlist
            .gate_ids()
            .filter(|&g| matches!(netlist.kind(g), GateKind::FlipFlop | GateKind::Input))
            .collect();
        let mut slab = vec![0u64; n];
        for id in netlist.gate_ids() {
            if let GateKind::Tie(true) = netlist.kind(id) {
                slab[id.index()] = u64::MAX;
            }
        }
        let dirty = vec![0u64; tape.dirty_words()];
        PackedSimulator {
            netlist,
            tape,
            lanes: lanes.clamp(1, LANES) as u32,
            slab,
            ff_next: vec![0u64; n],
            forced_mask: vec![0u64; n],
            forced_val: vec![0u64; n],
            dirty,
            touched: Vec::new(),
            toggle: vec![0u64; n],
            seq,
            event_driven,
            settled: false,
            cycle: 0,
            ops_executed: 0,
            ops_skipped: 0,
        }
    }

    /// Seeds the packed state from a scalar simulator's state (lane 0),
    /// used by `Simulator` to switch strategies at a cycle boundary.
    pub(crate) fn from_scalar_state(
        netlist: &'n Netlist,
        event_driven: bool,
        values: &[bool],
        ff_next: &[bool],
        settled: bool,
    ) -> Self {
        let mut sim = Self::with_mode(netlist, 1, event_driven);
        for (i, &v) in values.iter().enumerate() {
            sim.slab[i] = if v { 1 } else { 0 };
        }
        for (i, &v) in ff_next.iter().enumerate() {
            sim.ff_next[i] = if v { 1 } else { 0 };
        }
        sim.settled = settled;
        sim
    }

    /// Copies lane-0 state back into scalar vectors (strategy switch).
    pub(crate) fn to_scalar_state(&self, values: &mut [bool], ff_next: &mut [bool]) -> bool {
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.slab[i] & 1 == 1;
        }
        for (i, v) in ff_next.iter_mut().enumerate() {
            *v = self.ff_next[i] & 1 == 1;
        }
        self.settled
    }

    /// The netlist under simulation.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Number of live lanes (1–64).
    pub fn lane_count(&self) -> usize {
        self.lanes as usize
    }

    /// Clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cumulative tape ops executed — each one evaluates a gate in *all*
    /// lanes at once (compare with the scalar simulator's per-lane
    /// `gates_evaluated`).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Cumulative tape ops skipped by the dirty-span scan.
    pub fn ops_skipped(&self) -> u64 {
        self.ops_skipped
    }

    /// Tape length (ops per full sweep).
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// The compiled tape driving this simulator.
    pub fn tape(&self) -> &CompiledTape {
        &self.tape
    }

    /// Output value of a gate in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `lane` is out of range.
    pub fn value(&self, id: GateId, lane: usize) -> bool {
        assert!(lane < self.lanes as usize, "lane out of range");
        self.slab[id.index()] >> lane & 1 == 1
    }

    /// Packed 64-lane word of a gate's output.
    pub fn value_word(&self, id: GateId) -> u64 {
        self.slab[id.index()]
    }

    /// Reads a named bus as an integer (LSB first) in one lane.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    pub fn bus_value(&self, name: &str, lane: usize) -> crate::Result<u64> {
        let ids = self.netlist.bus(name)?;
        let mut v = 0u64;
        for (i, &g) in ids.iter().enumerate().take(64) {
            if self.value(g, lane) {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    /// Drives a primary input in one lane (takes effect at the next step).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input port or `lane` is out of range.
    pub fn set_input(&mut self, id: GateId, lane: usize, value: bool) {
        assert_eq!(
            self.netlist.kind(id),
            GateKind::Input,
            "set_input requires an input port"
        );
        self.force_lane(id, lane, value);
    }

    /// Drives a named input bus in one lane from an integer (LSB first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    ///
    /// # Panics
    ///
    /// Panics if any bus bit is not an input port.
    pub fn set_input_bus(&mut self, name: &str, lane: usize, value: u64) -> crate::Result<()> {
        let ids: Vec<GateId> = self.netlist.bus(name)?.to_vec();
        for (i, g) in ids.into_iter().enumerate() {
            self.set_input(g, lane, (value >> i.min(63)) & 1 == 1 && i < 64);
        }
        Ok(())
    }

    /// Forces a flip-flop's Q output in one lane for the next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a flip-flop or `lane` is out of range.
    pub fn force_ff(&mut self, id: GateId, lane: usize, value: bool) {
        assert_eq!(
            self.netlist.kind(id),
            GateKind::FlipFlop,
            "force_ff requires a flip-flop"
        );
        self.force_lane(id, lane, value);
    }

    /// Forces a named flip-flop bank in one lane from an integer (LSB
    /// first).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetlistError::UnknownName`] for unknown buses.
    ///
    /// # Panics
    ///
    /// Panics if any bus bit is not a flip-flop.
    pub fn force_ff_bus(&mut self, name: &str, lane: usize, value: u64) -> crate::Result<()> {
        let ids: Vec<GateId> = self.netlist.bus(name)?.to_vec();
        for (i, g) in ids.into_iter().enumerate() {
            self.force_ff(g, lane, i < 64 && (value >> i) & 1 == 1);
        }
        Ok(())
    }

    fn force_lane(&mut self, id: GateId, lane: usize, value: bool) {
        assert!(lane < self.lanes as usize, "lane out of range");
        let i = id.index();
        let bit = 1u64 << lane;
        self.forced_mask[i] |= bit;
        if value {
            self.forced_val[i] |= bit;
        } else {
            self.forced_val[i] &= !bit;
        }
    }

    /// Advances one clock cycle in every lane. Per-lane activation sets of
    /// this cycle are read with [`PackedSimulator::lane_activation`].
    pub fn step(&mut self) {
        // Reset the previous cycle's toggle records.
        for &s in &self.touched {
            self.toggle[s as usize] = 0;
        }
        self.touched.clear();
        let first = !self.settled;
        let mark_events = self.event_driven && !first;
        // Clock edge: flip-flops take forced-else-captured values, inputs
        // take driven values (undriven lanes hold). Event propagation is
        // deferred until every sequential element has captured: a direct
        // FF→FF D edge must forward the driver's *new* Q only after the
        // downstream flip-flop has sampled the old one (all edges fire
        // simultaneously in the reference semantics).
        for k in 0..self.seq.len() {
            let i = self.seq[k].index();
            let mask = self.forced_mask[i];
            let new = if self.netlist.kind(self.seq[k]) == GateKind::FlipFlop {
                (self.ff_next[i] & !mask) | (self.forced_val[i] & mask)
            } else {
                if mask == 0 {
                    continue;
                }
                (self.slab[i] & !mask) | (self.forced_val[i] & mask)
            };
            self.forced_mask[i] = 0;
            let changed = new ^ self.slab[i];
            if changed != 0 {
                self.slab[i] = new;
                self.toggle[i] = changed;
                // terse-analyze: allow(AZ005): slab index is a dense gate index, < 2^32.
                self.touched.push(i as u32);
            }
        }
        if mark_events {
            // `touched` holds exactly the edge-toggled slots at this point.
            for k in 0..self.touched.len() {
                let s = self.touched[k];
                self.tape
                    .touch_source(s, &self.slab, &mut self.dirty, &mut self.ff_next);
            }
        }
        // Combinational propagation over the tape.
        let run: TapeRun = if !self.event_driven {
            let r = self
                .tape
                .execute_full(&mut self.slab, &mut self.touched, &mut self.toggle);
            self.tape.capture_all(&self.slab, &mut self.ff_next);
            r
        } else if first {
            self.tape.mark_all_dirty(&mut self.dirty);
            let r = self.tape.execute_event(
                &mut self.slab,
                &mut self.dirty,
                &mut self.touched,
                &mut self.toggle,
                &mut self.ff_next,
            );
            // Establish the `ff_next == slab[D]` invariant the incremental
            // D-edge forwarding maintains from now on.
            self.tape.capture_all(&self.slab, &mut self.ff_next);
            r
        } else {
            self.tape.execute_event(
                &mut self.slab,
                &mut self.dirty,
                &mut self.touched,
                &mut self.toggle,
                &mut self.ff_next,
            )
        };
        self.ops_executed += run.executed;
        self.ops_skipped += run.skipped;
        self.settled = true;
        self.cycle += 1;
    }

    /// Slots whose value changed in the most recent cycle (any lane).
    pub fn touched_slots(&self) -> &[u32] {
        &self.touched
    }

    /// 64-lane toggle mask of a gate for the most recent cycle.
    pub fn toggle_word(&self, id: GateId) -> u64 {
        self.toggle[id.index()]
    }

    /// The activation set `VCD(t)` of the most recent cycle in one lane —
    /// bitwise identical to the scalar simulator's [`BitSet`] for the same
    /// per-lane stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_activation(&self, lane: usize) -> BitSet {
        assert!(lane < self.lanes as usize, "lane out of range");
        let mut act = BitSet::new(self.netlist.gate_count());
        for &s in &self.touched {
            if self.toggle[s as usize] >> lane & 1 == 1 {
                act.insert(s as usize);
            }
        }
        act
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::netlist::EndpointClass;
    use crate::sim::{SimStrategy, Simulator};

    /// 2-bit counter (same circuit as the scalar sim tests).
    fn counter() -> Netlist {
        let mut b = NetlistBuilder::new(1);
        let q0 = b.flip_flop("q0", EndpointClass::Control, 0).unwrap();
        let q1 = b.flip_flop("q1", EndpointClass::Control, 0).unwrap();
        let n0 = b.gate(GateKind::Not, &[q0], 0).unwrap();
        let t1 = b.gate(GateKind::Xor, &[q1, q0], 0).unwrap();
        b.connect_ff_input(q0, n0).unwrap();
        b.connect_ff_input(q1, t1).unwrap();
        b.name_bus("count", &[q0, q1]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn all_lanes_count_in_lockstep() {
        let n = counter();
        let mut sim = PackedSimulator::new(&n, 64);
        let mut seen = Vec::new();
        for _ in 0..5 {
            sim.step();
            seen.push(sim.bus_value("count", 0).unwrap());
            // Identical stimulus in every lane → identical values.
            for lane in 1..64 {
                assert_eq!(sim.bus_value("count", lane).unwrap(), seen[seen.len() - 1]);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn lanes_diverge_under_distinct_stimulus() {
        let mut b = NetlistBuilder::new(1);
        let xs = b.input_bus("x", 4, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Data, 0).unwrap();
        b.connect_ff_input(ff, xs[0]).unwrap();
        let n = b.finish().unwrap();
        let mut sim = PackedSimulator::new(&n, 3);
        sim.set_input_bus("x", 0, 0xA).unwrap();
        sim.set_input_bus("x", 1, 0x5).unwrap();
        sim.set_input_bus("x", 2, 0xF).unwrap();
        sim.step();
        assert_eq!(sim.bus_value("x", 0).unwrap(), 0xA);
        assert_eq!(sim.bus_value("x", 1).unwrap(), 0x5);
        assert_eq!(sim.bus_value("x", 2).unwrap(), 0xF);
    }

    #[test]
    fn lane_activation_matches_scalar_sim() {
        let n = counter();
        let mut scalar = Simulator::with_strategy(&n, SimStrategy::FullScan);
        let mut packed = PackedSimulator::new(&n, 7);
        for cycle in 0..12 {
            let act = scalar.step();
            packed.step();
            for lane in 0..7 {
                assert_eq!(
                    packed.lane_activation(lane),
                    act,
                    "lane {lane} diverged at cycle {cycle}"
                );
            }
            for g in n.gate_ids() {
                assert_eq!(packed.value(g, 3), scalar.value(g));
            }
        }
    }

    #[test]
    fn full_sweep_and_event_modes_agree() {
        let n = counter();
        let mut ev = PackedSimulator::new(&n, 5);
        let mut full = PackedSimulator::full_sweep(&n, 5);
        for cycle in 0..16 {
            ev.step();
            full.step();
            for lane in 0..5 {
                assert_eq!(
                    ev.lane_activation(lane),
                    full.lane_activation(lane),
                    "cycle {cycle}"
                );
            }
        }
        assert!(ev.ops_executed() <= full.ops_executed());
        assert_eq!(full.ops_skipped(), 0);
    }

    #[test]
    fn forcing_overrides_capture_per_lane() {
        let n = counter();
        let q0 = n.bus("q0").unwrap()[0];
        let mut sim = PackedSimulator::new(&n, 2);
        sim.step();
        sim.force_ff(q0, 0, false); // lane 0 held, lane 1 free-runs
        sim.step();
        assert!(!sim.value(q0, 0));
        assert!(sim.value(q0, 1));
    }

    #[test]
    fn tie_cells_hold_value_in_every_lane() {
        let mut b = NetlistBuilder::new(1);
        let one = b.tie(true, 0).unwrap();
        let ff = b.flip_flop("q", EndpointClass::Control, 0).unwrap();
        b.connect_ff_input(ff, one).unwrap();
        let n = b.finish().unwrap();
        let mut sim = PackedSimulator::new(&n, 64);
        assert_eq!(sim.value_word(one), u64::MAX);
        sim.step();
        sim.step();
        for lane in 0..64 {
            assert!(sim.value(ff, lane));
        }
    }
}
