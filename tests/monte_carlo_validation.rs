//! Validates the analytic estimator against Monte Carlo error injection —
//! the ground-truth comparison the paper could not afford (Section 5 notes
//! its baseline simulator was too slow; ours is not, on scaled kernels).

use terse::{Framework, Workload};
use terse_isa::Cfg;
use terse_sim::monte_carlo::{self, MonteCarloConfig};

/// A kernel with enough timing exposure for a measurable error rate.
fn kernel() -> Workload {
    Workload::from_asm(
        "mc-kernel",
        r"
            ld   r1, r0, 0
            li   r6, 0x00FFFFFF
        loop:
            add  r2, r2, r6
            mul  r3, r1, r2
            sub  r4, r3, r2
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        ",
    )
    .expect("assembles")
    .with_input(|m| m.store(0, 40).expect("store"))
    .with_input(|m| m.store(0, 55).expect("store"))
}

#[test]
fn analytic_lambda_matches_monte_carlo_mean() {
    let samples = 2;
    let fw = Framework::builder()
        .samples(samples)
        .build()
        .expect("framework");
    let w = kernel();
    let cfg = Cfg::from_program(w.program());
    let profiles = fw.profile_workload(&w, &cfg).expect("profiles");
    let model = fw.train_model(&w, &cfg, &profiles).expect("model");
    let estimate = fw.estimate(&w, &cfg, &profiles, &model).expect("estimate");

    // Chip error counts are extremely bimodal at this operating point (a
    // chip errs on ~every loop iteration or never), so the MC mean only
    // concentrates with a decent chip population — 512 keeps the expected
    // number of erring chips around ten, well clear of the tolerance.
    let chips = fw.sample_chips(512, 0xBEEF).expect("chips");
    let counts = monte_carlo::error_counts(
        w.program(),
        &model,
        &chips,
        samples,
        fw.correction(),
        |idx, m| {
            m.store(0, if idx == 0 { 40 } else { 55 }).expect("store");
        },
        MonteCarloConfig::default(),
    )
    .expect("monte carlo");
    let pooled = monte_carlo::pooled_counts(&counts);
    let mc_mean = pooled.iter().sum::<u64>() as f64 / pooled.len() as f64;
    let analytic = estimate.lambda.mean();
    // The analytic λ and the MC mean must agree within MC noise plus model
    // coarseness (the datapath model bins features; MC replays exact
    // sequences — a ~35% band is the honest tolerance at this kernel size).
    let tol = (analytic.max(mc_mean) * 0.35).max(1.5);
    assert!(
        (analytic - mc_mean).abs() < tol,
        "analytic λ {analytic} vs MC mean {mc_mean} (tolerance {tol})"
    );
    assert!(
        mc_mean > 0.0,
        "the kernel must actually err at this operating point"
    );
}

#[test]
fn estimate_cdf_brackets_monte_carlo_cdf() {
    let samples = 2;
    let fw = Framework::builder()
        .samples(samples)
        .build()
        .expect("framework");
    let w = kernel();
    let cfg = Cfg::from_program(w.program());
    let profiles = fw.profile_workload(&w, &cfg).expect("profiles");
    let model = fw.train_model(&w, &cfg, &profiles).expect("model");
    let estimate = fw.estimate(&w, &cfg, &profiles, &model).expect("estimate");

    // 512 chips for the same reason as in the λ test: the count
    // distribution is bimodal across chips and needs population size to
    // concentrate.
    let chips = fw.sample_chips(512, 0xF00D).expect("chips");
    let counts = monte_carlo::error_counts(
        w.program(),
        &model,
        &chips,
        samples,
        fw.correction(),
        |idx, m| {
            m.store(0, if idx == 0 { 40 } else { 55 }).expect("store");
        },
        MonteCarloConfig::default(),
    )
    .expect("monte carlo");
    let pooled = monte_carlo::pooled_counts(&counts);
    let n = pooled.len() as f64;
    let max_k = pooled.iter().copied().max().unwrap_or(1);
    let mut inside = 0usize;
    let mut total = 0usize;
    for k in 0..=max_k {
        let mc_cdf = pooled.iter().filter(|&&c| c <= k).count() as f64 / n;
        let b = estimate
            .rate_cdf(k as f64 / estimate.total_instructions)
            .expect("cdf");
        // Margin for MC sampling noise in the empirical CDF.
        if b.lower - 0.12 <= mc_cdf && mc_cdf <= b.upper + 0.12 {
            inside += 1;
        }
        total += 1;
    }
    assert!(
        inside * 10 >= total * 7,
        "bound envelope must bracket the MC CDF at >=70% of points: {inside}/{total}"
    );
}
