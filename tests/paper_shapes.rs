//! Shape tests: the qualitative claims of the paper's evaluation that the
//! reproduction must preserve (absolute numbers are substrate-dependent;
//! see EXPERIMENTS.md).

use terse::{Framework, OperatingConfig, TsPerformanceModel};
use terse_workloads::DatasetSize;

#[test]
fn operating_points_are_ordered_like_section_6_1() {
    // Paper: sign-off 718 MHz < first failure 810 MHz (1.13x) < working
    // 825 MHz (1.15x). Same ordering and factor structure here.
    let fw = Framework::builder().samples(1).build().expect("framework");
    let op = fw.operating_point();
    assert!(op.signoff_frequency_ghz() < op.first_failure_frequency_ghz());
    assert!(op.first_failure_frequency_ghz() < op.working_frequency_ghz());
    assert!(op.first_failure_factor() > 1.0);
    assert!(op.first_failure_factor() < op.config.overclock);
}

#[test]
fn performance_model_reproduces_section_6_3() {
    let perf = TsPerformanceModel::paper_default();
    // "an error rate of 0.4% results in a 4.93% improvement".
    assert!((perf.improvement_percent(0.004) - 4.93).abs() < 0.01);
    // gsm.decode's 1.068% → 8.46% degradation.
    assert!((perf.improvement_percent(0.01068) + 8.46).abs() < 0.02);
    // Positive below the crossover, negative above.
    let c = perf.crossover_rate();
    assert!(perf.improvement_percent(c * 0.9) > 0.0);
    assert!(perf.improvement_percent(c * 1.1) < 0.0);
}

#[test]
fn error_rate_grows_with_overclock() {
    // The fundamental monotonicity behind Figure 3's premise: pushing the
    // working frequency deeper into the slack distribution increases the
    // error rate.
    let spec = terse_workloads::by_name("gsm.encode").expect("registered");
    let mut prev = -1.0;
    for oc in [1.25, 1.33, 1.41] {
        let fw = Framework::builder()
            .samples(2)
            .operating(OperatingConfig {
                overclock: oc,
                ..OperatingConfig::default()
            })
            .build()
            .expect("framework");
        let w = spec
            .workload(DatasetSize::Small, 2, 0xDAC19)
            .expect("workload");
        let rate = fw.run(&w).expect("run").estimate.mean_error_rate();
        assert!(
            rate >= prev - 1e-9,
            "rate must not decrease with overclock: {rate} after {prev}"
        );
        prev = rate;
    }
    assert!(prev > 0.0, "the deepest overclock must show errors");
}

#[test]
fn bounds_scale_with_error_rate() {
    // Table 2's d_K(R_E, R̄_E) column grows with the error rate (gsm.decode
    // max, patricia min in the paper). Check the correlation sign over a
    // few benchmarks.
    let fw = Framework::builder().samples(2).build().expect("framework");
    let mut pairs = Vec::new();
    for name in ["typeset", "bitcount", "gsm.encode", "tiff2bw"] {
        let spec = terse_workloads::by_name(name).expect("registered");
        let w = spec
            .workload(DatasetSize::Small, 2, 0xDAC19)
            .expect("workload");
        let r = fw.run(&w).expect("run");
        pairs.push((r.estimate.mean_error_rate(), r.estimate.dk_count));
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    // The largest-rate benchmark must not have the smallest bound.
    let bounds: Vec<f64> = pairs.iter().map(|&(_, d)| d).collect();
    let max_rate_bound = *bounds.last().expect("non-empty");
    let min_bound = bounds.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        max_rate_bound >= min_bound,
        "bounds should track rates: {pairs:?}"
    );
}

#[test]
fn per_application_rates_differ() {
    // The paper's headline: "applications experience different DTS and,
    // consequently, different numbers of timing errors" — rates must spread
    // across benchmarks, not collapse to one value.
    let fw = Framework::builder().samples(2).build().expect("framework");
    let mut rates = Vec::new();
    for name in ["typeset", "bitcount", "gsm.encode"] {
        let spec = terse_workloads::by_name(name).expect("registered");
        let w = spec
            .workload(DatasetSize::Small, 2, 0xDAC19)
            .expect("workload");
        rates.push(fw.run(&w).expect("run").estimate.mean_error_rate());
    }
    let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let max = rates.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max > min * 1.5 + 1e-9,
        "application-specific analysis must discriminate: {rates:?}"
    );
}

#[test]
fn correction_scheme_changes_conditional_probabilities() {
    // Section 4.1: the correction mechanism makes p^e differ from p^c
    // because the next instruction transitions from the corrected state.
    // Observable consequence: features extracted against a flushed bus
    // differ from in-sequence features.
    use terse_isa::assemble;
    use terse_sim::features::{extract, BusState};
    use terse_sim::machine::Machine;
    let p = assemble("li r1, 0xFFFF00\nadd r2, r1, r1\nadd r3, r2, r2\nhalt\n").expect("asm");
    let mut m = Machine::new(&p, 16);
    m.step(&p).expect("lui");
    m.step(&p).expect("ori");
    let mut bus = BusState::flushed();
    let r_add1 = m.step(&p).expect("first add");
    bus.advance(&r_add1);
    let r_add2 = m.step(&p).expect("second add");
    let normal = extract(&r_add2, bus);
    let corrected = extract(&r_add2, BusState::flushed());
    assert_ne!(
        normal, corrected,
        "flushed-state features must differ in-sequence"
    );
}
