//! The parallel layer's core contract: thread count is a performance knob,
//! never a semantic one. Every result here must be **bitwise identical**
//! across thread counts and across repeated runs.

use terse::{Framework, Workload};
use terse_isa::Cfg;
use terse_sim::monte_carlo::{self, MonteCarloConfig};

fn kernel() -> Workload {
    Workload::from_asm(
        "det-kernel",
        r"
            ld   r1, r0, 0
            li   r6, 0x00FFFFFF
        loop:
            add  r2, r2, r6
            mul  r3, r1, r2
            sub  r4, r3, r2
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        ",
    )
    .expect("assembles")
    .with_input(|m| m.store(0, 12).expect("store"))
    .with_input(|m| m.store(0, 23).expect("store"))
}

/// Builds the model once and returns everything the MC grid needs.
fn setup(fw: &Framework) -> (Workload, terse_dta::instmodel::InstructionErrorModel) {
    let w = kernel();
    let cfg = Cfg::from_program(w.program());
    let profiles = fw.profile_workload(&w, &cfg).expect("profiles");
    let model = fw.train_model(&w, &cfg, &profiles).expect("model");
    (w, model)
}

#[test]
fn error_counts_identical_across_thread_counts() {
    let fw = Framework::builder().samples(2).build().expect("framework");
    let (w, model) = setup(&fw);
    let chips = fw.sample_chips(6, 0xDE7).expect("chips");
    let grid = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            monte_carlo::error_counts(
                w.program(),
                &model,
                &chips,
                2,
                fw.correction(),
                |idx, m| w.init_input(idx, m),
                MonteCarloConfig::default(),
            )
            .expect("monte carlo")
        })
    };
    let serial = grid(1);
    assert_eq!(serial, grid(4), "4 threads changed the count matrix");
    assert_eq!(serial, grid(7), "7 threads changed the count matrix");
    // Repeated runs under the same seed are identical too.
    assert_eq!(serial, grid(1));
    assert_eq!(serial, grid(4));
}

#[test]
fn error_counts_marginalized_identical_across_thread_counts() {
    let fw = Framework::builder().samples(2).build().expect("framework");
    let (w, model) = setup(&fw);
    let grid = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            monte_carlo::error_counts_marginalized(
                w.program(),
                &model,
                5,
                2,
                fw.correction(),
                |idx, m| w.init_input(idx, m),
                MonteCarloConfig::default(),
            )
            .expect("monte carlo")
        })
    };
    let serial = grid(1);
    assert_eq!(serial, grid(3), "3 threads changed the marginalized counts");
    assert_eq!(serial, grid(1), "repeat run diverged");
}

#[test]
fn sample_chips_identical_across_thread_counts() {
    let one = Framework::builder().threads(1).build().expect("framework");
    let many = Framework::builder().threads(5).build().expect("framework");
    let a = one.sample_chips(16, 0xABCD).expect("chips");
    let b = many.sample_chips(16, 0xABCD).expect("chips");
    assert_eq!(a, b, "thread count changed the sampled chip population");
    // And a repeated draw under the same seed is the same population.
    assert_eq!(a, one.sample_chips(16, 0xABCD).expect("chips"));
}

#[test]
fn kill_at_checkpoint_then_resume_is_bitwise_identical_across_thread_counts() {
    // The uninterrupted reference run (machine-default thread count).
    let reference = Framework::builder()
        .samples(2)
        .build()
        .expect("framework")
        .run(&kernel())
        .expect("reference run");
    // For each resume thread count: "kill" a run mid-estimate (the block
    // budget flushes the completed prefix and aborts, exactly like a kill
    // arriving right after a checkpoint write), then resume from the file
    // and demand the uninterrupted result, bit for bit.
    for threads in [1usize, 4] {
        let path = std::env::temp_dir().join(format!(
            "terse-det-resume-{threads}-{}.ckpt",
            std::process::id()
        ));
        let killed = Framework::builder()
            .samples(2)
            .checkpoint(&path, 1)
            .block_budget(2)
            .build()
            .expect("framework")
            .run(&kernel());
        assert!(
            matches!(killed, Err(terse::TerseError::Interrupted { .. })),
            "expected an interrupted run"
        );
        assert!(path.exists(), "partial checkpoint persisted");
        let resumed = Framework::builder()
            .samples(2)
            .checkpoint(&path, 1)
            .threads(threads)
            .build()
            .expect("framework")
            .run(&kernel())
            .expect("resumed run");
        assert!(!path.exists(), "checkpoint removed after completion");
        assert_eq!(
            reference
                .estimate
                .lambda
                .samples()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            resumed
                .estimate
                .lambda
                .samples()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "λ samples differ after resume with {threads} threads"
        );
        assert_eq!(
            reference.estimate.mean_error_rate().to_bits(),
            resumed.estimate.mean_error_rate().to_bits(),
            "mean error rate differs after resume with {threads} threads"
        );
        assert_eq!(
            reference.estimate.dk_lambda.to_bits(),
            resumed.estimate.dk_lambda.to_bits(),
            "Stein bound differs after resume with {threads} threads"
        );
    }
}

#[test]
fn mc_checkpointed_grid_matches_plain_across_thread_counts() {
    let fw = Framework::builder().samples(2).build().expect("framework");
    let (w, model) = setup(&fw);
    let chips = fw.sample_chips(4, 0xDE7).expect("chips");
    let plain = monte_carlo::error_counts(
        w.program(),
        &model,
        &chips,
        2,
        fw.correction(),
        |idx, m| w.init_input(idx, m),
        MonteCarloConfig::default(),
    )
    .expect("plain grid");
    for threads in [1usize, 3] {
        let path = std::env::temp_dir().join(format!(
            "terse-det-mc-{threads}-{}.ckpt",
            std::process::id()
        ));
        let ckpt = monte_carlo::McCheckpoint::new(&path, 3);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let checkpointed = pool.install(|| {
            monte_carlo::error_counts_checkpointed(
                w.program(),
                &model,
                &chips,
                2,
                fw.correction(),
                |idx, m| w.init_input(idx, m),
                MonteCarloConfig::default(),
                &ckpt,
            )
            .expect("checkpointed grid")
        });
        assert_eq!(plain, checkpointed, "{threads} threads changed the grid");
        assert!(!path.exists(), "checkpoint removed after completion");
    }
}

#[test]
fn full_flow_estimate_bitwise_identical_across_thread_counts() {
    let run = |threads: usize| {
        let fw = Framework::builder()
            .samples(2)
            .threads(threads)
            .build()
            .expect("framework");
        fw.run(&kernel()).expect("run")
    };
    let a = run(1);
    let b = run(6);
    assert_eq!(
        a.estimate.lambda.mean().to_bits(),
        b.estimate.lambda.mean().to_bits(),
        "λ mean differs across thread counts"
    );
    assert_eq!(
        a.estimate.lambda.sd().to_bits(),
        b.estimate.lambda.sd().to_bits(),
        "λ sd differs across thread counts"
    );
    assert_eq!(
        a.estimate.mean_error_rate().to_bits(),
        b.estimate.mean_error_rate().to_bits(),
        "mean error rate differs across thread counts"
    );
}
