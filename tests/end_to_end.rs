//! Cross-crate integration tests: the full estimation pipeline from
//! assembly source to bounded error-rate distribution.

use terse::{Framework, Workload};
use terse_sim::profile::Profiler;

fn small_framework(samples: usize) -> Framework {
    Framework::builder()
        .samples(samples)
        .profiler(Profiler {
            max_feature_samples: 16,
            budget: 2_000_000,
            dmem_words: 1 << 16,
            seed: 99,
        })
        .build()
        .expect("framework builds")
}

fn demo_workload() -> Workload {
    Workload::from_asm(
        "demo",
        r"
            ld   r1, r0, 0
            addi r2, r0, 0
        loop:
            mul  r3, r1, r1
            add  r2, r2, r3
            sub  r4, r2, r1
            srli r5, r4, 3
            addi r1, r1, -1
            bne  r1, r0, loop
            st   r2, r0, 1
            halt
        ",
    )
    .expect("assembles")
    .with_input(|m| m.store(0, 60).expect("store"))
    .with_input(|m| m.store(0, 85).expect("store"))
}

#[test]
fn full_pipeline_produces_coherent_report() {
    let fw = small_framework(2);
    let report = fw.run(&demo_workload()).expect("run succeeds");
    let est = &report.estimate;
    // Basic coherence.
    assert!(report.basic_blocks >= 3);
    assert!(report.dynamic_instructions > 100.0);
    assert!(est.lambda.mean() >= 0.0);
    assert!((0.0..=1.0).contains(&est.mean_error_rate()));
    assert!(est.sd_error_rate() >= 0.0);
    assert!((0.0..=1.0).contains(&est.dk_count));
    assert!((0.0..=1.0).contains(&est.dk_lambda));
    // CDF sanity: monotone, bounded, bracketed.
    let mut prev = -1.0;
    for i in 0..=10 {
        let rate = est.mean_error_rate() * 2.0 * i as f64 / 10.0;
        let b = est.rate_cdf(rate).expect("cdf evaluates");
        assert!(b.lower <= b.nominal + 1e-9 && b.nominal <= b.upper + 1e-9);
        assert!(b.nominal >= prev - 1e-9, "cdf must be monotone");
        prev = b.nominal;
    }
    // Far right tail saturates.
    assert!(est.rate_cdf(1.0).expect("cdf").nominal > 0.999);
}

#[test]
fn runs_are_deterministic() {
    let fw = small_framework(2);
    let r1 = fw.run(&demo_workload()).expect("first run");
    let r2 = fw.run(&demo_workload()).expect("second run");
    assert_eq!(
        r1.estimate.lambda.samples(),
        r2.estimate.lambda.samples(),
        "identical seeds must give identical λ samples"
    );
    assert_eq!(r1.estimate.dk_count, r2.estimate.dk_count);
    assert_eq!(r1.estimate.dk_lambda, r2.estimate.dk_lambda);
}

#[test]
fn instruction_scaling_preserves_rate() {
    let fw = small_framework(2);
    let base = fw.run(&demo_workload()).expect("unscaled run");
    let scaled_workload = demo_workload().with_target_instructions(50_000_000);
    let scaled = fw.run(&scaled_workload).expect("scaled run");
    assert!((scaled.dynamic_instructions - 5e7).abs() < 1.0);
    let (a, b) = (
        base.estimate.mean_error_rate(),
        scaled.estimate.mean_error_rate(),
    );
    assert!(
        (a - b).abs() <= a * 0.02 + 1e-12,
        "scaling e_i must not change the rate: {a} vs {b}"
    );
    assert!(scaled.estimate.lambda.mean() > base.estimate.lambda.mean() * 100.0);
}

#[test]
fn report_row_formats() {
    let fw = small_framework(2);
    let report = fw.run(&demo_workload()).expect("run");
    let row = report.table2_row();
    assert!(row.contains("demo"));
    assert!(!terse::Report::table2_header().is_empty());
}

#[test]
fn three_representative_benchmarks_run_small() {
    let fw = small_framework(2);
    for name in ["typeset", "gsm.encode", "dijkstra"] {
        let spec = terse_workloads::by_name(name).expect("registered");
        let w = spec
            .workload(terse_workloads::DatasetSize::Small, 2, 0xA11CE)
            .expect("workload");
        let report = fw.run(&w).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            (0.0..=0.2).contains(&report.estimate.mean_error_rate()),
            "{name} rate {} out of sane range",
            report.estimate.mean_error_rate()
        );
    }
}
