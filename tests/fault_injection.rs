//! Fault-injection suite (runs with `--features failpoints`).
//!
//! Every named fail point compiled into the workspace is driven here, and
//! every injected fault must surface as a **typed error** at the crate
//! boundary — never a panic, never a silently wrong result. The catalog
//! (see DESIGN.md §12):
//!
//! | fail point        | site                               | injected error |
//! |-------------------|------------------------------------|----------------|
//! | `isa::assemble`   | assembly parsing                   | `IsaError::Syntax` |
//! | `netlist::finish` | netlist construction               | `NetlistError::CombinationalCycle` |
//! | `sim::profile`    | execution profiling                | `SimError::InstructionBudgetExhausted` |
//! | `sim::cosim`      | gate-level co-simulation           | `SimError::Netlist` |
//! | `sim::mc_cell`    | Monte Carlo grid cell              | `SimError::InstructionBudgetExhausted` |
//! | `sta::statmin`    | statistical-min reduction          | `StaError::MalformedPath` |
//! | `stats::lu`       | LU factorization                   | `StatsError::SingularMatrix` |
//! | `stats::cholesky` | Cholesky factorization             | `StatsError::NotPositiveDefinite` |
//! | `errmodel::solve` | marginal-probability solver        | `ErrModelError::{SingularSystem, NonConvergence}` |
//! | `terse::estimate` | estimation pipeline entry          | `TerseError::Config` |
//!
//! Tests hold a [`FailScenario`] for their whole body: it serializes
//! scenarios across test threads and clears the registry on entry and drop,
//! so points configured here can never leak into other tests.

use failpoints::FailScenario;
use terse::{Framework, TerseError, Workload};
use terse_isa::Cfg;
use terse_sim::correction::CorrectionScheme;
use terse_sim::monte_carlo::{self, InstErrorModel, MonteCarloConfig};
use terse_sim::{InstFeatures, Profiler, SimError};
use terse_stats::{Matrix, StatsError};

fn small_framework() -> Framework {
    Framework::builder()
        .samples(2)
        .profiler(Profiler {
            max_feature_samples: 8,
            budget: 100_000,
            dmem_words: 4096,
            seed: 1,
        })
        .build()
        .expect("framework builds with no faults configured")
}

fn loop_workload() -> Workload {
    Workload::from_asm(
        "fi-loop",
        r"
            addi r1, r0, 5
            li   r2, 0x1234
        loop:
            add  r3, r3, r2
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
    ",
    )
    .expect("assembles with no faults configured")
}

#[test]
fn ingestion_faults_are_typed_errors() {
    let _scenario = FailScenario::setup();
    // Assembly parsing.
    failpoints::cfg("isa::assemble", "return").unwrap();
    let err = Workload::from_asm("fi", "halt\n").unwrap_err();
    assert!(matches!(err, TerseError::Isa(_)), "{err}");
    assert!(err.to_string().contains("injected"), "{err}");
    failpoints::remove("isa::assemble");
    // Netlist construction (hit while the builder assembles the pipeline).
    failpoints::cfg("netlist::finish", "return").unwrap();
    let err = Framework::builder().build().unwrap_err();
    assert!(matches!(err, TerseError::Netlist(_)), "{err}");
    failpoints::remove("netlist::finish");
    // With every point removed the same calls succeed.
    assert!(Workload::from_asm("fi", "halt\n").is_ok());
    assert!(Framework::builder().build().is_ok());
}

#[test]
fn simulation_faults_are_typed_errors() {
    let _scenario = FailScenario::setup();
    let fw = small_framework();
    let w = loop_workload();
    let cfg = Cfg::from_program(w.program());
    // Trace ingestion / profiling.
    failpoints::cfg("sim::profile", "return").unwrap();
    let err = fw.profile_workload(&w, &cfg).unwrap_err();
    assert!(
        matches!(
            err,
            TerseError::Sim(SimError::InstructionBudgetExhausted { budget: 0 })
        ),
        "{err}"
    );
    failpoints::remove("sim::profile");
    let profiles = fw.profile_workload(&w, &cfg).expect("profiling recovers");
    // Gate-level co-simulation (hit during control characterization).
    failpoints::cfg("sim::cosim", "return").unwrap();
    let err = fw.train_model(&w, &cfg, &profiles).unwrap_err();
    assert!(matches!(err, TerseError::Dta(_)), "{err}");
    assert!(err.to_string().contains("injected"), "{err}");
    failpoints::remove("sim::cosim");
    // Statistical-min reduction (hit during DTA training).
    failpoints::cfg("sta::statmin", "return").unwrap();
    let err = fw.train_model(&w, &cfg, &profiles).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    failpoints::remove("sta::statmin");
    assert!(fw.train_model(&w, &cfg, &profiles).is_ok());
}

/// Zero-probability toy model for driving the Monte Carlo grid.
struct NeverFails;
impl InstErrorModel for NeverFails {
    fn error_probability(
        &self,
        _prev: Option<u32>,
        _index: u32,
        _f: &InstFeatures,
        _chip: &terse_sta::variation::ChipSample,
    ) -> f64 {
        0.0
    }
    fn marginal_probability(&self, _prev: Option<u32>, _index: u32, _f: &InstFeatures) -> f64 {
        0.0
    }
}

#[test]
fn monte_carlo_cell_faults_are_typed_errors() {
    let _scenario = FailScenario::setup();
    let w = loop_workload();
    failpoints::cfg("sim::mc_cell", "return").unwrap();
    let err = monte_carlo::error_counts_marginalized(
        w.program(),
        &NeverFails,
        2,
        1,
        CorrectionScheme::paper_default(),
        |_, _| {},
        MonteCarloConfig::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, SimError::InstructionBudgetExhausted { budget: 0 }),
        "{err}"
    );
    failpoints::remove("sim::mc_cell");
    let counts = monte_carlo::error_counts_marginalized(
        w.program(),
        &NeverFails,
        2,
        1,
        CorrectionScheme::paper_default(),
        |_, _| {},
        MonteCarloConfig::default(),
    )
    .expect("recovers once the point is removed");
    assert_eq!(counts, vec![0, 0]);
}

#[test]
fn linear_algebra_faults_are_typed_errors() {
    let _scenario = FailScenario::setup();
    let spd = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
    // LU factorization.
    failpoints::cfg("stats::lu", "return").unwrap();
    assert!(matches!(spd.lu(), Err(StatsError::SingularMatrix)));
    failpoints::remove("stats::lu");
    assert!(spd.lu().is_ok());
    // Cholesky factorization.
    failpoints::cfg("stats::cholesky", "return").unwrap();
    assert!(matches!(
        spd.cholesky(),
        Err(StatsError::NotPositiveDefinite { .. })
    ));
    failpoints::remove("stats::cholesky");
    assert!(spd.cholesky().is_ok());
}

#[test]
fn estimation_faults_are_typed_errors() {
    let _scenario = FailScenario::setup();
    let fw = small_framework();
    let w = loop_workload();
    let cfg = Cfg::from_program(w.program());
    let profiles = fw.profile_workload(&w, &cfg).expect("profiles");
    let model = fw.train_model(&w, &cfg, &profiles).expect("model");
    // Marginal solver: payload selects which fault to inject.
    failpoints::cfg("errmodel::solve", "return(nonconvergence)").unwrap();
    let err = fw.estimate(&w, &cfg, &profiles, &model).unwrap_err();
    assert!(
        matches!(
            err,
            TerseError::ErrModel(terse_errmodel::ErrModelError::NonConvergence { .. })
        ),
        "{err}"
    );
    failpoints::cfg("errmodel::solve", "return").unwrap();
    let err = fw.estimate(&w, &cfg, &profiles, &model).unwrap_err();
    assert!(
        matches!(
            err,
            TerseError::ErrModel(terse_errmodel::ErrModelError::SingularSystem { .. })
        ),
        "{err}"
    );
    failpoints::remove("errmodel::solve");
    // LU failure inside the per-SCC system solve (the loop block is a
    // cyclic SCC, so the solver genuinely reaches the factorization).
    failpoints::cfg("stats::lu", "return").unwrap();
    let err = fw.estimate(&w, &cfg, &profiles, &model).unwrap_err();
    assert!(matches!(err, TerseError::ErrModel(_)), "{err}");
    failpoints::remove("stats::lu");
    // Estimation pipeline entry.
    failpoints::cfg("terse::estimate", "return").unwrap();
    let err = fw.estimate(&w, &cfg, &profiles, &model).unwrap_err();
    assert!(matches!(err, TerseError::Config(_)), "{err}");
    assert!(err.to_string().contains("injected"), "{err}");
    failpoints::remove("terse::estimate");
    // Full recovery once everything is removed.
    assert!(fw.estimate(&w, &cfg, &profiles, &model).is_ok());
}

#[test]
fn transient_faults_recover() {
    let _scenario = FailScenario::setup();
    let fw = small_framework();
    let w = loop_workload();
    let cfg = Cfg::from_program(w.program());
    // `1*return`: exactly one profiling call fails, the next succeeds —
    // the shape of a transient ingestion fault.
    failpoints::cfg("sim::profile", "1*return").unwrap();
    let before = failpoints::hit_count();
    assert!(fw.profile_workload(&w, &cfg).is_err());
    assert!(fw.profile_workload(&w, &cfg).is_ok());
    assert_eq!(failpoints::hit_count(), before + 1);
}

#[test]
fn solver_fault_is_repaired_under_degraded_policy() {
    // A singular-system fault under `DegradationPolicy::Repair` falls back
    // to the damped fixed-point iteration instead of failing the run:
    // graceful degradation end to end. (The injected LU failure makes the
    // direct solve unavailable; the fallback still converges on the
    // well-posed loop system.)
    let _scenario = FailScenario::setup();
    let fw = Framework::builder()
        .samples(2)
        .profiler(Profiler {
            max_feature_samples: 8,
            budget: 100_000,
            dmem_words: 4096,
            seed: 1,
        })
        .degradation(terse::DegradationPolicy::Repair)
        .build()
        .expect("framework");
    let w = loop_workload();
    let cfg = Cfg::from_program(w.program());
    let profiles = fw.profile_workload(&w, &cfg).expect("profiles");
    let model = fw.train_model(&w, &cfg, &profiles).expect("model");
    failpoints::cfg("stats::lu", "return").unwrap();
    let est = fw
        .estimate(&w, &cfg, &profiles, &model)
        .expect("repair policy survives a singular-system fault");
    failpoints::remove("stats::lu");
    let rate = est.mean_error_rate();
    assert!((0.0..=1.0).contains(&rate), "rate = {rate}");
}
